//! Parallel-determinism contract: region-parallel execution must be
//! invisible in every observable artifact. For each golden scenario the
//! parallel engine's typed JSONL export is compared byte-for-byte
//! against the sequential engine at worker counts {1, 2, 8}, and every
//! configuration is run twice (double-run identity) — so a scheduling
//! or journal-replay bug shows up as a diff, not a flake. A proptest
//! sweep repeats the check over random internets, failure points, and
//! worker counts.

use adroute::core::OrwgProtocol;
use adroute::policy::PolicyDb;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::sim::{
    ChannelFaults, CrashModel, Engine, FailureModel, FaultPlan, FaultSpec, Protocol,
};
use adroute::topology::{HierarchyConfig, LinkId, Topology};
use proptest::prelude::*;

/// The E-series-style internet used by the benches, scaled to test size.
fn internet(approx_ads: usize, seed: u64) -> Topology {
    HierarchyConfig {
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.2,
        ..HierarchyConfig::with_approx_size(approx_ads, seed)
    }
    .generate()
}

/// The operational link with the best-connected endpoints — the "trunk".
fn trunk(topo: &Topology) -> LinkId {
    topo.links()
        .filter(|l| l.up)
        .max_by_key(|l| {
            (
                topo.neighbors(l.a).count() + topo.neighbors(l.b).count(),
                std::cmp::Reverse(l.id.0),
            )
        })
        .unwrap()
        .id
}

/// Runs `protocol` on `topo` through convergence, a trunk failure, and
/// reconvergence — sequentially when `workers` is `None`, else with the
/// region-parallel engine — and exports the typed JSONL event stream.
fn lifecycle_jsonl<P>(topo: &Topology, protocol: P, workers: Option<usize>) -> String
where
    P: Protocol + Sync,
    P::Router: Send,
    P::Msg: Send,
{
    let mut e = Engine::new(topo.clone(), protocol);
    e.enable_obs(1 << 16);
    e.begin_phase("converge");
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.begin_phase("failure-response");
    e.schedule_link_change(trunk(topo), false, e.now().plus_us(1));
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.obs.log.export_jsonl()
}

/// Asserts the full determinism contract for one scenario: sequential
/// double-run identity, then parallel == sequential (twice) at each
/// worker count.
fn assert_parallel_matches<P, F>(topo: &Topology, make: F, what: &str)
where
    P: Protocol + Sync,
    P::Router: Send,
    P::Msg: Send,
    F: Fn() -> P,
{
    let seq = lifecycle_jsonl(topo, make(), None);
    assert_eq!(
        seq,
        lifecycle_jsonl(topo, make(), None),
        "{what}: sequential double-run must be byte-identical"
    );
    for workers in [1, 2, 8] {
        for run in 0..2 {
            let par = lifecycle_jsonl(topo, make(), Some(workers));
            assert_eq!(
                par, seq,
                "{what}: parallel ({workers} workers, run {run}) diverged from sequential"
            );
        }
    }
}

/// The quickstart golden scenario's engine: the Figure-1 internet's ORWG
/// control plane converging and absorbing a trunk failure.
#[test]
fn quickstart_parallel_is_byte_identical() {
    let topo = HierarchyConfig::figure1().generate();
    assert_parallel_matches(
        &topo,
        || OrwgProtocol::new(&topo, PolicyDb::permissive(&topo)),
        "quickstart",
    );
}

/// The e7b golden scenario's internet (E-series, ~120 ADs) under the
/// ORWG control plane.
#[test]
fn e7b_internet_parallel_is_byte_identical() {
    let topo = internet(120, 23);
    assert_parallel_matches(
        &topo,
        || OrwgProtocol::new(&topo, PolicyDb::permissive(&topo)),
        "e7b-internet",
    );
}

/// The stress golden scenario runs the ORWG serving path (`run_load_ramp`),
/// which is a mini event loop outside the region-parallel engine — so its
/// determinism contract is double-run byte identity of the exported
/// stream, under the same storm-crosses-saturation shape as the golden.
#[test]
fn stress_ramp_double_run_is_byte_identical() {
    use adroute::core::{run_load_ramp, AdmissionConfig, OrwgNetwork, StressConfig};
    use adroute::policy::workload::PolicyWorkload;
    use adroute::sim::{OpenStorm, SimTime, StormPhase};

    let export = || {
        let seed = 77u64;
        let topo = HierarchyConfig {
            backbones: 1,
            regionals_per_backbone: 2,
            metros_per_regional: 2,
            campuses_per_metro: 2,
            lateral_prob: 0.25,
            bypass_prob: 0.15,
            multihome_prob: 0.25,
            seed,
        }
        .generate();
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(1 << 14);
        let phases = [
            StormPhase {
                duration_ms: 8,
                opens_per_sec: 1_200,
            },
            StormPhase {
                duration_ms: 12,
                opens_per_sec: 7_000,
            },
        ];
        let storm = OpenStorm::draw(&topo, &phases, SimTime::ZERO, seed);
        let cfg = StressConfig {
            seed,
            admission: AdmissionConfig {
                queue_capacity: 4,
                full_depth: 1,
                cached_depth: 2,
                ..AdmissionConfig::default()
            },
            ..StressConfig::default()
        };
        run_load_ramp(&mut net, &storm, &[8_000, 12_000], &cfg);
        net.obs.log.export_jsonl()
    };
    let a = export();
    assert_eq!(
        a,
        export(),
        "stress: double-run must export identical JSONL"
    );
    assert!(a.contains("\"kind\":\"setup-shed\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random internets and worker counts: the parallel engine's JSONL
    /// must match the sequential engine's, byte for byte.
    #[test]
    fn random_internets_parallel_matches_sequential(
        seed in 0u64..1_000,
        approx in 30usize..90,
        workers in 2usize..9,
    ) {
        let topo = internet(approx, seed);
        let seq = lifecycle_jsonl(&topo, NaiveDv::default(), None);
        let par = lifecycle_jsonl(&topo, NaiveDv::default(), Some(workers));
        prop_assert_eq!(seq, par);
    }
}

/// Convergence, then a chaos phase under `spec` — drawn at the quiescent
/// time, which is itself part of the determinism contract, so every run
/// (sequential or parallel, any worker count) derives the identical
/// plan. `partition` additionally splits the domain at the AD-index
/// midpoint for the first half of the horizon and heals it.
fn chaos_lifecycle_jsonl<P>(
    topo: &Topology,
    protocol: P,
    spec: &FaultSpec,
    partition: bool,
    horizon_ms: u64,
    workers: Option<usize>,
) -> String
where
    P: Protocol + Sync,
    P::Router: Send,
    P::Msg: Send,
{
    let mut e = Engine::new(topo.clone(), protocol);
    e.enable_obs(1 << 16);
    e.begin_phase("converge");
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.begin_phase("chaos");
    let mut plan = FaultPlan::draw(topo, spec, e.now(), horizon_ms);
    if partition {
        let at = e.now().plus_us(500);
        let heal_at = e.now().plus_us(horizon_ms * 500);
        plan = plan.with_partition(topo, (topo.num_ads() / 2) as u32, at, heal_at);
    }
    plan.apply(&mut e);
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.obs.log.export_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The chaos battery: random fault plans — lossy / corrupting /
    /// duplicating / reordering channels keyed on event identity,
    /// optional link churn and router crashes, optional partition/heal —
    /// must leave the parallel engine byte-identical to the sequential
    /// one at every required worker count.
    #[test]
    fn random_fault_plans_parallel_matches_sequential(
        seed in 0u64..1_000,
        approx in 30usize..80,
        loss in 0.0f64..0.25,
        shape in 0u64..4,
    ) {
        // Two fault-plan shape bits: link/router churn, partition/heal.
        let (churn, partition) = (shape & 1 != 0, shape & 2 != 0);
        let topo = internet(approx, seed);
        let horizon_ms = 40;
        let spec = FaultSpec {
            link_model: churn.then_some(FailureModel {
                mtbf_ms: 15.0,
                mttr_ms: 5.0,
                fallible_fraction: 0.3,
                seed: seed ^ 0x11,
            }),
            crash_model: churn.then_some(CrashModel {
                mtbf_ms: 25.0,
                mttr_ms: 6.0,
                fallible_fraction: 0.15,
                seed: seed ^ 0x22,
            }),
            channel: Some(ChannelFaults {
                loss,
                corrupt: loss / 4.0,
                duplicate: loss / 4.0,
                reorder: loss / 2.0,
                jitter_us: 300,
                seed: seed ^ 0x33,
                ..ChannelFaults::default()
            }),
            misbehavior: Default::default(),
        };
        let seq = chaos_lifecycle_jsonl(
            &topo, NaiveDv::default(), &spec, partition, horizon_ms, None,
        );
        for workers in [1usize, 2, 8] {
            let par = chaos_lifecycle_jsonl(
                &topo, NaiveDv::default(), &spec, partition, horizon_ms, Some(workers),
            );
            prop_assert_eq!(
                &seq, &par,
                "chaos divergence at {} workers (loss {}, churn {}, partition {})",
                workers, loss, churn, partition
            );
        }
    }
}
