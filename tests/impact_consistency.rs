//! The management tool must not lie: `PolicyImpact::assess` predictions
//! are checked against what actually happens when the candidate policy is
//! deployed on a live ORWG network.

use adroute::core::network::OpenError;
use adroute::core::{OrwgNetwork, PolicyImpact};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};
use adroute::protocols::forwarding::sample_flows;
use adroute::topology::{AdLevel, HierarchyConfig};

fn setup(seed: u64) -> (adroute::topology::Topology, adroute::policy::PolicyDb) {
    let topo = HierarchyConfig {
        backbones: 1,
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.25,
        seed,
        ..HierarchyConfig::default()
    }
    .generate();
    let db = PolicyWorkload::default_mix(seed).generate(&topo);
    (topo, db)
}

#[test]
fn predicted_breakage_matches_deployment() {
    let (topo, db) = setup(61);
    let flows = sample_flows(&topo, 80, 61);
    let victim = topo
        .ads()
        .find(|a| a.level == AdLevel::Regional)
        .unwrap()
        .id;
    let candidate = TransitPolicy::deny_all(victim);

    // Predict.
    let impact = PolicyImpact::assess(&topo, &db, candidate.clone(), &flows);

    // Deploy on a live network and compare reality per flow.
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.change_policy(candidate);
    for f in &flows {
        let opened = match net.open(f) {
            Ok(_) => true,
            Err(OpenError::NoRoute) => false,
            Err(e) => panic!("{e:?}"),
        };
        let predicted_broken = impact.broken.contains(f);
        let predicted_enabled = impact.enabled.contains(f);
        if predicted_broken {
            assert!(!opened, "{f} predicted broken but opened fine");
        }
        if predicted_enabled {
            assert!(opened, "{f} predicted enabled but still unroutable");
        }
    }
    // Aggregate consistency.
    let opened_after = flows.iter().filter(|f| net.open(f).is_ok()).count();
    assert_eq!(opened_after, impact.routable_after);
}

#[test]
fn predicted_reroutes_match_deployment_paths() {
    let (topo, db) = setup(67);
    let flows = sample_flows(&topo, 60, 67);
    let victim = topo.ads().find(|a| a.level == AdLevel::Metro).unwrap().id;
    // A pure price hike: same permit/deny structure, every permit costs
    // 25 more. (Replacing the policy wholesale would change *which* flows
    // are permitted, not just their price.)
    let mut candidate = db.policy(victim).clone();
    for term in &mut candidate.terms {
        if let PolicyAction::Permit { cost } = &mut term.action {
            *cost += 25;
        }
    }
    if let PolicyAction::Permit { cost } = &mut candidate.default {
        *cost += 25;
    }

    let impact = PolicyImpact::assess(&topo, &db, candidate.clone(), &flows);
    assert!(impact.is_safe(), "a price hike breaks nothing");
    assert!(impact.enabled.is_empty(), "a price hike enables nothing");

    let mut before = OrwgNetwork::converged(&topo, &db);
    let mut after = OrwgNetwork::converged(&topo, &db);
    after.change_policy(candidate);
    let mut rerouted = 0;
    for f in &flows {
        let a = before.policy_route(f);
        let b = after.policy_route(f);
        assert_eq!(a.is_some(), b.is_some(), "{f} availability must not change");
        if let (Some(a), Some(b)) = (a, b) {
            if a != b {
                rerouted += 1;
            }
        }
    }
    assert_eq!(rerouted, impact.rerouted, "re-route prediction mismatch");
}

#[test]
fn targeted_exclusion_impact_is_source_precise() {
    let (topo, db) = setup(71);
    let flows = sample_flows(&topo, 100, 71);
    let victim = topo
        .ads()
        .find(|a| a.level == AdLevel::Regional)
        .unwrap()
        .id;
    // Exclude one specific heavy source.
    let excluded = flows[0].src;
    let mut candidate = db.policy(victim).clone();
    candidate.terms.insert(
        0,
        adroute::policy::PolicyTerm {
            id: adroute::policy::PtId {
                ad: victim,
                serial: 999,
            },
            conditions: vec![PolicyCondition::SrcIn(AdSet::only([excluded]))],
            action: PolicyAction::Deny,
        },
    );
    let impact = PolicyImpact::assess(&topo, &db, candidate, &flows);
    for f in &impact.broken {
        assert_eq!(f.src, excluded, "only the excluded source may break");
    }
    assert!(
        impact.enabled.is_empty(),
        "an exclusion cannot enable flows: {:?}",
        impact.enabled
    );
}
