//! Property tests for the causal provenance layer: across random
//! topologies, fault plans, and channel loss, the id/cause graph must
//! stay a forest — acyclic, time-ordered, and partitioned by the storm
//! report — whether the stream comes from the engine's control plane,
//! the ORWG data plane, or both merged.

use adroute::core::{OrwgNetwork, OrwgProtocol};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::PolicyDb;
use adroute::protocols::forwarding::sample_flows;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::sim::{
    CausalGraph, ChannelFaults, Engine, EventLog, FailureModel, FaultPlan, FaultSpec, Protocol,
};
use adroute::topology::{generate, HierarchyConfig, Topology};
use proptest::prelude::*;

fn small_topo(kind: u8, size: u8) -> Topology {
    let n = 5 + (size % 4) as usize;
    match kind % 3 {
        0 => generate::ring(n),
        1 => generate::grid(2, n / 2 + 1),
        _ => generate::clique(n),
    }
}

/// The three invariants every provenance-linked stream must satisfy.
///
/// 1. Acyclic by construction: every cause id is strictly smaller than
///    its event's id, and resolved parents agree with the `cause` field.
/// 2. Causes precede effects in simulation time.
/// 3. The storm report is a true partition: per-root event counts sum
///    to the number of retained events, even when eviction orphaned
///    some causes.
fn check_invariants(logs: &[&EventLog]) {
    let g = CausalGraph::build(logs);
    assert!(g.is_acyclic_by_id(), "cause id >= event id");
    let events = g.events();
    for (i, ev) in events.iter().enumerate() {
        if let Some(p) = g.parent_of(i) {
            assert_eq!(ev.cause, Some(events[p].id), "parent/cause disagree");
            assert!(
                events[p].at <= ev.at,
                "cause at {:?} after effect at {:?}",
                events[p].at,
                ev.at
            );
            assert_eq!(g.depth_of(i), g.depth_of(p) + 1);
            assert_eq!(g.root_of(i), g.root_of(p));
        } else {
            assert_eq!(g.depth_of(i), 0);
            assert_eq!(g.root_of(i), i);
        }
    }
    let total: u64 = g.storm_report().iter().map(|s| s.events).sum();
    assert_eq!(total, g.len() as u64, "storm report is not a partition");
    // The critical path is a genuine causal chain, root first. (Its
    // head may still carry a `cause` id if that record was evicted —
    // an unresolved cause degrades the head to a root.)
    let path = g.critical_path();
    for w in path.windows(2) {
        assert_eq!(w[1].cause, Some(w[0].id), "critical path not linked");
        assert!(w[0].at <= w[1].at);
    }
}

/// Converge, churn, re-converge one engine and return it for analysis.
fn churny_engine<P: Protocol>(
    mut e: Engine<P>,
    seed: u64,
    loss: f64,
    capacity: usize,
) -> Engine<P> {
    e.enable_obs(capacity);
    e.begin_phase("converge");
    e.run_to_quiescence();
    e.begin_phase("churn");
    let spec = FaultSpec {
        link_model: Some(FailureModel {
            mtbf_ms: 60.0,
            mttr_ms: 25.0,
            fallible_fraction: 0.4,
            seed: seed ^ 0x11,
        }),
        crash_model: None,
        channel: (loss > 0.0).then(|| ChannelFaults {
            loss,
            corrupt: loss / 4.0,
            duplicate: loss / 4.0,
            reorder: loss / 2.0,
            seed: seed ^ 0x33,
            ..ChannelFaults::default()
        }),
        ..FaultSpec::default()
    };
    let plan = FaultPlan::draw(e.topo(), &spec, e.now(), 150);
    plan.apply(&mut e);
    e.run_to_quiescence();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Control-plane streams from a churny engine run keep the causal
    /// invariants, for both a flooding and a distance-vector protocol.
    #[test]
    fn engine_streams_satisfy_causal_invariants(
        kind in 0u8..3,
        size in 0u8..4,
        seed in 0u64..500,
        lossy in 0u8..2,
    ) {
        let topo = small_topo(kind, size);
        let loss = if lossy == 1 { 0.08 } else { 0.0 };
        let db = PolicyDb::permissive(&topo);
        let e = churny_engine(
            Engine::new(topo.clone(), OrwgProtocol::new(&topo, db)),
            seed,
            loss,
            1 << 14,
        );
        check_invariants(&[&e.obs.log]);
        let e = churny_engine(Engine::new(topo, NaiveDv::egp()), seed, loss, 1 << 14);
        check_invariants(&[&e.obs.log]);
    }

    /// A tight ring buffer evicts causes out from under their effects;
    /// orphans must degrade to roots without breaking the partition.
    #[test]
    fn eviction_degrades_orphans_to_roots(
        kind in 0u8..3,
        size in 0u8..4,
        seed in 0u64..500,
        capacity in 16usize..128,
    ) {
        let topo = small_topo(kind, size);
        let db = PolicyDb::permissive(&topo);
        let e = churny_engine(
            Engine::new(topo.clone(), OrwgProtocol::new(&topo, db)),
            seed,
            0.05,
            capacity,
        );
        check_invariants(&[&e.obs.log]);
    }

    /// Merged control-plane + data-plane streams (disjoint id bases)
    /// still satisfy the invariants, including span trees crossing a
    /// trunk failure into view invalidation and source-side repair.
    #[test]
    fn merged_streams_satisfy_causal_invariants(seed in 0u64..100) {
        let topo = HierarchyConfig::with_approx_size(40, seed).generate();
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db.clone()));
        e.enable_obs(1 << 14);
        e.begin_phase("converge");
        e.run_to_quiescence();
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(1 << 13);
        for f in &sample_flows(&topo, 12, seed) {
            let _ = net.open_repairable(f);
        }
        let trunk = topo
            .links()
            .filter(|l| l.up)
            .max_by_key(|l| {
                (
                    topo.neighbors(l.a).count() + topo.neighbors(l.b).count(),
                    std::cmp::Reverse(l.id.0),
                )
            })
            .unwrap()
            .id;
        net.fail_link(trunk);
        net.repair_pending(3);
        check_invariants(&[&e.obs.log, &net.obs.log]);
    }
}
