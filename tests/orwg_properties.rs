//! Property-based tests of the ORWG architecture end to end: synthesis,
//! setup validation, handle forwarding, and their security-ish invariants.

use adroute::core::dataplane::{HandleId, SetupPacket};
use adroute::core::network::OpenError;
use adroute::core::{OrwgNetwork, PolicyGateway, SetupError, Strategy};
use adroute::policy::legality::{legal_route, route_is_legal};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb};
use adroute::protocols::forwarding::sample_flows;
use adroute::topology::{generate, AdId, HierarchyConfig};
use proptest::prelude::*;

fn small_internet(seed: u64) -> adroute::topology::Topology {
    HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.3,
        bypass_prob: 0.2,
        multihome_prob: 0.3,
        seed,
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every route the ORWG opens is legal, cost-optimal, and forwardable;
    /// every refusal corresponds to genuine oracle unreachability.
    #[test]
    fn opened_routes_are_legal_and_optimal(seed in 0u64..400) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        for f in sample_flows(&topo, 12, seed) {
            match net.open(&f) {
                Ok(setup) => {
                    let cost = route_is_legal(&topo, &db, &f, &setup.route);
                    prop_assert!(cost.is_some(), "illegal route opened for {}", f);
                    let oracle = legal_route(&topo, &db, &f).expect("oracle agrees");
                    prop_assert_eq!(cost.unwrap(), oracle.cost);
                    prop_assert!(net.send(setup.handle).is_ok());
                }
                Err(OpenError::NoRoute) => {
                    prop_assert!(legal_route(&topo, &db, &f).is_none(),
                        "missed a legal route for {}", f);
                }
                Err(e) => prop_assert!(false, "unexpected error {:?}", e),
            }
        }
    }

    /// A gateway never accepts a setup its AD's policy denies, no matter
    /// what the (possibly forged) setup packet claims.
    #[test]
    fn gateways_reject_forged_setups(seed in 0u64..400, claimed_serial in 0u16..4) {
        let topo = generate::ring(5);
        let db = PolicyWorkload::granularity(2, seed).generate(&topo);
        // Make AD1's policy restrictive enough to have deny outcomes.
        let mut gw = PolicyGateway::new(AdId(1), 64);
        let policy = db.policy(AdId(1)).clone();
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        let claimed = if claimed_serial == 0 {
            None
        } else {
            Some(adroute::policy::PtId { ad: AdId(1), serial: claimed_serial - 1 })
        };
        let setup = SetupPacket {
            flow,
            route: vec![AdId(0), AdId(1), AdId(2)],
            claimed_pts: vec![claimed],
            handle: HandleId(7),
        };
        let truth = policy.evaluate(&flow, Some(AdId(0)), Some(AdId(2)));
        match gw.validate_setup(&policy, &setup) {
            Ok(()) => {
                // Accepted: the policy genuinely permits AND the claim was
                // exactly the deciding term.
                prop_assert!(truth.is_some());
                let (_, deciding) =
                    policy.evaluate_with_term(&flow, Some(AdId(0)), Some(AdId(2)));
                prop_assert_eq!(claimed, deciding);
            }
            Err(SetupError::PolicyDenied { .. }) => prop_assert!(truth.is_none()),
            Err(SetupError::PtMismatch { .. }) => {
                let (_, deciding) =
                    policy.evaluate_with_term(&flow, Some(AdId(0)), Some(AdId(2)));
                prop_assert!(claimed != deciding || truth.is_none());
            }
            Err(e) => prop_assert!(false, "unexpected {:?}", e),
        }
    }

    /// Synthesis strategies agree: whatever the caching/precompute
    /// strategy, the same flow yields the same route.
    #[test]
    fn strategies_agree_on_routes(seed in 0u64..200) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed ^ 0x55).generate(&topo);
        let flows = sample_flows(&topo, 8, seed);
        let mut on_demand = OrwgNetwork::converged_with(&topo, &db, Strategy::OnDemand, 1024);
        let mut cached =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 64 }, 1024);
        let mut hybrid =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Hybrid { capacity: 64 }, 1024);
        for f in &flows {
            net_precompute(&mut hybrid, f);
        }
        for f in &flows {
            let a = on_demand.policy_route(f);
            let b = cached.policy_route(f);
            let b2 = cached.policy_route(f); // cache hit must not change it
            let c = hybrid.policy_route(f);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&b, &b2);
            prop_assert_eq!(&b, &c);
        }
    }

    /// Teardown is complete: after tearing a flow down, no gateway holds
    /// its handle.
    #[test]
    fn teardown_leaves_no_state(seed in 0u64..200) {
        let topo = small_internet(seed);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        let mut opened = Vec::new();
        for f in sample_flows(&topo, 6, seed) {
            if let Ok(s) = net.open(&f) {
                opened.push(s);
            }
        }
        let before: usize = topo.ad_ids().map(|a| net.gateway(a).cached_handles()).sum();
        prop_assert!(before > 0 || opened.iter().all(|s| s.route.len() <= 2));
        for s in &opened {
            net.teardown(s.handle);
        }
        let after: usize = topo.ad_ids().map(|a| net.gateway(a).cached_handles()).sum();
        prop_assert_eq!(after, 0);
        prop_assert_eq!(net.open_flow_count(), 0);
    }
}

fn net_precompute(net: &mut OrwgNetwork, f: &FlowSpec) {
    let src = f.src;
    net.server_mut(src).precompute(&[*f]);
}
