//! Cross-crate integration tests: every architecture of the design space
//! run against the same internet and policy workload, checked against the
//! paper's qualitative claims.

use adroute::core::network::OpenError;
use adroute::core::router::converge_control_plane;
use adroute::core::{OrwgNetwork, Strategy};
use adroute::policy::legality::{legal_route, route_is_legal};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::PolicyDb;
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{
    audit_path, forward, sample_flows, score_flows, ForwardOutcome,
};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::Engine;
use adroute::topology::{HierarchyConfig, PartialOrder};

fn internet(seed: u64) -> adroute::topology::Topology {
    // One backbone subtree (~49 ADs): large enough for lateral/bypass
    // structure, small enough that the path-vector suite stays fast.
    HierarchyConfig {
        backbones: 1,
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.25,
        seed,
        ..HierarchyConfig::default()
    }
    .generate()
}

#[test]
fn no_architecture_ever_loops() {
    let topo = internet(42);
    let db = PolicyWorkload::default_mix(42).generate(&topo);
    let flows = sample_flows(&topo, 60, 42);

    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let s = score_flows(&mut dv, &topo, &db, &flows);
    assert_eq!(s.loops, 0, "naive DV looped after convergence");

    let mut ecma = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
    ecma.run_to_quiescence();
    let s = score_flows(&mut ecma, &topo, &db, &flows);
    assert_eq!(s.loops, 0, "ECMA looped");

    let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
    pv.run_to_quiescence();
    let s = score_flows(&mut pv, &topo, &db, &flows);
    assert_eq!(s.loops, 0, "path vector looped");

    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let s = score_flows(&mut ls, &topo, &db, &flows);
    assert_eq!(s.loops, 0, "LS hop-by-hop looped");
}

#[test]
fn policy_aware_architectures_never_violate() {
    let topo = internet(7);
    let db = PolicyWorkload::default_mix(7).generate(&topo);
    let flows = sample_flows(&topo, 60, 7);

    let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
    pv.run_to_quiescence();
    let s = score_flows(&mut pv, &topo, &db, &flows);
    assert_eq!(s.violating, 0, "IDRP delivered a policy-violating path");

    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let s = score_flows(&mut ls, &topo, &db, &flows);
    assert_eq!(s.violating, 0, "LS-HBH delivered a policy-violating path");
}

#[test]
fn link_state_finds_every_legal_route_dv_may_not() {
    // The central Section 5.1/5.3 contrast: link-state architectures have
    // availability 1.0; distance-vector-based ones may miss legal routes.
    let topo = internet(3);
    let db = PolicyWorkload::default_mix(3).generate(&topo);
    let flows = sample_flows(&topo, 80, 3);

    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let ls_score = score_flows(&mut ls, &topo, &db, &flows);
    assert!(
        (ls_score.availability() - 1.0).abs() < f64::EPSILON,
        "LS-HBH availability {}",
        ls_score.availability()
    );

    let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
    pv.run_to_quiescence();
    let pv_score = score_flows(&mut pv, &topo, &db, &flows);
    assert!(
        pv_score.availability() <= ls_score.availability() + f64::EPSILON,
        "PV should not beat complete-information link state"
    );
}

#[test]
fn orwg_setup_routes_are_always_legal_and_optimal() {
    let topo = internet(11);
    let db = PolicyWorkload::default_mix(11).generate(&topo);
    let engine = converge_control_plane(topo.clone(), db.clone());
    let mut net = OrwgNetwork::from_engine(&engine, Strategy::Cached { capacity: 256 }, 4096);
    for f in sample_flows(&topo, 60, 11) {
        match net.open(&f) {
            Ok(setup) => {
                let cost = route_is_legal(&topo, &db, &f, &setup.route)
                    .expect("gateway-validated route must be legal");
                let oracle = legal_route(&topo, &db, &f).expect("legal route exists");
                assert_eq!(cost, oracle.cost, "suboptimal route for {f}");
            }
            Err(OpenError::NoRoute) => {
                assert!(
                    legal_route(&topo, &db, &f).is_none(),
                    "missed legal route for {f}"
                );
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
}

#[test]
fn ecma_paths_are_valley_free_and_compliant_with_structural_policy() {
    let topo = internet(5);
    // Structural workload = exactly what the ordering can express.
    let db = PolicyWorkload::structural(5).generate(&topo);
    let po = PartialOrder::from_levels(&topo);
    let mut ecma = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
    ecma.run_to_quiescence();
    for f in sample_flows(&topo, 60, 5) {
        let out = forward(&mut ecma, &topo, &f);
        if let ForwardOutcome::Delivered { path } = &out {
            assert!(po.is_valley_free(path), "{f} took a valley: {path:?}");
            let audit = audit_path(&topo, &db, &f, path);
            assert!(
                audit.compliant(),
                "{f} violated structural policy at {:?} via {path:?}",
                audit.violations
            );
        }
    }
}

#[test]
fn naive_dv_violates_policy_where_policy_aware_protocols_do_not() {
    let topo = internet(13);
    let db = PolicyWorkload::default_mix(13).generate(&topo);
    let flows = sample_flows(&topo, 120, 13);

    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let dv_score = score_flows(&mut dv, &topo, &db, &flows);

    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let ls_score = score_flows(&mut ls, &topo, &db, &flows);

    assert!(
        dv_score.violating > 0,
        "expected the policy-blind baseline to violate policies somewhere"
    );
    assert_eq!(ls_score.violating, 0);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let topo = internet(99);
        let db = PolicyWorkload::default_mix(99).generate(&topo);
        let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
        let t = pv.run_to_quiescence();
        let s = score_flows(&mut pv, &topo, &db, &sample_flows(&topo, 40, 99));
        (
            t,
            pv.stats.msgs_sent,
            pv.stats.bytes_sent,
            s.delivered,
            s.compliant_of_legal,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn permissive_network_all_protocols_agree_on_reachability() {
    let topo = internet(17);
    let db = PolicyDb::permissive(&topo);
    let flows = sample_flows(&topo, 40, 17);

    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    for f in &flows {
        let a = forward(&mut dv, &topo, f).delivered();
        let b = forward(&mut ls, &topo, f).delivered();
        assert_eq!(a, b, "reachability disagreement for {f}");
        assert!(a, "connected permissive internet must deliver {f}");
    }
}

#[test]
fn class_bearing_flows_keep_link_state_exact() {
    use adroute::policy::{QosClass, UserClass};
    // Link-state completeness must hold for QOS/UCI classes too, not just
    // best effort — the classes are where the policy workload is granular.
    let topo = internet(23);
    let db = PolicyWorkload::default_mix(23).generate(&topo);
    let flows: Vec<_> = sample_flows(&topo, 60, 23)
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            f.with_qos(QosClass((i % 3) as u8))
                .with_uci(UserClass((i % 2) as u8))
        })
        .collect();
    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let s = score_flows(&mut ls, &topo, &db, &flows);
    assert_eq!(s.violating, 0);
    assert!(
        (s.availability() - 1.0).abs() < f64::EPSILON,
        "class-bearing availability {} ({}/{})",
        s.availability(),
        s.compliant_of_legal,
        s.legal_exists
    );
    // The per-class FIB state reflects the distinct classes used.
    let distinct: std::collections::HashSet<_> =
        flows.iter().map(|f| (f.src, f.dst, f.qos, f.uci)).collect();
    let total_fib: usize = topo.ad_ids().map(|a| ls.router(a).fib_entries()).sum();
    assert!(
        total_fib >= distinct.len(),
        "{total_fib} < {}",
        distinct.len()
    );
}

#[test]
fn egp_never_uses_non_tree_links_but_link_state_does() {
    use adroute::protocols::naive_dv::NaiveDv;
    use adroute::topology::LinkKind;
    let topo = internet(29);
    let (_, lateral, bypass) = topo.link_kind_counts();
    assert!(lateral + bypass > 0, "internet must have non-tree links");
    let mut egp = Engine::new(topo.clone(), NaiveDv::egp());
    egp.run_to_quiescence();
    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, PolicyDb::permissive(&topo)));
    ls.run_to_quiescence();
    let flows = sample_flows(&topo, 50, 29);
    let mut ls_used_nontree = false;
    for f in &flows {
        let out = forward(&mut egp, &topo, f);
        for w in out.path().windows(2) {
            let l = topo.link_between(w[0], w[1]).expect("adjacent");
            assert_eq!(topo.link(l).kind, LinkKind::Hierarchical, "EGP used {l}");
        }
        if let ForwardOutcome::Delivered { path } = forward(&mut ls, &topo, f) {
            ls_used_nontree |= path.windows(2).any(|w| {
                let l = topo.link_between(w[0], w[1]).unwrap();
                topo.link(l).kind != LinkKind::Hierarchical
            });
        }
    }
    assert!(
        ls_used_nontree,
        "link state should exploit lateral/bypass links"
    );
}
