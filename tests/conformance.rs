//! Differential conformance: on random small internets, every design
//! point must agree about policy-legal reachability — with permissive
//! policies all four hop-by-hop engines and the ORWG source-routing
//! architecture deliver exactly the flows the oracle calls reachable, and
//! under structural policies no policy-aware point ever delivers a
//! violating path. When two engines disagree, the typed event streams are
//! compared and the first divergence is printed for debugging.

use adroute::core::OrwgNetwork;
use adroute::policy::legality::legal_route;
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb};
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{self, forward, DataPlane, ForwardOutcome};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{Engine, EventLog, Protocol};
use adroute::topology::{HierarchyConfig, Topology};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Converges one engine with the typed log enabled and scores per-flow
/// delivery through its data plane.
fn converge_and_score<P: Protocol>(
    mut e: Engine<P>,
    topo: &Topology,
    flows: &[FlowSpec],
) -> (Vec<bool>, EventLog)
where
    Engine<P>: DataPlane,
{
    e.enable_obs(1 << 16);
    e.run_to_quiescence();
    let delivered = flows
        .iter()
        .map(|f| forward(&mut e, topo, f).delivered())
        .collect();
    (delivered, e.obs.log.clone())
}

/// Formats the first typed-trace divergence between two engines' logs.
fn divergence(a_name: &str, a: &EventLog, b_name: &str, b: &EventLog) -> String {
    use adroute::sim::LogComparison;
    match a.first_divergence(b) {
        LogComparison::Identical => {
            format!("typed traces of {a_name} and {b_name} are identical")
        }
        LogComparison::TruncatedMatch {
            left_dropped,
            right_dropped,
        } => format!(
            "typed traces of {a_name} and {b_name} match over the retained window \
             ({left_dropped} / {right_dropped} records evicted)"
        ),
        LogComparison::Diverged { index, left, right } => format!(
            "first typed-trace divergence between {a_name} and {b_name} at record #{index}:\n  \
             {a_name}: {left:?}\n  {b_name}: {right:?}"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Permissive regime: reachability is purely topological, so every
    /// design point must deliver exactly the oracle-reachable flows.
    #[test]
    fn design_points_agree_on_permissive_reachability(
        ads in 8usize..24,
        seed in 0u64..500,
    ) {
        let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
        let db = PolicyDb::permissive(&topo);
        let flows = forwarding::sample_flows(&topo, 20, seed);
        let oracle: Vec<bool> = flows
            .iter()
            .map(|f| legal_route(&topo, &db, f).is_some())
            .collect();

        let (dv, dv_log) =
            converge_and_score(Engine::new(topo.clone(), NaiveDv::egp()), &topo, &flows);
        let (ec, ec_log) = converge_and_score(
            Engine::new(topo.clone(), Ecma::all_transit(&topo)),
            &topo,
            &flows,
        );
        let (pv, pv_log) = converge_and_score(
            Engine::new(topo.clone(), PathVector::idrp(db.clone())),
            &topo,
            &flows,
        );
        let (ls, ls_log) = converge_and_score(
            Engine::new(topo.clone(), LsHbh::new(&topo, db.clone())),
            &topo,
            &flows,
        );
        let mut net = OrwgNetwork::converged(&topo, &db);
        let orwg: Vec<bool> = flows.iter().map(|f| net.open(f).is_ok()).collect();

        let verdicts = [
            ("naive-dv", &dv, Some(&dv_log)),
            ("ecma", &ec, Some(&ec_log)),
            ("path-vector", &pv, Some(&pv_log)),
            ("ls-hbh", &ls, Some(&ls_log)),
            ("orwg", &orwg, None),
        ];
        for (name, got, log) in &verdicts {
            if *got != &oracle {
                // Pin the disagreement: print where this engine's typed
                // stream first departs from the closest-behaving peer's.
                let diag = log
                    .map(|l| divergence(name, l, "ls-hbh", &ls_log))
                    .unwrap_or_default();
                return Err(TestCaseError::fail(format!(
                    "{name} disagrees with the oracle on reachability:\n  \
                     oracle {oracle:?}\n  {name} {got:?}\n{diag}"
                )));
            }
        }
    }

    /// Structural regime: policy-aware design points never deliver a
    /// policy-violating path, and the ORWG source (with a perfect view)
    /// opens exactly the oracle-legal flows.
    #[test]
    fn policy_aware_points_never_violate(ads in 8usize..24, seed in 0u64..500) {
        let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let flows = forwarding::sample_flows(&topo, 20, seed);

        let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
        pv.run_to_quiescence();
        let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
        ls.run_to_quiescence();
        for f in &flows {
            for (name, out) in [
                ("path-vector", forward(&mut pv, &topo, f)),
                ("ls-hbh", forward(&mut ls, &topo, f)),
            ] {
                if let ForwardOutcome::Delivered { path } = &out {
                    let audit = forwarding::audit_path(&topo, &db, f, path);
                    prop_assert!(
                        audit.compliant(),
                        "{name} delivered {f} over a path violating {:?}",
                        audit.violations
                    );
                }
            }
        }

        let mut net = OrwgNetwork::converged(&topo, &db);
        for f in &flows {
            let legal = legal_route(&topo, &db, f).is_some();
            let opened = net.open(f).is_ok();
            prop_assert_eq!(
                opened,
                legal,
                "orwg open ({}) disagrees with oracle legality ({}) for {}",
                opened,
                legal,
                f
            );
        }
    }
}
