//! Integration tests for dynamics: link failures, recoveries, partitions,
//! and policy changes, across the whole stack.

use adroute::core::network::SendError;
use adroute::core::{OrwgNetwork, Strategy};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb, TransitPolicy};
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{forward, sample_flows, ForwardOutcome};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{Engine, SimTime};
use adroute::topology::generate::ring;
use adroute::topology::{AdId, HierarchyConfig};

#[test]
fn ecma_converges_with_far_fewer_messages_than_naive_dv_after_partition() {
    // The Section 5.1.1 claim: the ordering prevents count-to-infinity.
    let n = 8;
    let naive_msgs = {
        let mut e = Engine::new(
            ring(n),
            NaiveDv {
                infinity: 32,
                split_horizon: false,
                ..NaiveDv::default()
            },
        );
        e.run_to_quiescence();
        // Partition AD4 completely, scoping the response in its own phase
        // so the converge traffic is excluded without wiping counters.
        let l1 = e.topo().link_between(AdId(3), AdId(4)).unwrap();
        let l2 = e.topo().link_between(AdId(4), AdId(5)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l1, false, t);
        e.schedule_link_change(l2, false, t);
        e.begin_phase("failure-response");
        e.run_to_quiescence();
        e.stats.phase_delta("failure-response").unwrap().msgs_sent
    };
    let ecma_msgs = {
        let mut e = Engine::new(ring(n), Ecma::all_transit(&ring(n)));
        e.run_to_quiescence();
        let l1 = e.topo().link_between(AdId(3), AdId(4)).unwrap();
        let l2 = e.topo().link_between(AdId(4), AdId(5)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l1, false, t);
        e.schedule_link_change(l2, false, t);
        e.begin_phase("failure-response");
        e.run_to_quiescence();
        e.stats.phase_delta("failure-response").unwrap().msgs_sent
    };
    assert!(
        ecma_msgs * 2 < naive_msgs,
        "expected ECMA ({ecma_msgs}) well below naive DV ({naive_msgs}) on partition"
    );
}

#[test]
fn all_protocols_recover_reachability_after_single_failure() {
    let topo = HierarchyConfig::default().generate();
    let db = PolicyDb::permissive(&topo);
    // Pick a backbone-regional link to fail: redundancy exists.
    let victim = topo
        .links()
        .find(|l| {
            topo.ad(l.a).level == adroute::topology::AdLevel::Backbone && topo.full_degree(l.b) >= 2
        })
        .expect("hierarchy has backbone links")
        .id;
    let flows = sample_flows(&topo, 30, 21);

    // Naive DV.
    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let t = dv.now().plus_us(1000);
    dv.schedule_link_change(victim, false, t);
    dv.run_to_quiescence();
    let post_topo = dv.topo().clone();
    for f in &flows {
        let out = forward(&mut dv, &post_topo, f);
        assert!(
            !matches!(out, ForwardOutcome::Loop { .. }),
            "naive DV loops after failure for {f}"
        );
    }

    // Path vector.
    let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
    pv.run_to_quiescence();
    let t = pv.now().plus_us(1000);
    pv.schedule_link_change(victim, false, t);
    pv.run_to_quiescence();
    for f in &flows {
        let out = forward(&mut pv, &post_topo, f);
        assert!(!matches!(out, ForwardOutcome::Loop { .. }));
    }

    // Link state.
    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let t = ls.now().plus_us(1000);
    ls.schedule_link_change(victim, false, t);
    ls.run_to_quiescence();
    for f in &flows {
        let out = forward(&mut ls, &post_topo, f);
        assert!(
            out.delivered(),
            "LS must re-deliver {f} (permissive, still connected)"
        );
    }
}

#[test]
fn flap_link_and_reconverge_to_original_state() {
    // Fail and recover: final tables must equal never-failed tables.
    let mk = || {
        let mut e = Engine::new(ring(6), NaiveDv::default());
        e.run_to_quiescence();
        e
    };
    let reference = mk();
    let mut flapped = mk();
    let l = flapped.topo().link_between(AdId(2), AdId(3)).unwrap();
    flapped.schedule_link_change(l, false, SimTime::from_ms(50));
    flapped.schedule_link_change(l, true, SimTime::from_ms(100));
    flapped.run_to_quiescence();
    for ad in reference.topo().ad_ids() {
        assert_eq!(
            reference.router(ad).metric,
            flapped.router(ad).metric,
            "{ad} tables diverge after flap"
        );
    }
}

#[test]
fn orwg_policy_change_redirects_traffic_mid_stream() {
    let topo = ring(6);
    let db = PolicyDb::permissive(&topo);
    let mut net = OrwgNetwork::converged_with(&topo, &db, Strategy::Hybrid { capacity: 64 }, 256);
    let flow = FlowSpec::best_effort(AdId(0), AdId(3));
    net.server_mut(AdId(0)).precompute(&[flow]);
    let s1 = net.open(&flow).unwrap();
    assert_eq!(s1.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
    for _ in 0..5 {
        net.send(s1.handle).unwrap();
    }
    // AD2 stops carrying transit.
    net.change_policy(TransitPolicy::deny_all(AdId(2)));
    assert!(matches!(net.send(s1.handle), Err(SendError::UnknownFlow)));
    let s2 = net.open(&flow).unwrap();
    assert_eq!(s2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    // Precomputation was refreshed: the new route came from the
    // precomputed table, not a fresh search.
    assert!(net.server(AdId(0)).stats.precomputed_hits >= 1);
    for _ in 0..5 {
        net.send(s2.handle).unwrap();
    }
}

#[test]
fn partitioned_destination_is_unreachable_for_everyone_without_loops() {
    let topo = ring(6);
    let db = PolicyDb::permissive(&topo);

    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    ls.run_to_quiescence();
    let l1 = ls.topo().link_between(AdId(2), AdId(3)).unwrap();
    let l2 = ls.topo().link_between(AdId(3), AdId(4)).unwrap();
    let t = ls.now().plus_us(1000);
    ls.schedule_link_change(l1, false, t);
    ls.schedule_link_change(l2, false, t);
    ls.run_to_quiescence();
    let post = ls.topo().clone();
    let f = FlowSpec::best_effort(AdId(0), AdId(3));
    assert!(matches!(
        forward(&mut ls, &post, &f),
        ForwardOutcome::NoRoute { .. }
    ));

    let mut net = OrwgNetwork::converged(&topo, &db);
    net.fail_link(l1);
    net.fail_link(l2);
    assert!(net.open(&f).is_err());
}

#[test]
fn mixed_policy_network_survives_random_failure_schedule() {
    let topo = HierarchyConfig::default().generate();
    let db = PolicyWorkload::default_mix(31).generate(&topo);
    let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    e.run_to_quiescence();
    // Fail three scattered links, then recover one, at staggered times.
    let ids: Vec<_> = topo.links().map(|l| l.id).collect();
    let picks = [
        ids[ids.len() / 4],
        ids[ids.len() / 2],
        ids[3 * ids.len() / 4],
    ];
    let mut t = e.now();
    for (i, l) in picks.iter().enumerate() {
        t = t.plus_us(5_000 * (i as u64 + 1));
        e.schedule_link_change(*l, false, t);
    }
    e.schedule_link_change(picks[0], true, t.plus_us(20_000));
    e.run_to_quiescence();
    let post = e.topo().clone();
    for f in sample_flows(&post, 40, 31) {
        let out = forward(&mut e, &post, &f);
        assert!(!matches!(out, ForwardOutcome::Loop { .. }), "loop for {f}");
        if let ForwardOutcome::Delivered { path } = &out {
            let audit = adroute::protocols::forwarding::audit_path(&post, &db, &f, path);
            assert!(audit.compliant(), "violation for {f} via {path:?}");
        }
    }
}
