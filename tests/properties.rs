//! Workspace-level property-based tests: invariants that must hold for
//! random topologies, random policies, and random dynamics.

use adroute::policy::legality::{legal_route, legal_route_bruteforce, route_is_legal};
use adroute::policy::ordering::{
    check_ordering, random_constraints, solve_ordering, OrderingSolution,
};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{
    AdSet, FlowSpec, PolicyAction, PolicyCondition, PolicyDb, QosClass, UserClass,
};
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{forward, ForwardOutcome};
use adroute::protocols::path_vector::PathVector;
use adroute::sim::Engine;
use adroute::topology::{generate, AdId, PartialOrder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random small connected topology (ring/grid/clique by selector).
fn small_topo(kind: u8, size: u8) -> adroute::topology::Topology {
    let n = 4 + (size % 4) as usize;
    match kind % 3 {
        0 => generate::ring(n),
        1 => generate::grid(2, n / 2 + 1),
        _ => generate::clique(n),
    }
}

/// Random policies over a topology, driven by a seed.
fn random_policies(topo: &adroute::topology::Topology, seed: u64) -> PolicyDb {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = PolicyDb::permissive(topo);
    for ad in topo.ad_ids() {
        let p = db.policy_mut(ad);
        for _ in 0..rng.gen_range(0..3) {
            let denied: Vec<AdId> = topo.ad_ids().filter(|_| rng.gen_bool(0.25)).collect();
            let cond = match rng.gen_range(0..4) {
                0 => PolicyCondition::SrcIn(AdSet::only(denied)),
                1 => PolicyCondition::DstIn(AdSet::only(denied)),
                2 => PolicyCondition::QosIn(vec![QosClass(rng.gen_range(0..3))]),
                _ => PolicyCondition::UciIn(vec![UserClass(rng.gen_range(0..3))]),
            };
            let action = if rng.gen_bool(0.6) {
                PolicyAction::Deny
            } else {
                PolicyAction::Permit {
                    cost: rng.gen_range(0..5),
                }
            };
            p.push_term(vec![cond], action);
        }
        if rng.gen_bool(0.2) {
            p.default = PolicyAction::Deny;
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast oracle agrees with exhaustive search on small graphs.
    #[test]
    fn oracle_matches_bruteforce(kind in 0u8..3, size in 0u8..4, seed in 0u64..1000) {
        let topo = small_topo(kind, size);
        let db = random_policies(&topo, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let src = AdId(rng.gen_range(0..topo.num_ads() as u32));
        let dst = AdId(rng.gen_range(0..topo.num_ads() as u32));
        let flow = FlowSpec::best_effort(src, dst)
            .with_qos(QosClass(rng.gen_range(0..3)))
            .with_uci(UserClass(rng.gen_range(0..3)));
        let fast = legal_route(&topo, &db, &flow);
        let slow = legal_route_bruteforce(&topo, &db, &flow);
        match (&fast, &slow) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(route_is_legal(&topo, &db, &flow, &a.path), Some(a.cost));
            }
            (None, None) => {}
            _ => prop_assert!(false, "oracle {:?} vs brute {:?}", fast, slow),
        }
    }

    /// Any route the oracle returns is simple, endpoint-correct, and
    /// passes the independent legality checker at the same cost.
    #[test]
    fn oracle_routes_validate(kind in 0u8..3, size in 0u8..4, seed in 0u64..1000) {
        let topo = small_topo(kind, size);
        let db = random_policies(&topo, seed);
        for f in adroute::protocols::forwarding::sample_flows(&topo, 5, seed) {
            if let Some(r) = legal_route(&topo, &db, &f) {
                prop_assert!(r.path.len() == 1 || topo.is_simple_path(&r.path));
                prop_assert_eq!(r.path.first(), Some(&f.src));
                prop_assert_eq!(r.path.last(), Some(&f.dst));
                prop_assert_eq!(route_is_legal(&topo, &db, &f, &r.path), Some(r.cost));
            }
        }
    }

    /// The ordering solver is sound, and its least fixpoint is pointwise
    /// minimal among returned solutions for permuted constraint orders.
    #[test]
    fn ordering_solver_order_independent(seed in 0u64..500, count in 0usize..30) {
        let topo = generate::clique(7);
        let mut cs = random_constraints(&topo, count, 0.6, seed);
        let a = solve_ordering(topo.num_ads(), &cs);
        cs.reverse();
        let b = solve_ordering(topo.num_ads(), &cs);
        prop_assert_eq!(a.is_satisfiable(), b.is_satisfiable());
        if let (OrderingSolution::Satisfiable(ra), OrderingSolution::Satisfiable(rb)) = (&a, &b) {
            prop_assert!(check_ordering(ra, &cs));
            prop_assert!(check_ordering(rb, &cs));
            // Least fixpoint is unique regardless of iteration order.
            prop_assert_eq!(ra, rb);
        }
    }

    /// ECMA forwarding is loop-free on random hierarchies with random
    /// link failures (the Section 5.1.1 guarantee).
    #[test]
    fn ecma_loop_free_under_failures(seed in 0u64..200, cut in 0usize..6) {
        let topo = adroute::topology::HierarchyConfig {
            backbones: 2,
            regionals_per_backbone: 2,
            metros_per_regional: 2,
            campuses_per_metro: 2,
            lateral_prob: 0.3,
            bypass_prob: 0.2,
            multihome_prob: 0.3,
            seed,
        }
        .generate();
        let po = PartialOrder::from_levels(&topo);
        let mut e = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
        e.run_to_quiescence();
        if topo.num_links() > 0 {
            let victim = adroute::topology::LinkId((seed as usize % topo.num_links()) as u32);
            if cut % 2 == 0 {
                let t = e.now().plus_us(1000);
                e.schedule_link_change(victim, false, t);
                e.run_to_quiescence();
            }
        }
        let post = e.topo().clone();
        for f in adroute::protocols::forwarding::sample_flows(&post, 10, seed) {
            let out = forward(&mut e, &post, &f);
            prop_assert!(!matches!(out, ForwardOutcome::Loop { .. }), "loop: {:?}", out.path());
            if let ForwardOutcome::Delivered { path } = &out {
                prop_assert!(po.is_valley_free(path));
            }
        }
    }

    /// Path-vector RIBs never store a path containing the router itself,
    /// and forwarding never delivers a policy-violating path.
    #[test]
    fn path_vector_invariants(kind in 0u8..3, size in 0u8..3, seed in 0u64..300) {
        let topo = small_topo(kind, size);
        let db = random_policies(&topo, seed);
        let mut e = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
        e.run_to_quiescence();
        for ad in topo.ad_ids() {
            for r in &e.router(ad).loc_rib {
                prop_assert!(!r.path.contains(&ad));
            }
        }
        for f in adroute::protocols::forwarding::sample_flows(&topo, 6, seed) {
            let out = forward(&mut e, &topo, &f);
            let looped = matches!(out, ForwardOutcome::Loop { .. });
            prop_assert!(!looped, "loop: {:?}", out.path());
            if let ForwardOutcome::Delivered { path } = &out {
                let audit = adroute::protocols::forwarding::audit_path(&topo, &db, &f, path);
                prop_assert!(audit.compliant(), "{} violated at {:?}", f, audit.violations);
            }
        }
    }

    /// Workload generation is deterministic and structurally sane for any
    /// seed and granularity.
    #[test]
    fn workloads_deterministic(seed in 0u64..1000, g in 0u8..12) {
        let topo = adroute::topology::HierarchyConfig::figure1().generate();
        let a = PolicyWorkload::granularity(g, seed).generate(&topo);
        let b = PolicyWorkload::granularity(g, seed).generate(&topo);
        prop_assert_eq!(a.total_terms(), b.total_terms());
        prop_assert_eq!(a.total_encoded_size(), b.total_encoded_size());
    }
}
