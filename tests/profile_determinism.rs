//! Profile-determinism contract (the PR-7 parallel-determinism contract
//! extended to observability): the *counter* side of every profile —
//! the `"work"` ledger in `adroute profile --json` — must be
//! byte-identical across double runs and across worker counts {1, 2, 8}
//! on the quickstart and e7b scenarios. Wall-clock span times are
//! explicitly outside the contract (they vary run to run), and so is
//! the span-tree *shape* across worker counts (sequential and parallel
//! execution legitimately take different code paths); only the ledger
//! is compared. A proptest drives random enter/exit/work schedules
//! through a [`Profiler`] and checks the span tree stays well-nested.

use std::collections::BTreeSet;

use adroute::sim::Profiler;
use adroute_cli::args::Args;
use adroute_cli::commands::dispatch;
use proptest::prelude::*;

/// Runs one full CLI command line in-process and returns its output.
fn cli(line: &str) -> String {
    dispatch(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap()).unwrap()
}

/// Extracts the deterministic `"work":{...}` object from a profile's
/// JSON output — the only part the determinism contract covers.
fn work_object(json: &str) -> &str {
    let start = json
        .find("\"work\":{")
        .expect("profile output has a work object");
    let end = json[start..].find('}').expect("work object closes") + start;
    &json[start..=end]
}

/// Double-run plus worker-count identity of the ledger on one scenario.
fn assert_ledger_invariant(scenario: &str, expect_keys: &[&str]) {
    let baseline = cli(&format!("profile {scenario} --workers 1 --json"));
    let ledger = work_object(&baseline).to_string();
    for key in expect_keys {
        assert!(
            ledger.contains(&format!("\"{key}\":")),
            "{scenario}: ledger lacks {key}: {ledger}"
        );
    }
    // Double-run identity at a fixed worker count.
    let again = cli(&format!("profile {scenario} --workers 1 --json"));
    assert_eq!(ledger, work_object(&again), "{scenario}: double-run drift");
    // Worker-count identity: parallel lanes must not change any counter.
    for workers in [2usize, 8] {
        let par = cli(&format!("profile {scenario} --workers {workers} --json"));
        assert_eq!(
            ledger,
            work_object(&par),
            "{scenario}: ledger differs at {workers} workers"
        );
    }
}

#[test]
fn quickstart_ledger_is_double_run_and_worker_invariant() {
    assert_ledger_invariant(
        "quickstart",
        &[
            "engine/events",
            "engine/msgs_sent",
            "serve/opens_popped",
            "synth/searches",
        ],
    );
}

#[test]
fn e7b_ledger_is_double_run_and_worker_invariant() {
    assert_ledger_invariant(
        "e7b",
        &[
            "engine/events",
            "engine/bytes_sent",
            "serve/opens_popped",
            "synth/sweeps",
        ],
    );
}

#[test]
fn real_profiles_fold_into_well_nested_paths() {
    // Every folded-stack line of a real profile must name a path whose
    // parent path is itself a span — i.e. the tree has no orphans — and
    // carry a parseable self-time.
    let folded = cli("profile quickstart --workers 2 --folded");
    let paths: BTreeSet<&str> = folded
        .lines()
        .map(|l| l.rsplit_once(' ').expect("line is `path self_us`").0)
        .collect();
    assert!(!paths.is_empty());
    for path in &paths {
        if let Some((parent, _leaf)) = path.rsplit_once(';') {
            assert!(paths.contains(parent), "orphan span path: {path}");
        }
    }
    for line in folded.lines() {
        let (_, n) = line.rsplit_once(' ').unwrap();
        n.parse::<u64>()
            .unwrap_or_else(|_| panic!("bad folded line: {line}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random enter/exit/work schedules leave the span tree well-nested:
    /// parent/child links are mutually consistent, no span outlives the
    /// schedule, and every folded path's prefix is itself a span.
    #[test]
    fn span_trees_are_well_nested(ops in proptest::collection::vec(0u8..8, 0..200)) {
        const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
        let mut p = Profiler::enabled();
        for op in ops {
            match op {
                0..=3 => p.enter(NAMES[op as usize]),
                4 | 5 => {
                    if let Some(name) = p.current() {
                        p.exit(name);
                    }
                }
                _ => p.work(NAMES[(op % 4) as usize], u64::from(op)),
            }
        }
        while let Some(name) = p.current() {
            p.exit(name);
        }
        prop_assert_eq!(p.depth(), 0);
        let spans = p.spans();
        for (i, s) in spans.iter().enumerate() {
            for &c in &s.children {
                prop_assert_eq!(spans[c].parent, Some(i));
            }
            if let Some(parent) = s.parent {
                prop_assert!(spans[parent].children.contains(&i));
            }
            prop_assert!(s.self_ns() <= s.wall_ns);
            prop_assert!(s.calls >= 1, "span '{}' closed no calls", s.name);
        }
        let folded = p.fold();
        let paths: BTreeSet<&str> = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' ').map(|(path, _)| path))
            .collect();
        prop_assert_eq!(paths.len(), spans.len());
        for path in &paths {
            if let Some((parent, _)) = path.rsplit_once(';') {
                prop_assert!(paths.contains(parent), "orphan span path: {}", path);
            }
        }
    }
}
