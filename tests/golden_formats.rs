//! Golden-format tests: the text syntaxes are stable artifacts — changing
//! them is a compatibility break and must show up in review as a diff of
//! these exact strings.

use adroute::policy::text::{format_policy, parse_policy};
use adroute::policy::{
    AdSet, PolicyAction, PolicyCondition, QosClass, TimeOfDay, TransitPolicy, UserClass,
};
use adroute::topology::graph::make_ad;
use adroute::topology::{io, AdId, AdLevel, Topology};

#[test]
fn golden_policy_text() {
    let mut p = TransitPolicy::deny_all(AdId(5));
    p.push_term(
        vec![PolicyCondition::SrcIn(AdSet::only([AdId(1), AdId(2)]))],
        PolicyAction::Deny,
    );
    p.push_term(
        vec![
            PolicyCondition::QosIn(vec![QosClass(1), QosClass(2)]),
            PolicyCondition::UciIn(vec![UserClass(1)]),
            PolicyCondition::TimeWindow(TimeOfDay::hm(19, 0), TimeOfDay::hm(7, 0)),
        ],
        PolicyAction::Permit { cost: 3 },
    );
    p.push_term(
        vec![
            PolicyCondition::DstIn(AdSet::except([AdId(9)])),
            PolicyCondition::PrevIn(AdSet::Any),
            PolicyCondition::NextIn(AdSet::only([AdId(4)])),
        ],
        PolicyAction::Permit { cost: 0 },
    );
    let expected = "\
policy AD5 {
    deny src {AD1,AD2};
    permit qos {1, 2} uci {1} time 19:00-07:00 cost 3;
    permit dst !{AD9} prev * next {AD4} cost 0;
    default deny;
}
";
    assert_eq!(format_policy(&p), expected);
    // And the golden text parses back to the same policy.
    let back = parse_policy(expected).unwrap();
    assert_eq!(back.terms, p.terms);
}

#[test]
fn golden_topology_text() {
    let ads = vec![
        make_ad(0, AdLevel::Backbone),
        make_ad(1, AdLevel::Regional),
        make_ad(2, AdLevel::Campus),
    ];
    let mut topo = Topology::new(
        ads,
        &[
            (AdId(0), AdId(1), 2),
            (AdId(1), AdId(2), 4),
            (AdId(0), AdId(2), 5),
        ],
    );
    topo.set_link_up(adroute::topology::LinkId(2), false);
    topo.set_delay(adroute::topology::LinkId(0), 2500);
    let expected = "\
# adroute topology v1
ad 0 backbone transit
ad 1 regional transit
ad 2 campus stub
link 0 1 metric 2 delay 2500 up
link 1 2 metric 4 delay 1000 up
link 0 2 metric 5 delay 1000 down
";
    assert_eq!(io::dump(&topo), expected);
    let back = io::parse(expected).unwrap();
    assert_eq!(io::dump(&back), expected);
}

#[test]
fn display_forms_are_stable() {
    use adroute::policy::FlowSpec;
    let f = FlowSpec::best_effort(AdId(3), AdId(7))
        .with_qos(QosClass(2))
        .with_uci(UserClass(1))
        .at(TimeOfDay::hm(8, 5));
    assert_eq!(f.to_string(), "AD3->AD7 qos2 uci1 @08:05");
    assert_eq!(AdSet::except([AdId(1), AdId(2)]).to_string(), "!{AD1,AD2}");
    assert_eq!(
        adroute::sim::SimTime::from_ms(12).plus_us(34).to_string(),
        "12.034ms"
    );
}
