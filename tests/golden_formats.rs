//! Golden-format tests: the text syntaxes are stable artifacts — changing
//! them is a compatibility break and must show up in review as a diff of
//! these exact strings.

use adroute::policy::text::{format_policy, parse_policy};
use adroute::policy::{
    AdSet, PolicyAction, PolicyCondition, QosClass, TimeOfDay, TransitPolicy, UserClass,
};
use adroute::topology::graph::make_ad;
use adroute::topology::{io, AdId, AdLevel, Topology};

#[test]
fn golden_policy_text() {
    let mut p = TransitPolicy::deny_all(AdId(5));
    p.push_term(
        vec![PolicyCondition::SrcIn(AdSet::only([AdId(1), AdId(2)]))],
        PolicyAction::Deny,
    );
    p.push_term(
        vec![
            PolicyCondition::QosIn(vec![QosClass(1), QosClass(2)]),
            PolicyCondition::UciIn(vec![UserClass(1)]),
            PolicyCondition::TimeWindow(TimeOfDay::hm(19, 0), TimeOfDay::hm(7, 0)),
        ],
        PolicyAction::Permit { cost: 3 },
    );
    p.push_term(
        vec![
            PolicyCondition::DstIn(AdSet::except([AdId(9)])),
            PolicyCondition::PrevIn(AdSet::Any),
            PolicyCondition::NextIn(AdSet::only([AdId(4)])),
        ],
        PolicyAction::Permit { cost: 0 },
    );
    let expected = "\
policy AD5 {
    deny src {AD1,AD2};
    permit qos {1, 2} uci {1} time 19:00-07:00 cost 3;
    permit dst !{AD9} prev * next {AD4} cost 0;
    default deny;
}
";
    assert_eq!(format_policy(&p), expected);
    // And the golden text parses back to the same policy.
    let back = parse_policy(expected).unwrap();
    assert_eq!(back.terms, p.terms);
}

#[test]
fn golden_topology_text() {
    let ads = vec![
        make_ad(0, AdLevel::Backbone),
        make_ad(1, AdLevel::Regional),
        make_ad(2, AdLevel::Campus),
    ];
    let mut topo = Topology::new(
        ads,
        &[
            (AdId(0), AdId(1), 2),
            (AdId(1), AdId(2), 4),
            (AdId(0), AdId(2), 5),
        ],
    );
    topo.set_link_up(adroute::topology::LinkId(2), false);
    topo.set_delay(adroute::topology::LinkId(0), 2500);
    let expected = "\
# adroute topology v1
ad 0 backbone transit
ad 1 regional transit
ad 2 campus stub
link 0 1 metric 2 delay 2500 up
link 1 2 metric 4 delay 1000 up
link 0 2 metric 5 delay 1000 down
";
    assert_eq!(io::dump(&topo), expected);
    let back = io::parse(expected).unwrap();
    assert_eq!(io::dump(&back), expected);
}

#[test]
fn golden_event_record_json() {
    use adroute::sim::{EventRecord, SimTime};
    use adroute::topology::LinkId;
    let at = SimTime::from_ms(1).plus_us(500);
    // One representative per field shape: `us` and `kind` lead, then the
    // per-kind fields in declaration order.
    let cases: Vec<(EventRecord, &str, &str)> = vec![
        (
            EventRecord::Start { ad: AdId(3) },
            r#"{"us":1500,"kind":"start","ad":3}"#,
            "start AD3",
        ),
        (
            EventRecord::MsgSend {
                from: AdId(0),
                to: AdId(1),
                link: LinkId(2),
                bytes: 64,
            },
            r#"{"us":1500,"kind":"send","from":0,"to":1,"link":2,"bytes":64}"#,
            "send AD0->AD1 via L2",
        ),
        (
            EventRecord::MsgDeliver {
                from: AdId(0),
                to: AdId(1),
                link: LinkId(2),
            },
            r#"{"us":1500,"kind":"deliver","from":0,"to":1,"link":2}"#,
            "deliver AD0->AD1 via L2",
        ),
        (
            EventRecord::MsgDrop {
                from: AdId(4),
                to: AdId(5),
            },
            r#"{"us":1500,"kind":"drop","from":4,"to":5}"#,
            "drop AD4->AD5 at source",
        ),
        (
            EventRecord::PhaseBegin { name: "converge" },
            r#"{"us":1500,"kind":"phase","name":"converge"}"#,
            "phase converge",
        ),
        (
            EventRecord::LsaOriginate {
                origin: AdId(2),
                seq: 7,
                links: 3,
            },
            r#"{"us":1500,"kind":"lsa-originate","origin":2,"seq":7,"links":3}"#,
            "lsa-originate AD2 seq=7 links=3",
        ),
        (
            EventRecord::RouteRecompute {
                ad: AdId(1),
                proto: "pv",
                changed: true,
            },
            r#"{"us":1500,"kind":"recompute","ad":1,"proto":"pv","changed":true}"#,
            "recompute AD1 proto=pv changed=true",
        ),
        (
            EventRecord::RouteSetupAck {
                src: AdId(0),
                dst: AdId(9),
                hops: 4,
                latency_us: 4000,
            },
            r#"{"us":1500,"kind":"setup-ack","src":0,"dst":9,"hops":4,"latency_us":4000}"#,
            "setup-ack AD0->AD9 hops=4 latency=4000us",
        ),
        (
            EventRecord::RouteSetupNack {
                src: AdId(0),
                dst: AdId(9),
                reason: "policy-denied",
            },
            r#"{"us":1500,"kind":"setup-nack","src":0,"dst":9,"reason":"policy-denied"}"#,
            "setup-nack AD0->AD9 reason=policy-denied",
        ),
        (
            EventRecord::RouteSetupRetransmit {
                src: AdId(0),
                dst: AdId(9),
                attempt: 2,
            },
            r#"{"us":1500,"kind":"setup-retransmit","src":0,"dst":9,"attempt":2}"#,
            "setup-retransmit AD0->AD9 attempt=2",
        ),
        (
            EventRecord::RouteSetupRepair {
                src: AdId(0),
                dst: AdId(9),
                via: "alternate",
            },
            r#"{"us":1500,"kind":"setup-repair","src":0,"dst":9,"via":"alternate"}"#,
            "setup-repair AD0->AD9 via=alternate",
        ),
        (
            EventRecord::ViewInvalidate {
                a: AdId(2),
                b: AdId(6),
                entries: 11,
            },
            r#"{"us":1500,"kind":"view-invalidate","a":2,"b":6,"entries":11}"#,
            "view-invalidate AD2-AD6 entries=11",
        ),
        (
            EventRecord::ViewDeltaApply {
                mode: "incremental",
                fallbacks: 1,
            },
            r#"{"us":1500,"kind":"view-delta","mode":"incremental","fallbacks":1}"#,
            "view-delta mode=incremental fallbacks=1",
        ),
        (
            EventRecord::FaultPlanApplied {
                link_events: 5,
                outages: 2,
                lossy: true,
            },
            r#"{"us":1500,"kind":"fault-plan","link_events":5,"outages":2,"lossy":true}"#,
            "fault-plan links=5 outages=2 lossy=true",
        ),
        (
            EventRecord::PartitionCut {
                links: 3,
                left: 40,
                right: 60,
            },
            r#"{"us":1500,"kind":"partition-cut","links":3,"left":40,"right":60}"#,
            "partition-cut links=3 left=40 right=60",
        ),
        (
            EventRecord::PartitionHeal { links: 3 },
            r#"{"us":1500,"kind":"partition-heal","links":3}"#,
            "partition-heal links=3",
        ),
        (
            EventRecord::MisbehaviorInject {
                ad: AdId(6),
                model: "route-leak",
            },
            r#"{"us":1500,"kind":"misbehavior-inject","ad":6,"model":"route-leak"}"#,
            "misbehavior-inject AD6 model=route-leak",
        ),
        (
            EventRecord::MonitorAlarm {
                detector: "policy-violation",
                suspect: AdId(6),
                evidence: 3,
            },
            r#"{"us":1500,"kind":"monitor-alarm","detector":"policy-violation","suspect":6,"evidence":3}"#,
            "monitor-alarm policy-violation suspect=AD6 evidence=3",
        ),
        (
            EventRecord::QuarantineEnter { ad: AdId(6) },
            r#"{"us":1500,"kind":"quarantine-enter","ad":6}"#,
            "quarantine-enter AD6",
        ),
        (
            EventRecord::QuarantineLift { ad: AdId(6) },
            r#"{"us":1500,"kind":"quarantine-lift","ad":6}"#,
            "quarantine-lift AD6",
        ),
    ];
    for (rec, json, display) in cases {
        assert_eq!(rec.to_json(at), json);
        assert_eq!(rec.to_string(), display);
    }
    // The logged form prefixes the stable id and (when present) the
    // provoking event's id, before the record's own fields.
    use adroute::sim::{EventId, LoggedEvent};
    let ev = LoggedEvent {
        at,
        id: EventId(7),
        cause: Some(EventId(3)),
        rec: EventRecord::LinkDown { link: LinkId(4) },
    };
    assert_eq!(
        ev.to_json(),
        r#"{"us":1500,"id":7,"cause":3,"kind":"link-down","link":4}"#
    );
    let root = LoggedEvent { cause: None, ..ev };
    assert_eq!(
        root.to_json(),
        r#"{"us":1500,"id":7,"kind":"link-down","link":4}"#
    );
}

#[test]
fn golden_metrics_json() {
    use adroute::sim::MetricsRegistry;
    let mut m = MetricsRegistry::new();
    m.add("flood_dup", 3);
    m.record("setup_latency_us", 0);
    m.record("setup_latency_us", 5);
    m.record("setup_latency_us", 9);
    // p50 is the interpolated quantile (the median of {0,5,9} estimated
    // within its bucket), not the old bucket-top answer of 7.
    assert_eq!(
        m.to_json(),
        r#"{"counters":{"flood_dup":3},"histograms":{"setup_latency_us":{"count":3,"sum":14,"min":0,"max":9,"p50":6,"p99":9,"buckets":[[0,1],[4,1],[8,1]]}}}"#
    );
}

#[test]
fn display_forms_are_stable() {
    use adroute::policy::FlowSpec;
    let f = FlowSpec::best_effort(AdId(3), AdId(7))
        .with_qos(QosClass(2))
        .with_uci(UserClass(1))
        .at(TimeOfDay::hm(8, 5));
    assert_eq!(f.to_string(), "AD3->AD7 qos2 uci1 @08:05");
    assert_eq!(AdSet::except([AdId(1), AdId(2)]).to_string(), "!{AD1,AD2}");
    assert_eq!(
        adroute::sim::SimTime::from_ms(12).plus_us(34).to_string(),
        "12.034ms"
    );
}
