//! Fault-injection integration tests: every design point must restore
//! policy-legal reachability after a mixed fault plan (link churn, lossy
//! channels, router crashes), the ORWG source must recover torn-down
//! routes, no stale handle may ever forward, and everything must stay
//! deterministic under identical seeds.

use adroute::core::network::OpenError;
use adroute::core::{OrwgNetwork, OrwgProtocol, SetupRetryPolicy, Strategy};
use adroute::policy::legality::legal_route;
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb};
use adroute::protocols::forwarding::{audit_path, forward, sample_flows, ForwardOutcome};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{
    ChannelFaults, CrashModel, Engine, FailureModel, FaultPlan, FaultSpec, Protocol, Trace,
};
use adroute::topology::generate::ring;
use adroute::topology::{AdId, HierarchyConfig, Topology};
use proptest::prelude::*;

/// The mixed fault regime used throughout: link churn, a 5% lossy
/// reordering channel, and router crashes, all from `seed`.
fn mixed_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        link_model: Some(FailureModel {
            mtbf_ms: 120.0,
            mttr_ms: 40.0,
            fallible_fraction: 0.4,
            seed: seed ^ 0xA,
        }),
        crash_model: Some(CrashModel {
            mtbf_ms: 200.0,
            mttr_ms: 50.0,
            fallible_fraction: 0.2,
            seed: seed ^ 0xB,
        }),
        channel: Some(ChannelFaults {
            loss: 0.05,
            corrupt: 0.01,
            duplicate: 0.01,
            reorder: 0.02,
            seed: seed ^ 0xC,
            ..ChannelFaults::default()
        }),
        ..FaultSpec::default()
    }
}

/// Converges `proto`, runs it through a healed mixed fault plan, and
/// returns the quiescent engine. Healed plans end with every link and
/// router back up, so ground truth afterwards equals the starting truth.
fn run_through_faults<P: Protocol>(topo: Topology, proto: P, seed: u64) -> Engine<P> {
    let mut e = Engine::new(topo, proto);
    e.run_to_quiescence();
    let plan = FaultPlan::draw(e.topo(), &mixed_spec(seed), e.now(), 300);
    plan.apply(&mut e);
    e.run_to_quiescence();
    assert!(
        e.stats.router_crashes > 0,
        "seed {seed} must crash at least one router"
    );
    assert!(e.stats.msgs_lost > 0, "seed {seed} must lose messages");
    e
}

#[test]
fn naive_dv_is_loop_free_after_mixed_faults() {
    let topo = HierarchyConfig::figure1().generate();
    let flows = sample_flows(&topo, 30, 17);
    let mut e = run_through_faults(topo, NaiveDv::default(), 31);
    let truth = e.topo().clone();
    for f in &flows {
        let out = forward(&mut e, &truth, f);
        assert!(
            !matches!(out, ForwardOutcome::Loop { .. }),
            "DV loops for {f} after faults"
        );
    }
}

#[test]
fn path_vector_recovers_compliant_routes_after_mixed_faults() {
    let topo = HierarchyConfig::figure1().generate();
    let db = PolicyWorkload::default_mix(5).generate(&topo);
    let flows = sample_flows(&topo, 30, 18);
    let mut e = run_through_faults(topo, PathVector::idrp(db.clone()), 32);
    let truth = e.topo().clone();
    let mut delivered = 0;
    for f in &flows {
        match forward(&mut e, &truth, f) {
            ForwardOutcome::Loop { path } => panic!("path vector loops for {f}: {path:?}"),
            ForwardOutcome::Delivered { path } => {
                assert!(
                    audit_path(&truth, &db, f, &path).compliant(),
                    "path vector violates policy for {f}: {path:?}"
                );
                delivered += 1;
            }
            _ => {}
        }
    }
    assert!(delivered > 0, "path vector delivered nothing after faults");
}

#[test]
fn ls_hbh_restores_full_availability_after_mixed_faults() {
    let topo = HierarchyConfig::figure1().generate();
    let db = PolicyWorkload::default_mix(5).generate(&topo);
    let flows = sample_flows(&topo, 30, 19);
    let mut e = run_through_faults(topo.clone(), LsHbh::new(&topo, db.clone()), 33);
    let truth = e.topo().clone();
    for f in &flows {
        let legal = legal_route(&truth, &db, f).is_some();
        let out = forward(&mut e, &truth, f);
        match out {
            ForwardOutcome::Delivered { ref path } => {
                assert!(legal, "LS-HBH delivered an illegal flow {f}");
                assert!(
                    audit_path(&truth, &db, f, path).compliant(),
                    "LS-HBH violates policy for {f}: {path:?}"
                );
            }
            _ => assert!(!legal, "LS-HBH missed the legal route for {f}: {out:?}"),
        }
    }
}

#[test]
fn orwg_restores_full_availability_after_mixed_faults() {
    let topo = HierarchyConfig::figure1().generate();
    let db = PolicyWorkload::default_mix(5).generate(&topo);
    let e = run_through_faults(topo.clone(), OrwgProtocol::new(&topo, db.clone()), 34);
    let truth = e.topo().clone();
    let mut net = OrwgNetwork::from_engine(&e, Strategy::Cached { capacity: 256 }, 4096);
    for f in sample_flows(&topo, 30, 20) {
        let legal = legal_route(&truth, &db, &f).is_some();
        match net.open(&f) {
            Ok(s) => {
                assert!(legal, "ORWG opened an illegal flow {f}");
                assert!(
                    audit_path(&truth, &db, &f, &s.route).compliant(),
                    "ORWG setup violates policy for {f}: {:?}",
                    s.route
                );
            }
            Err(OpenError::NoRoute) => assert!(!legal, "ORWG missed the legal route for {f}"),
            Err(e) => panic!("unexpected {e:?} for {f}"),
        }
    }
    assert_eq!(net.total_stale_forwards(), 0);
}

#[test]
fn orwg_source_recovers_from_gateway_crash_via_alternate_or_synthesis() {
    // A ring is 2-connected: any single transit-AD crash leaves a detour,
    // so every torn-down flow must be repaired — none may fail.
    let topo = ring(10);
    let db = PolicyDb::permissive(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.set_setup_loss(0.05, 99);
    let rp = SetupRetryPolicy {
        max_retries: 6,
        base_timeout_us: 1_000,
    };
    let victim = AdId(2);
    let flows: Vec<FlowSpec> = (0..10u32)
        .filter(|&i| i != victim.0)
        .flat_map(|s| {
            let dst = AdId((s + 4) % 10);
            (dst != victim && dst != AdId(s)).then(|| FlowSpec::best_effort(AdId(s), dst))
        })
        .collect();
    for f in &flows {
        net.open_with_retries(f, &rp)
            .expect("permissive ring always opens");
    }
    assert_eq!(net.open_flow_count(), flows.len());

    net.crash_gateway(victim);
    let torn = net.pending_repair_count();
    assert!(torn > 0, "some sampled flow must transit AD2");
    let r = net.repair_pending(4);
    assert_eq!(
        r.failures, 0,
        "a 2-connected ring leaves a detour for every flow"
    );
    assert_eq!(
        r.repaired_via_alternate + r.repaired_via_synthesis,
        torn as u64
    );
    assert!(
        r.repaired_via_alternate > 0,
        "cached spares must serve some repairs before synthesis"
    );
    assert_eq!(net.open_flow_count(), flows.len());
    // Every surviving route is live, policy-legal, and avoids the corpse.
    let handles: Vec<_> = net.open_flows().map(|(h, of)| (h, of.clone())).collect();
    for (h, of) in handles {
        assert!(
            !of.route[1..of.route.len() - 1].contains(&victim),
            "route transits the corpse"
        );
        assert!(audit_path(&topo, &db, &of.flow, &of.route).compliant());
        net.send(h).expect("repaired route must carry data");
    }
    assert_eq!(
        net.total_stale_forwards(),
        0,
        "no stale handle may ever forward"
    );
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let run = |seed: u64| {
        let topo = HierarchyConfig {
            backbones: 1,
            lateral_prob: 0.3,
            seed: 7,
            ..Default::default()
        }
        .generate();
        let db = PolicyWorkload::default_mix(7).generate(&topo);
        let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, db));
        e.trace = Trace::new(200_000);
        e.run_to_quiescence();
        let plan = FaultPlan::draw(e.topo(), &mixed_spec(seed), e.now(), 250);
        plan.apply(&mut e);
        e.run_to_quiescence();
        (
            e.trace.render(),
            e.stats.msgs_sent,
            e.stats.msgs_lost,
            e.stats.router_crashes,
        )
    };
    let a = run(41);
    let b = run(41);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert_eq!(a.0, b.0, "same fault seed must replay byte-identically");
    let c = run(42);
    assert_ne!(a.0, c.0, "different fault seeds must diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Two engine runs with the same topology seed, protocol, and fault
    /// plan seed produce byte-identical trace output (satellite of the
    /// fault-injection work: determinism survives the whole fault layer).
    #[test]
    fn fault_plans_replay_deterministically(topo_seed in 0u64..50, fault_seed in 0u64..1000) {
        let run = || {
            let topo = HierarchyConfig {
                backbones: 1,
                lateral_prob: 0.25,
                seed: topo_seed,
                ..Default::default()
            }
            .generate();
            let db = PolicyDb::permissive(&topo);
            let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db));
            e.trace = Trace::new(200_000);
            e.run_to_quiescence();
            let plan = FaultPlan::draw(e.topo(), &mixed_spec(fault_seed), e.now(), 150);
            plan.apply(&mut e);
            e.run_to_quiescence();
            (e.trace.render(), e.stats.clone())
        };
        let (ta, sa) = run();
        let (tb, sb) = run();
        prop_assert_eq!(sa.msgs_sent, sb.msgs_sent);
        prop_assert_eq!(sa.msgs_lost, sb.msgs_lost);
        prop_assert_eq!(sa.msgs_corrupted, sb.msgs_corrupted);
        prop_assert_eq!(sa.msgs_duplicated, sb.msgs_duplicated);
        prop_assert_eq!(sa.router_crashes, sb.router_crashes);
        prop_assert_eq!(ta, tb);
    }
}
