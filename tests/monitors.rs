//! Runtime safety-monitor battery: the four detectors must stay silent on
//! honest runs (zero false positives, each design point paired with the
//! policy regime it actually honors) and must catch injected byzantine
//! misbehavior within a bounded number of monitoring ticks.

use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb, TransitPolicy};
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{observe_flows, sample_flows, DataPlane};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::{observe_dv_metrics, NaiveDv};
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{
    Alarm, Engine, FaultPlan, MisbehaviorModel, MisbehaviorSpec, MonitorBank, MonitorConfig, Obs,
    Observation, QuarantineController, SimTime,
};
use adroute::topology::generate::{line, ring};
use adroute::topology::graph::make_ad;
use adroute::topology::{AdId, AdLevel, HierarchyConfig, Topology};
use proptest::prelude::*;

/// Feeds `ticks` monitoring rounds of forwarding probes into a fresh
/// bank and returns it (plus every alarm, in firing order).
fn watch<D: DataPlane>(
    dp: &mut D,
    topo: &Topology,
    db: &PolicyDb,
    flows: &[FlowSpec],
    ticks: usize,
    also: impl Fn(&mut D, &mut MonitorBank),
) -> (MonitorBank, Vec<Alarm>) {
    let mut bank = MonitorBank::new(MonitorConfig::default());
    let mut obs = Obs::disabled();
    let mut fired = Vec::new();
    for _ in 0..ticks {
        observe_flows(dp, topo, db, flows, &mut bank);
        also(dp, &mut bank);
        fired.extend(bank.end_tick(&mut obs, SimTime::ZERO));
    }
    (bank, fired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Honest runs never alarm: across random internets and flow samples,
    /// every design point — driven for several monitoring ticks with its
    /// matching policy regime — leaves all four detectors silent. DV is
    /// policy-blind, so it pairs with the permissive regime; ECMA and
    /// path vector honor the structural (valley/no-stub-transit)
    /// discipline completely; LS-HBH is complete under arbitrary
    /// explicit policy, so it gets the full default mix.
    #[test]
    fn honest_runs_never_alarm(topo_seed in 0u64..200, flow_seed in 0u64..1000) {
        let topo = HierarchyConfig {
            backbones: 1,
            lateral_prob: 0.25,
            seed: topo_seed,
            ..Default::default()
        }
        .generate();
        let flows = sample_flows(&topo, 25, flow_seed);

        let permissive = PolicyDb::permissive(&topo);
        let mut e = Engine::new(topo.clone(), NaiveDv::default());
        e.run_to_quiescence();
        let (bank, _) = watch(&mut e, &topo, &permissive, &flows, 5, |e, bank| {
            observe_dv_metrics(e, bank);
        });
        prop_assert!(bank.silent(), "dv false positives: {:?}", bank.alarms());

        let structural = PolicyWorkload::structural(topo_seed).generate(&topo);
        let mut e = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
        e.run_to_quiescence();
        let (bank, _) = watch(&mut e, &topo, &structural, &flows, 5, |_, _| {});
        prop_assert!(bank.silent(), "ecma false positives: {:?}", bank.alarms());

        let mut e = Engine::new(topo.clone(), PathVector::idrp(structural.clone()));
        e.run_to_quiescence();
        let (bank, _) = watch(&mut e, &topo, &structural, &flows, 5, |_, _| {});
        prop_assert!(bank.silent(), "pv false positives: {:?}", bank.alarms());

        let mixed = PolicyWorkload::default_mix(topo_seed).generate(&topo);
        let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, mixed.clone()));
        e.run_to_quiescence();
        let (bank, _) = watch(&mut e, &topo, &mixed, &flows, 5, |_, _| {});
        prop_assert!(bank.silent(), "ls-hbh false positives: {:?}", bank.alarms());
    }
}

#[test]
fn dv_blackholer_is_detected_within_the_streak_bound() {
    // line(5): AD2 advertises honestly but drops through-traffic. The
    // blackhole detector needs `blackhole_ticks` (3) consecutive
    // suspicious drops, so the alarm lands exactly on tick 3 and names
    // the blackholer.
    let topo = line(5);
    let db = PolicyDb::permissive(&topo);
    let dv = NaiveDv {
        misbehavior: MisbehaviorSpec::single(AdId(2), MisbehaviorModel::Blackhole),
        ..NaiveDv::default()
    };
    let mut e = Engine::new(topo.clone(), dv);
    e.run_to_quiescence();
    let flows = [
        FlowSpec::best_effort(AdId(0), AdId(4)),
        FlowSpec::best_effort(AdId(4), AdId(0)),
    ];
    let (_, fired) = watch(&mut e, &topo, &db, &flows, 6, |_, _| {});
    let a = fired.first().expect("blackholer undetected after 6 ticks");
    assert_eq!(a.detector, "blackhole");
    assert_eq!(a.suspect, AdId(2), "detection must attribute the dropper");
    assert_eq!(a.tick, 3, "detection latency equals the streak bound");
}

#[test]
fn dv_distance_falsifier_is_detected_as_a_blackhole_at_the_liar() {
    // ring(6): AD1 claims distance 1 to everything, attracting transit it
    // then cannot serve. The lured traffic dies *at* the liar, so the
    // blackhole detector attributes correctly within its streak bound.
    let topo = ring(6);
    let db = PolicyDb::permissive(&topo);
    let dv = NaiveDv {
        misbehavior: MisbehaviorSpec::single(AdId(1), MisbehaviorModel::DistanceFalsification),
        ..NaiveDv::default()
    };
    let mut e = Engine::new(topo.clone(), dv);
    e.run_to_quiescence();
    let flows = [FlowSpec::best_effort(AdId(0), AdId(3))];
    let (_, fired) = watch(&mut e, &topo, &db, &flows, 6, |_, _| {});
    let a = fired.first().expect("falsifier undetected after 6 ticks");
    assert_eq!(a.detector, "blackhole");
    assert_eq!(a.suspect, AdId(1));
    assert!(a.tick <= 3, "latency {} exceeds the streak bound", a.tick);
}

#[test]
fn pv_route_leak_trips_the_policy_tripwire_immediately() {
    // line(4) with AD1 denying all transit but leaking routes anyway: the
    // forbidden 0->3 route opens, and the very first delivered probe
    // carries AD1 as tripwire evidence — detection latency 1.
    let topo = line(4);
    let mut db = PolicyDb::permissive(&topo);
    db.set_policy(TransitPolicy::deny_all(AdId(1)));
    let mut pv = PathVector::idrp(db.clone());
    pv.misbehavior = MisbehaviorSpec::single(AdId(1), MisbehaviorModel::RouteLeak);
    let mut e = Engine::new(topo.clone(), pv);
    e.run_to_quiescence();
    let flows = [FlowSpec::best_effort(AdId(0), AdId(3))];
    let (_, fired) = watch(&mut e, &topo, &db, &flows, 3, |_, _| {});
    let a = fired.first().expect("route leak undetected");
    assert_eq!(a.detector, "policy-violation");
    assert_eq!(a.suspect, AdId(1), "evidence names the leaker");
    assert_eq!(a.tick, 1, "the tripwire fires on the first probe");
}

/// A two-regional hierarchy where the only honest route from campus 3 to
/// campus 4 climbs over the top (3-1-0-6-2-4), while multi-homed campus 5
/// sits under both regionals — the perfect spot for an up/down violation
/// to lure marked traffic through a valley.
fn valley_net() -> Topology {
    let ads = vec![
        make_ad(0, AdLevel::Backbone),
        make_ad(1, AdLevel::Regional),
        make_ad(2, AdLevel::Regional),
        make_ad(3, AdLevel::Campus),
        make_ad(4, AdLevel::Campus),
        make_ad(5, AdLevel::Campus),
        make_ad(6, AdLevel::Regional),
    ];
    let mut t = Topology::new(
        ads,
        &[
            (AdId(0), AdId(1), 1),
            (AdId(0), AdId(6), 1),
            (AdId(6), AdId(2), 1),
            (AdId(1), AdId(3), 1),
            (AdId(2), AdId(4), 1),
            (AdId(1), AdId(5), 1),
            (AdId(2), AdId(5), 1),
        ],
    );
    t.reclassify_roles();
    t
}

#[test]
fn ecma_up_down_violator_trips_the_policy_tripwire() {
    let topo = valley_net();
    let mut db = PolicyDb::permissive(&topo);
    db.set_policy(TransitPolicy::deny_all(AdId(5)));
    // Honest control: the flow climbs over the backbone, never touching
    // campus 5, and the monitors stay silent.
    let flows = [FlowSpec::best_effort(AdId(3), AdId(4))];
    let mut e = Engine::new(topo.clone(), Ecma::all_transit(&topo));
    e.run_to_quiescence();
    let (bank, _) = watch(&mut e, &topo, &db, &flows, 4, |_, _| {});
    assert!(bank.silent(), "honest ecma alarmed: {:?}", bank.alarms());

    // Violator: campus 5 advertises its valley-free metric as all-down,
    // luring regional 1's traffic down into the 1-5-2 valley it then
    // serves by forwarding marked packets upward — a transit that its own
    // policy (and the up/down discipline) forbids.
    let mut ecma = Ecma::all_transit(&topo);
    ecma.misbehavior = MisbehaviorSpec::single(AdId(5), MisbehaviorModel::UpDownViolation);
    let mut e = Engine::new(topo.clone(), ecma);
    e.run_to_quiescence();
    let (_, fired) = watch(&mut e, &topo, &db, &flows, 3, |_, _| {});
    let a = fired.first().expect("up/down violation undetected");
    assert_eq!(a.detector, "policy-violation");
    assert_eq!(a.suspect, AdId(5), "evidence names the violator");
    assert_eq!(a.tick, 1);
}

#[test]
fn ls_hbh_replayer_is_detected_and_healed_by_the_ghost_rule() {
    // ring(5): AD2 re-floods stale LSAs with bumped sequence numbers after
    // a real link event. The origin's self-originated-LSA ghost rule is
    // the in-protocol detector (`ls_seq_jump`) and the cure: within one
    // reflood round every database converges back to the genuine LSA and
    // forwarding still works.
    let topo = ring(5);
    let db = PolicyDb::permissive(&topo);
    let mut proto = LsHbh::new(&topo, db.clone());
    proto.misbehavior = MisbehaviorSpec::single(AdId(2), MisbehaviorModel::LsaReplay);
    let mut e = Engine::new(topo.clone(), proto);
    e.run_to_quiescence();
    let fail = topo
        .link_between(AdId(0), AdId(1))
        .expect("ring link exists");
    e.schedule_link_change(fail, false, e.now().plus_us(1));
    e.run_to_quiescence();
    assert!(
        e.stats.counter("lsa_replay_forged") > 0,
        "the replayer never forged"
    );
    assert!(
        e.stats.counter("ls_seq_jump") > 0,
        "the ghost rule never fired — replay undetected"
    );
    let truth = e.topo().clone();
    // Self-healing: forwarding across the surviving arc still works.
    let out = adroute::protocols::forwarding::forward(
        &mut e,
        &truth,
        &FlowSpec::best_effort(AdId(0), AdId(2)),
    );
    assert!(out.delivered(), "replay poisoned forwarding: {out:?}");
}

#[test]
fn monitor_feed_is_deterministic_and_dedups_repeat_offenders() {
    // Two identical watches over the same engine state produce identical
    // alarm streams, and a misbehaver is reported once per detector no
    // matter how long it keeps misbehaving.
    let run = || {
        let topo = line(5);
        let db = PolicyDb::permissive(&topo);
        let dv = NaiveDv {
            misbehavior: MisbehaviorSpec::single(AdId(2), MisbehaviorModel::Blackhole),
            ..NaiveDv::default()
        };
        let mut e = Engine::new(topo.clone(), dv);
        e.run_to_quiescence();
        let flows = [FlowSpec::best_effort(AdId(0), AdId(4))];
        let (_, fired) = watch(&mut e, &topo, &db, &flows, 10, |_, _| {});
        fired
            .iter()
            .map(|a| (a.detector, a.suspect, a.tick, a.evidence))
            .collect::<Vec<_>>()
    };
    let a = run();
    assert_eq!(a.len(), 1, "dedup failed: {a:?}");
    assert_eq!(a, run());
}

#[test]
fn cti_watchdog_fires_on_a_monotone_climb() {
    // The count-to-infinity watchdog is fed from DV metric samples; a
    // synthetic monotone climb below infinity must fire it after
    // `cti_ticks` (4) consecutive climbs, blaming the churning
    // destination (DV updates carry no provenance to do better).
    let mut bank = MonitorBank::new(MonitorConfig::default());
    let mut obs = Obs::disabled();
    let mut fired = Vec::new();
    for m in [3u32, 5, 7, 9, 11] {
        bank.observe(Observation::MetricSample {
            at: AdId(0),
            dst: AdId(7),
            metric: m,
            infinity: 1 << 20,
            reachable: true,
        });
        fired.extend(bank.end_tick(&mut obs, SimTime::ZERO));
    }
    let a = fired.first().expect("climb undetected");
    assert_eq!(a.detector, "count-to-infinity");
    assert_eq!(a.suspect, AdId(7));
}

/// Two 5-cycles bridged by two straddling links. Cutting both bridges at
/// split 5 partitions the domain while each island keeps a cycle of its
/// own, so DV metrics toward the far island genuinely count toward
/// infinity (poisoned reverse cannot break three-party loops) and
/// forwarding toward the far island transiently walks in circles —
/// exactly the unreachability symptoms the partition-aware monitors must
/// refuse to blame on any router.
fn two_island_net() -> Topology {
    let ads = (0..10).map(|i| make_ad(i, AdLevel::Campus)).collect();
    let mut links = Vec::new();
    for i in 0..5u32 {
        links.push((AdId(i), AdId((i + 1) % 5), 1));
        links.push((AdId(5 + i), AdId(5 + (i + 1) % 5), 1));
    }
    links.push((AdId(4), AdId(5), 1));
    links.push((AdId(0), AdId(9), 1));
    Topology::new(ads, &links)
}

#[test]
fn pure_partition_raises_no_alarms_and_no_quarantines() {
    let topo = two_island_net();
    let db = PolicyDb::permissive(&topo);
    let mut e = Engine::new(topo.clone(), NaiveDv::default());
    e.run_to_quiescence();
    // Every cross-island pair plus intra-island controls on both sides.
    let flows: Vec<FlowSpec> = (0..5)
        .map(|i| FlowSpec::best_effort(AdId(i), AdId(9 - i)))
        .chain([
            FlowSpec::best_effort(AdId(0), AdId(3)),
            FlowSpec::best_effort(AdId(6), AdId(8)),
        ])
        .collect();
    let cut_at = e.now().plus_us(1_000);
    let heal_at = cut_at.plus_us(400_000);
    let plan = FaultPlan::partition(&topo, 5, cut_at, heal_at).expect("bridge cut partitions");
    plan.apply(&mut e);

    // Aggressive thresholds: two consecutive suspicious ticks alarm, one
    // alarm quarantines. The checkpoints span the whole count-to-infinity
    // climb inside the partition window, so without the reachability
    // gates this configuration would quarantine an innocent router.
    let mut bank = MonitorBank::new(MonitorConfig {
        loop_ticks: 2,
        blackhole_ticks: 2,
        cti_ticks: 2,
    });
    let mut obs = Obs::disabled();
    let mut quarantine = QuarantineController::new(1);
    for k in 1..=10u64 {
        // Advance *within* the partition window (quiescence would run
        // through the queued heal), then take one monitoring tick.
        e.run_until(cut_at.plus_us(k * 30_000));
        let truth = e.topo().clone();
        observe_flows(&mut e, &truth, &db, &flows, &mut bank);
        observe_dv_metrics(&e, &mut bank);
        for a in bank.end_tick(&mut obs, e.now()) {
            quarantine.note_alarm(&a, &mut obs, e.now());
        }
    }
    assert!(bank.silent(), "pure partition alarmed: {:?}", bank.alarms());
    assert_eq!(
        quarantine.quarantined().count(),
        0,
        "false-positive quarantine during a pure partition"
    );

    // Run through the heal and the resync sweep: the domain reconverges,
    // cross-island traffic flows again, and the monitors stay silent.
    e.run_to_quiescence();
    assert!(e.now() >= heal_at, "quiescence must run through the heal");
    let truth = e.topo().clone();
    for f in &flows {
        let out = adroute::protocols::forwarding::forward(&mut e, &truth, f);
        assert!(out.delivered(), "healed flow {f} undelivered: {out:?}");
    }
    for _ in 0..4 {
        observe_flows(&mut e, &truth, &db, &flows, &mut bank);
        observe_dv_metrics(&e, &mut bank);
        for a in bank.end_tick(&mut obs, e.now()) {
            quarantine.note_alarm(&a, &mut obs, e.now());
        }
    }
    assert!(bank.silent(), "post-heal alarmed: {:?}", bank.alarms());
    assert_eq!(quarantine.quarantined().count(), 0);
}

#[test]
fn heal_reconciliation_matches_the_flush_oracle() {
    use adroute::core::{OrwgNetwork, OrwgProtocol, Strategy, ViewMaintenance};
    use adroute::policy::legality::route_is_legal;

    let topo = HierarchyConfig {
        backbones: 1,
        lateral_prob: 0.3,
        seed: 17,
        ..Default::default()
    }
    .generate();
    let db = PolicyWorkload::structural(17).generate(&topo);
    let flows = sample_flows(&topo, 20, 23);
    let split = (topo.num_ads() / 2) as u32;

    let run = |mode: ViewMaintenance| {
        let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db.clone()));
        e.run_to_quiescence();
        let mut net = OrwgNetwork::from_engine(
            &e,
            Strategy::Cached { capacity: 256 },
            OrwgNetwork::DEFAULT_HANDLE_CAPACITY,
        );
        net.set_view_maintenance(mode);
        // Warm every cache pre-partition so reconciliation has stale
        // state it must actually fix.
        for f in &flows {
            let _ = net.synthesize(f);
        }
        let cut_at = e.now().plus_us(1_000);
        let heal_at = cut_at.plus_us(250_000);
        let plan = FaultPlan::partition(&topo, split, cut_at, heal_at)
            .expect("hierarchy splits at the index midpoint");
        plan.apply(&mut e);
        // Quiescence runs through the cut, intra-island reconvergence,
        // the heal, and the post-horizon resync sweep.
        e.run_to_quiescence();
        net.refresh_from_engine(&e);
        flows
            .iter()
            .map(|f| {
                let r = net.synthesize(f);
                if let Some(x) = &r {
                    assert_eq!(
                        route_is_legal(net.topo(), net.policies(), f, &x.path),
                        Some(x.cost),
                        "illegal post-heal route for {f}"
                    );
                }
                r.map(|x| x.cost)
            })
            .collect::<Vec<_>>()
    };
    let incremental = run(ViewMaintenance::Incremental);
    let flush = run(ViewMaintenance::Flush);
    assert_eq!(
        incremental, flush,
        "post-heal incremental reconciliation diverged from the flush oracle"
    );
}
