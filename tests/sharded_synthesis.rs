//! Differential battery for the sharded, batched Route Server synthesis
//! engine: at every shard count, [`RouteServer::request_batch`] must be
//! **byte-identical** to a [`RouteServer::request`] loop — same routes,
//! same NACKs (`None` answers), same [`SynthStats`], same cache contents
//! and recency order — and [`OrwgNetwork::serve_batch`] with
//! `max_batch == 1` must *be* [`OrwgNetwork::serve_next`]. The batched
//! path is allowed to do measurably less work (the separate `SweepStats`
//! counters), never to answer differently.

use adroute::core::{
    run_load_ramp, OrwgNetwork, PendingOpen, PolicyRoute, RouteServer, ServeOutcome, ShardConfig,
    Strategy, StressConfig,
};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{FlowSpec, PolicyDb, QosClass};
use adroute::protocols::forwarding::sample_flows;
use adroute::sim::{OpenStorm, SimTime, StormPhase};
use adroute::topology::{AdId, HierarchyConfig, Topology};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_internet(seed: u64) -> Topology {
    HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.3,
        bypass_prob: 0.2,
        multihome_prob: 0.3,
        seed,
    }
    .generate()
}

/// A storm-shaped request sequence: sampled flows replayed with
/// repetitions (cache hits), a sprinkle of distinct QoS classes (distinct
/// compatibility classes within one batch), and deterministic order.
fn request_sequence(topo: &Topology, seed: u64) -> Vec<FlowSpec> {
    let base = sample_flows(topo, 24, seed);
    let mut seq = Vec::new();
    for round in 0..3usize {
        for (i, f) in base.iter().enumerate() {
            let mut f = *f;
            if (i + round) % 5 == 0 {
                f.qos = QosClass((i % 3) as u8);
            }
            seq.push(f);
        }
    }
    seq
}

fn twin_servers(topo: &Topology, db: &PolicyDb, capacity: usize) -> (RouteServer, RouteServer) {
    let a = RouteServer::new(
        AdId(0),
        topo.clone(),
        db.clone(),
        Strategy::Hybrid { capacity },
    );
    let b = RouteServer::new(
        AdId(0),
        topo.clone(),
        db.clone(),
        Strategy::Hybrid { capacity },
    );
    (a, b)
}

/// Offers `flow` at `at` with the given deadline slack.
fn offer_at(net: &mut OrwgNetwork, flow: FlowSpec, at: SimTime, deadline_us: u64) {
    net.set_clock(at);
    let _ = net.offer_open(PendingOpen {
        flow,
        offered_at: at,
        arrival: at,
        deadline: at.plus_us(deadline_us),
        attempt: 0,
        phase: 0,
        cause: None,
    });
}

/// The observable answer of one serve outcome: which flow, what kind of
/// answer, the exact route (for serves), and the NACK hint (for sheds).
/// Event ids and handles are allocation-order artifacts and excluded.
fn outcome_key(o: &ServeOutcome) -> (FlowSpec, &'static str, Option<Vec<AdId>>, u64) {
    match o {
        ServeOutcome::Served {
            open, rung, setup, ..
        } => (open.flow, rung.tag(), Some(setup.route.clone()), 0),
        ServeOutcome::Shed {
            open,
            retry_after_us,
            ..
        } => (open.flow, "shed", None, *retry_after_us),
        ServeOutcome::NoRoute { open, rung } => (open.flow, rung.tag(), None, 1),
        ServeOutcome::Failed { open, rung, .. } => (open.flow, rung.tag(), None, 2),
        ServeOutcome::Expired { open } => (open.flow, "expired", None, 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The twin oracle: for random internets, policy workloads, request
    /// sequences, batch boundaries, and every shard count, a batched
    /// server and a monolithic (request-loop) server return byte-identical
    /// routes and `None` answers, accrue byte-identical [`SynthStats`],
    /// and end with byte-identical caches — contents *and* recency order.
    #[test]
    fn request_batch_twins_the_request_loop(seed in 0u64..150, chunk in 1usize..9) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let seq = request_sequence(&topo, seed);
        for shards in SHARD_COUNTS {
            let (mut mono, mut batched) = twin_servers(&topo, &db, 32);
            for window in seq.chunks(chunk) {
                let solo: Vec<Option<PolicyRoute>> =
                    window.iter().map(|f| mono.request(f)).collect();
                let swept = batched.request_batch(window, shards);
                prop_assert_eq!(
                    &solo, &swept,
                    "answers diverged at shards={} chunk={}", shards, chunk
                );
            }
            prop_assert_eq!(
                mono.stats, batched.stats,
                "SynthStats diverged at shards={}", shards
            );
            prop_assert_eq!(
                mono.cache_snapshot(), batched.cache_snapshot(),
                "cache contents or recency order diverged at shards={}", shards
            );
        }
    }

    /// Shard-count invariance: the batched server's answers, stats, and
    /// final cache state are a pure function of the request sequence, not
    /// of how destinations were sharded.
    #[test]
    fn batched_answers_are_shard_count_invariant(seed in 0u64..100, chunk in 2usize..9) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let seq = request_sequence(&topo, seed);
        let run = |shards: usize| {
            let mut rs = RouteServer::new(
                AdId(0), topo.clone(), db.clone(), Strategy::Hybrid { capacity: 32 },
            );
            let answers: Vec<Option<PolicyRoute>> = seq
                .chunks(chunk)
                .flat_map(|w| rs.request_batch(w, shards))
                .collect();
            (answers, rs.stats, rs.cache_snapshot())
        };
        let baseline = run(SHARD_COUNTS[0]);
        for shards in &SHARD_COUNTS[1..] {
            let other = run(*shards);
            prop_assert_eq!(&baseline.0, &other.0, "answers changed with shards={}", shards);
            prop_assert_eq!(baseline.1, other.1, "stats changed with shards={}", shards);
            prop_assert_eq!(&baseline.2, &other.2, "cache changed with shards={}", shards);
        }
    }

    /// At the serving layer, `serve_batch` with `max_batch == 1` *is*
    /// `serve_next`: draining twin networks under identical offered load
    /// (including some already-expired opens) yields identical outcome
    /// streams — same flows in the same order, same rungs, same routes,
    /// same NACK retry-after hints — and identical synthesis counters.
    #[test]
    fn serve_batch_of_one_is_serve_next(seed in 0u64..80) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let mut a = OrwgNetwork::converged(&topo, &db);
        let mut b = OrwgNetwork::converged(&topo, &db);
        let flows = sample_flows(&topo, 40, seed);
        for (i, f) in flows.iter().enumerate() {
            let at = SimTime((i as u64 + 1) * 50);
            // Every fourth open gets a deadline that will have passed by
            // drain time, so expired cancellation is exercised too.
            let deadline = if i % 4 == 0 { 100 } else { 60_000_000 };
            offer_at(&mut a, *f, at, deadline);
            offer_at(&mut b, *f, at, deadline);
        }
        let drain_at = SimTime(1_000_000);
        a.set_clock(drain_at);
        b.set_clock(drain_at);
        let one = ShardConfig { shards: 8, max_batch: 1, refill_budget: 0 };
        for ad in topo.ad_ids() {
            let mut mono = Vec::new();
            while let Some(o) = a.serve_next(ad) {
                mono.push(outcome_key(&o));
            }
            let mut batched = Vec::new();
            loop {
                let outcomes = b.serve_batch(ad, one);
                if outcomes.is_empty() {
                    break;
                }
                batched.extend(outcomes.iter().map(outcome_key));
            }
            prop_assert_eq!(&mono, &batched, "outcome streams diverged at {}", ad);
            prop_assert_eq!(
                a.server(ad).stats, b.server(ad).stats,
                "SynthStats diverged at {}", ad
            );
        }
    }

    /// Whole-storm shard-count invariance: `run_load_ramp` under sharded
    /// service produces the same report — every phase counter, every
    /// latency percentile — at shards 1, 2, and 8. Destination sharding
    /// parallelizes work inside one slot; it must never change what the
    /// slot answers.
    #[test]
    fn storm_reports_are_shard_count_invariant(seed in 0u64..40) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let phases = [
            StormPhase { duration_ms: 10, opens_per_sec: 2_000 },
            StormPhase { duration_ms: 15, opens_per_sec: 20_000 },
        ];
        let storm = OpenStorm::draw(&topo, &phases, SimTime::ZERO, seed);
        let durations: Vec<u64> = phases.iter().map(|p| p.duration_ms * 1000).collect();
        let run = |shards: usize| {
            let mut net = OrwgNetwork::converged(&topo, &db);
            let cfg = StressConfig {
                seed,
                sharding: Some(ShardConfig { shards, ..ShardConfig::default() }),
                service_full_us: 6_000,
                service_cached_us: 1_200,
                service_stored_us: 600,
                ..StressConfig::default()
            };
            let r = run_load_ramp(&mut net, &storm, &durations, &cfg);
            let phases: Vec<_> = r.phases.iter().map(|p| {
                (p.offered, p.served, p.served_full, p.served_cached, p.served_stored,
                 p.shed, p.abandoned, p.no_route, p.failed)
            }).collect();
            (phases, r.served, r.shed, r.abandoned, r.retries, r.p50_wait_us, r.p99_wait_us)
        };
        let baseline = run(SHARD_COUNTS[0]);
        for shards in &SHARD_COUNTS[1..] {
            let other = run(*shards);
            prop_assert_eq!(&baseline, &other, "storm report changed with shards={}", shards);
        }
    }
}
