//! Property-based tests of the overload-robust serving path: no brownout
//! rung — however degraded — ever serves a policy-illegal route or a
//! route transiting a quarantined AD, shed opens always carry a
//! retry-after NACK, and goodput past saturation plateaus instead of
//! collapsing.

use adroute::core::{
    run_load_ramp, AdmissionConfig, AdmissionVerdict, OrwgNetwork, PendingOpen, ServeOutcome,
    ShardConfig, StressConfig,
};
use adroute::policy::legality::route_is_legal;
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::FlowSpec;
use adroute::protocols::forwarding::sample_flows;
use adroute::sim::{OpenStorm, SimTime, StormPhase};
use adroute::topology::{AdId, HierarchyConfig};
use proptest::prelude::*;

fn small_internet(seed: u64) -> adroute::topology::Topology {
    HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.3,
        bypass_prob: 0.2,
        multihome_prob: 0.3,
        seed,
    }
    .generate()
}

/// Offers `flow` to its source AD's admission queue at `at`, with a far
/// deadline so serving is never short-circuited by expiry.
fn offer(net: &mut OrwgNetwork, flow: FlowSpec, at: SimTime) -> AdmissionVerdict {
    net.set_clock(at);
    net.offer_open(PendingOpen {
        flow,
        offered_at: at,
        arrival: at,
        deadline: at.plus_us(60_000_000),
        attempt: 0,
        phase: 0,
        cause: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every route any brownout rung serves — full synthesis, cached
    /// fast path, or stored-only — is policy-legal and avoids every
    /// quarantined AD, even when the cache and the stored answers were
    /// populated *before* the quarantine was declared (the stale-store
    /// threat). Shed opens always carry a positive retry-after.
    #[test]
    fn no_rung_serves_illegal_or_quarantined_routes(seed in 0u64..200) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(1 << 12);
        let q = AdId((seed % topo.num_ads() as u64) as u32);
        let flows: Vec<FlowSpec> = sample_flows(&topo, 16, seed)
            .into_iter()
            .filter(|f| f.src != q && f.dst != q)
            .collect();

        // Warm every Route Server's cache and stored answers on the full
        // rung, while the quarantined AD is still considered legitimate.
        for (i, f) in flows.iter().enumerate() {
            let at = SimTime((i as u64 + 1) * 100);
            let queued = matches!(offer(&mut net, *f, at), AdmissionVerdict::Queued { .. });
            prop_assert!(queued, "warm-up offer was shed");
            net.set_clock(at);
            net.serve_next(f.src);
        }

        // Quarantine after the stores were populated, then re-offer the
        // same flows in bursts deep enough to walk the whole ladder
        // (depth > cached_depth serves stored-only, > full_depth cached).
        net.quarantine_ad(q, None);
        let cfg = AdmissionConfig { full_depth: 1, cached_depth: 3, ..AdmissionConfig::default() };
        net.set_admission(cfg);
        let mut t = SimTime(1_000_000);
        for f in &flows {
            for _ in 0..5 {
                t = t.plus_us(10);
                if let AdmissionVerdict::Shed { retry_after_us, .. } = offer(&mut net, *f, t) {
                    prop_assert!(retry_after_us > 0, "shed without a retry-after hint");
                }
            }
        }
        let mut served = 0usize;
        for ad in topo.ad_ids() {
            loop {
                t = t.plus_us(10);
                net.set_clock(t);
                match net.serve_next(ad) {
                    None => break,
                    Some(ServeOutcome::Served { open, setup, .. }) => {
                        served += 1;
                        prop_assert!(
                            route_is_legal(&topo, &db, &open.flow, &setup.route).is_some(),
                            "rung served a policy-illegal route for {}", open.flow
                        );
                        prop_assert!(
                            !setup.route.contains(&q),
                            "rung served through quarantined {q} for {}", open.flow
                        );
                    }
                    Some(ServeOutcome::Shed { retry_after_us, .. }) => {
                        prop_assert!(retry_after_us > 0, "shed without a retry-after hint");
                    }
                    Some(_) => {}
                }
            }
        }
        // The ladder kept serving: degradation is not denial.
        prop_assert!(served > 0 || flows.is_empty(), "nothing served at all");
    }

    /// The sharded batch path honors quarantine exactly as the
    /// monolithic ladder does: after an avoid-set update flushes the
    /// stores, no service slot — whatever its rung, batch size, or shard
    /// count — answers through the quarantined AD, whether the answer
    /// came from the hot tier, the LRU, a shared sweep, or a background
    /// refill run in an idle slot.
    #[test]
    fn no_sharded_slot_serves_quarantined_routes(
        seed in 0u64..120,
        shards in 1usize..9,
        max_batch in 1usize..9,
    ) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(1 << 12);
        let q = AdId((seed % topo.num_ads() as u64) as u32);
        let flows: Vec<FlowSpec> = sample_flows(&topo, 16, seed)
            .into_iter()
            .filter(|f| f.src != q && f.dst != q)
            .collect();
        // Warm stores (LRU + hot tier) while the AD is still legitimate.
        for (i, f) in flows.iter().enumerate() {
            let at = SimTime((i as u64 + 1) * 100);
            offer(&mut net, *f, at);
            net.set_clock(at);
            net.serve_next(f.src);
        }
        net.quarantine_ad(q, None);
        let cfg = AdmissionConfig { full_depth: 1, cached_depth: 3, ..AdmissionConfig::default() };
        net.set_admission(cfg);
        let mut t = SimTime(1_000_000);
        for f in &flows {
            for _ in 0..5 {
                t = t.plus_us(10);
                let _ = offer(&mut net, *f, t);
            }
        }
        let shard = ShardConfig { shards, max_batch, refill_budget: 8 };
        for ad in topo.ad_ids() {
            loop {
                t = t.plus_us(10);
                net.set_clock(t);
                let outcomes = net.serve_batch(ad, shard);
                if outcomes.is_empty() {
                    // Idle slot: the background scheduler refills what
                    // the avoid-set flush invalidated — revalidated
                    // entries only, which the re-offers below confirm.
                    net.background_refill(ad, shard.refill_budget);
                    break;
                }
                for o in outcomes {
                    if let ServeOutcome::Served { open, setup, .. } = o {
                        prop_assert!(
                            route_is_legal(&topo, &db, &open.flow, &setup.route).is_some(),
                            "sharded slot served a policy-illegal route for {}", open.flow
                        );
                        prop_assert!(
                            !setup.route.contains(&q),
                            "sharded slot served through quarantined {q} for {}", open.flow
                        );
                    }
                }
            }
        }
        // Whatever the refills stored must itself honor the quarantine:
        // serve the same flows once more, stored state first.
        for f in &flows {
            t = t.plus_us(10);
            let _ = offer(&mut net, *f, t);
        }
        for ad in topo.ad_ids() {
            loop {
                t = t.plus_us(10);
                net.set_clock(t);
                let outcomes = net.serve_batch(ad, shard);
                if outcomes.is_empty() {
                    break;
                }
                for o in outcomes {
                    if let ServeOutcome::Served { open, setup, .. } = o {
                        prop_assert!(
                            !setup.route.contains(&q),
                            "a background refill resurrected quarantined {q} for {}", open.flow
                        );
                    }
                }
            }
        }
    }

    /// Past saturation, goodput plateaus: the heaviest phase of a load
    /// ramp still delivers at least 70% of the best earlier phase's
    /// goodput (and sheds rather than silently collapsing).
    #[test]
    fn goodput_is_monotone_noncollapsing_past_saturation(seed in 0u64..100) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::structural(seed).generate(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(1 << 14);
        // 15 ADs; service costs below put full-rung saturation at
        // ~166 opens/s per AD (2.5k/s aggregate) and the stored-rung
        // ceiling at ~1666/s per AD (25k/s aggregate): the last phase
        // offers past the ceiling.
        let phases = [
            StormPhase { duration_ms: 25, opens_per_sec: 1_000 },
            StormPhase { duration_ms: 25, opens_per_sec: 5_000 },
            StormPhase { duration_ms: 25, opens_per_sec: 40_000 },
        ];
        let storm = OpenStorm::draw(&topo, &phases, SimTime::ZERO, seed);
        let durations: Vec<u64> = phases.iter().map(|p| p.duration_ms * 1000).collect();
        let cfg = StressConfig {
            seed,
            service_full_us: 6_000,
            service_cached_us: 1_200,
            service_stored_us: 600,
            ..StressConfig::default()
        };
        let r = run_load_ramp(&mut net, &storm, &durations, &cfg);
        let goodputs: Vec<u64> = r.phases.iter().map(|p| p.goodput_per_sec()).collect();
        let best_early = goodputs[..goodputs.len() - 1].iter().copied().max().unwrap();
        let last = *goodputs.last().unwrap();
        prop_assert!(
            last * 10 >= best_early * 7,
            "goodput collapsed past saturation: {goodputs:?}"
        );
        prop_assert!(r.served > 0, "ramp served nothing");
        // Saturation was actually reached: the ramp shed (NACKed) work.
        prop_assert!(r.shed > 0, "last phase never saturated: {goodputs:?}");
    }
}
