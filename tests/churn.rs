//! Steady-state churn tests: protocols under continuous seeded link
//! failure/repair schedules (the paper's Section 2.2 operating regime).

use adroute::policy::workload::PolicyWorkload;
use adroute::policy::PolicyDb;
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{forward, sample_flows, ForwardOutcome};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::sim::{Engine, FailureModel, FailureSchedule};
use adroute::topology::HierarchyConfig;

fn internet(seed: u64) -> adroute::topology::Topology {
    HierarchyConfig {
        backbones: 1,
        lateral_prob: 0.3,
        bypass_prob: 0.15,
        multihome_prob: 0.3,
        seed,
        ..HierarchyConfig::default()
    }
    .generate()
}

fn model(seed: u64) -> FailureModel {
    FailureModel {
        mtbf_ms: 200.0,
        mttr_ms: 50.0,
        fallible_fraction: 0.3,
        seed,
    }
}

#[test]
fn link_state_stays_consistent_through_churn() {
    let topo = internet(81);
    let db = PolicyWorkload::default_mix(81).generate(&topo);
    let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    e.run_to_quiescence();
    let schedule = FailureSchedule::draw(e.topo(), &model(81), e.now().plus_us(1000), 1_500);
    assert!(!schedule.is_empty());
    schedule.apply(&mut e);
    e.run_to_quiescence();
    // After the dust settles every router's database agrees with ground
    // truth: its view contains exactly the operational links.
    let truth = e.topo().clone();
    for ad in truth.ad_ids() {
        if truth.neighbors(ad).next().is_none() {
            // The schedule's repair for this AD's last link fell beyond the
            // horizon: it ends the run isolated, so its view is legitimately
            // frozen at the moment it was cut off (seed 81 strands AD19/AD22).
            continue;
        }
        let (view, _) = e.router(ad).flooder.db.view();
        assert_eq!(
            view.links().filter(|l| l.up).count(),
            truth.links().filter(|l| l.up).count(),
            "{ad} view diverges from ground truth"
        );
    }
    // And forwarding is loop-free and policy-compliant.
    for f in sample_flows(&truth, 30, 81) {
        let out = forward(&mut e, &truth, &f);
        assert!(!matches!(out, ForwardOutcome::Loop { .. }), "loop for {f}");
        if let ForwardOutcome::Delivered { path } = &out {
            let audit = adroute::protocols::forwarding::audit_path(&truth, &db, &f, path);
            assert!(audit.compliant(), "{f} violates at {:?}", audit.violations);
        }
    }
}

#[test]
fn dv_protocols_survive_churn_without_loops() {
    let topo = internet(83);
    for split in [false, true] {
        let mut e = Engine::new(
            topo.clone(),
            NaiveDv {
                infinity: 32,
                split_horizon: split,
                ..NaiveDv::default()
            },
        );
        e.run_to_quiescence();
        let schedule = FailureSchedule::draw(e.topo(), &model(83), e.now().plus_us(1000), 1_000);
        schedule.apply(&mut e);
        e.run_to_quiescence();
        let truth = e.topo().clone();
        for f in sample_flows(&truth, 25, 83) {
            let out = forward(&mut e, &truth, &f);
            assert!(
                !matches!(out, ForwardOutcome::Loop { .. }),
                "split={split}: post-churn loop for {f}"
            );
        }
    }
}

#[test]
fn ecma_churn_preserves_valley_freedom() {
    let topo = internet(89);
    let po = adroute::topology::PartialOrder::from_levels(&topo);
    let mut e = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
    e.run_to_quiescence();
    let schedule = FailureSchedule::draw(e.topo(), &model(89), e.now().plus_us(1000), 1_000);
    schedule.apply(&mut e);
    e.run_to_quiescence();
    let truth = e.topo().clone();
    for f in sample_flows(&truth, 30, 89) {
        let out = forward(&mut e, &truth, &f);
        assert!(!matches!(out, ForwardOutcome::Loop { .. }));
        if let ForwardOutcome::Delivered { path } = &out {
            assert!(po.is_valley_free(path), "{f} valley after churn: {path:?}");
        }
    }
}

#[test]
fn churn_runs_are_deterministic() {
    let run = || {
        let topo = internet(97);
        let mut e = Engine::new(topo.clone(), LsHbh::new(&topo, PolicyDb::permissive(&topo)));
        e.run_to_quiescence();
        let schedule = FailureSchedule::draw(e.topo(), &model(97), e.now().plus_us(1000), 1_200);
        schedule.apply(&mut e);
        let t = e.run_to_quiescence();
        (t, e.stats.msgs_sent, e.stats.bytes_sent, e.stats.events)
    };
    assert_eq!(run(), run());
}

#[test]
fn final_state_matches_fresh_start_on_final_topology() {
    // Path independence for link-state: converging through churn ends in
    // the same databases as starting fresh on the final topology.
    let topo = internet(91);
    let db = PolicyDb::permissive(&topo);
    let mut churned = Engine::new(topo.clone(), LsHbh::new(&topo, db.clone()));
    churned.run_to_quiescence();
    let schedule =
        FailureSchedule::draw(churned.topo(), &model(91), churned.now().plus_us(1000), 800);
    schedule.apply(&mut churned);
    churned.run_to_quiescence();

    let mut final_topo = topo.clone();
    for l in churned.topo().links() {
        final_topo.set_link_up(l.id, l.up);
    }
    let mut fresh = Engine::new(final_topo.clone(), LsHbh::new(&final_topo, db));
    fresh.run_to_quiescence();

    for ad in final_topo.ad_ids() {
        if final_topo.degree(ad) == 0 {
            continue; // isolated ADs may hold stale views
        }
        let (a, _) = churned.router(ad).flooder.db.view();
        let (b, _) = fresh.router(ad).flooder.db.view();
        let ua: Vec<_> = a.links().filter(|l| l.up).map(|l| (l.a, l.b)).collect();
        let ub: Vec<_> = b.links().filter(|l| l.up).map(|l| (l.a, l.b)).collect();
        assert_eq!(ua, ub, "{ad}: churned view != fresh view");
    }
}
