//! Message-conservation properties: at quiescence, every control message
//! an engine accounted as sent (plus duplicates a faulty channel minted)
//! must be accounted exactly once as delivered, lost, or corrupted —
//! under arbitrary seeded fault plans, for every design-point engine, in
//! the run totals *and* inside every phase scope.

use adroute::policy::PolicyDb;
use adroute::protocols::ecma::Ecma;
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{
    ChannelFaults, CrashModel, Engine, FailureModel, FaultPlan, FaultSpec, Protocol, Stats,
};
use adroute::topology::{generate, HierarchyConfig, Topology};
use proptest::prelude::*;

/// A random small internet (ring/grid/hierarchy by selector).
fn small_topo(kind: u8, size: u8, seed: u64) -> Topology {
    let n = 4 + (size % 4) as usize;
    match kind % 3 {
        0 => generate::ring(n),
        1 => generate::grid(2, n / 2 + 1),
        _ => HierarchyConfig::with_approx_size(2 * n, seed).generate(),
    }
}

/// A fault plan exercising every injector at once: link churn, router
/// crashes, and a lossy/corrupting/duplicating/reordering channel. Rates
/// are moderate — the property under test is the accounting identity at
/// quiescence, so every engine (including the count-to-infinity-prone DV
/// baselines) must still converge under the plan.
fn full_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        link_model: Some(FailureModel {
            mtbf_ms: 80.0,
            mttr_ms: 25.0,
            fallible_fraction: 0.3,
            seed: seed ^ 0x11,
        }),
        crash_model: Some(CrashModel {
            mtbf_ms: 120.0,
            mttr_ms: 30.0,
            fallible_fraction: 0.2,
            seed: seed ^ 0x22,
        }),
        channel: Some(ChannelFaults {
            loss: 0.05,
            corrupt: 0.01,
            duplicate: 0.02,
            reorder: 0.03,
            seed: seed ^ 0x33,
            ..ChannelFaults::default()
        }),
        ..FaultSpec::default()
    }
}

/// Converges, applies the fault plan inside a `churn` phase scope, and
/// re-converges. Returns the final stats.
fn run_faulted<P: Protocol>(mut e: Engine<P>, seed: u64) -> Stats {
    e.begin_phase("converge");
    e.run_to_quiescence();
    e.begin_phase("churn");
    let plan = FaultPlan::draw(e.topo(), &full_spec(seed), e.now(), 60);
    plan.apply(&mut e);
    e.run_to_quiescence();
    e.stats.clone()
}

/// Conservation must hold for the totals and for each phase delta: phase
/// boundaries sit at quiescence, so no message is in flight across one.
fn assert_conserves(name: &str, s: &Stats) -> Result<(), TestCaseError> {
    prop_assert!(
        s.conserves_messages(),
        "{name} totals leak: sent {} + dup {} != delivered {} + lost {} + corrupted {}",
        s.msgs_sent,
        s.msgs_duplicated,
        s.msgs_delivered,
        s.msgs_lost,
        s.msgs_corrupted
    );
    for phase in s.phase_names().collect::<Vec<_>>() {
        let d = s.phase_delta(phase).expect("named phase has a delta");
        prop_assert!(
            d.conserves_messages(),
            "{name} phase '{phase}' leaks: sent {} + dup {} != delivered {} + lost {} + corrupted {}",
            d.msgs_sent,
            d.msgs_duplicated,
            d.msgs_delivered,
            d.msgs_lost,
            d.msgs_corrupted
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every design-point engine conserves messages under arbitrary
    /// seeded fault plans, in totals and per phase scope.
    #[test]
    fn engines_conserve_messages_under_faults(
        kind in 0u8..3,
        size in 0u8..5,
        seed in 0u64..10_000,
    ) {
        let topo = small_topo(kind, size, seed);
        let db = PolicyDb::permissive(&topo);

        let s = run_faulted(Engine::new(topo.clone(), NaiveDv::egp()), seed);
        assert_conserves("naive-dv", &s)?;

        let s = run_faulted(Engine::new(topo.clone(), Ecma::all_transit(&topo)), seed);
        assert_conserves("ecma", &s)?;

        let s = run_faulted(
            Engine::new(topo.clone(), PathVector::idrp(db.clone())),
            seed,
        );
        assert_conserves("path-vector", &s)?;

        let s = run_faulted(Engine::new(topo.clone(), LsHbh::new(&topo, db)), seed);
        assert_conserves("ls-hbh", &s)?;
    }

    /// Phase deltas partition the totals: summing each message counter
    /// across phases reproduces the run totals exactly.
    #[test]
    fn phase_deltas_partition_totals(size in 0u8..5, seed in 0u64..10_000) {
        let topo = small_topo(2, size, seed);
        let db = PolicyDb::permissive(&topo);
        let s = run_faulted(Engine::new(topo.clone(), LsHbh::new(&topo, db)), seed);
        let (mut sent, mut delivered, mut lost) = (0, 0, 0);
        for phase in s.phase_names().collect::<Vec<_>>() {
            let d = s.phase_delta(phase).unwrap();
            sent += d.msgs_sent;
            delivered += d.msgs_delivered;
            lost += d.msgs_lost;
        }
        prop_assert_eq!(sent, s.msgs_sent);
        prop_assert_eq!(delivered, s.msgs_delivered);
        prop_assert_eq!(lost, s.msgs_lost);
    }
}
