//! Golden typed-trace exports: the JSONL event-stream schema is a stable
//! artifact — a change to record fields, field order, or event ordering
//! must show up in review as a diff of the committed `tests/golden/*.jsonl`
//! snapshots. Regenerate intentionally with `BLESS=1 cargo test --test
//! golden_trace`.

use adroute::core::{OrwgNetwork, OrwgProtocol};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{PolicyDb, TransitPolicy};
use adroute::protocols::forwarding::{audit_path, sample_flows};
use adroute::sim::{
    Engine, EventRecord, MisbehaviorModel, MonitorBank, MonitorConfig, Observation,
    QuarantineController, SimTime,
};
use adroute::topology::{AdId, HierarchyConfig, LinkId, Topology};
use std::collections::BTreeMap;
use std::fs;

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compares `actual` against the committed snapshot (or rewrites the
/// snapshot under `BLESS=1`).
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path} ({e}); run with BLESS=1"));
    assert_eq!(
        actual, expected,
        "typed-trace export for {name} changed; if intentional, re-bless with \
         BLESS=1 cargo test --test golden_trace"
    );
}

/// The E-series-style internet used by the benches (lateral 0.25, bypass
/// 0.1, multihome 0.2), scaled down to test size.
fn internet(approx_ads: usize, seed: u64) -> Topology {
    HierarchyConfig {
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.2,
        ..HierarchyConfig::with_approx_size(approx_ads, seed)
    }
    .generate()
}

/// The operational link with the best-connected endpoints — the "trunk".
fn trunk(topo: &Topology) -> LinkId {
    topo.links()
        .filter(|l| l.up)
        .max_by_key(|l| {
            (
                topo.neighbors(l.a).count() + topo.neighbors(l.b).count(),
                std::cmp::Reverse(l.id.0),
            )
        })
        .unwrap()
        .id
}

/// Quickstart scenario: the Figure-1 internet's ORWG control plane
/// converging, then absorbing one link failure — exported as the
/// control-plane event stream.
fn quickstart_export() -> String {
    let topo = HierarchyConfig::figure1().generate();
    let db = PolicyDb::permissive(&topo);
    let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db));
    e.enable_obs(1 << 16);
    e.begin_phase("converge");
    e.run_to_quiescence();
    e.begin_phase("failure-response");
    e.schedule_link_change(trunk(&topo), false, e.now().plus_us(1));
    e.run_to_quiescence();
    e.obs.log.export_jsonl()
}

/// E7b-style scenario: a converged data plane on an E-series internet —
/// repairable opens, a trunk failure with incremental view invalidation,
/// and source-side repair — exported as the data-plane event stream.
fn e7b_export() -> String {
    let topo = internet(120, 23);
    let db = PolicyWorkload::structural(23).generate(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.enable_obs(1 << 14);
    for f in &sample_flows(&topo, 40, 23) {
        let _ = net.open_repairable(f);
    }
    net.fail_link(trunk(&topo));
    net.repair_pending(3);
    net.obs.log.export_jsonl()
}

/// Byzantine audit scenario (the CLI's `audit quickstart` lifecycle): the
/// busiest transit AD on the Figure-1 internet turns rogue with forged
/// acks, the policy tripwire detects it, quarantine tears its flows down,
/// and repair reconverges — exported as the data-plane event stream with
/// the full misbehavior-inject → monitor-alarm → quarantine-enter chain.
fn audit_quickstart_export() -> String {
    let seed = 1990u64;
    let topo = HierarchyConfig::figure1().generate();
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.enable_obs(1 << 14);
    for f in &sample_flows(&topo, 40, seed) {
        let _ = net.open_repairable(f);
    }
    // The rogue is the AD carrying the most transit — maximal blast radius.
    let mut transited: BTreeMap<AdId, usize> = BTreeMap::new();
    for (_, of) in net.open_flows() {
        for ad in of
            .route
            .iter()
            .skip(1)
            .take(of.route.len().saturating_sub(2))
        {
            *transited.entry(*ad).or_default() += 1;
        }
    }
    let rogue = *transited
        .iter()
        .max_by_key(|&(ad, n)| (n, std::cmp::Reverse(ad.index())))
        .expect("some flow transits an AD")
        .0;
    net.set_covert_policy(TransitPolicy::deny_all(rogue));
    net.set_rogue_gateways([rogue]);
    let inject = net.obs.record_event(
        SimTime::ZERO,
        None,
        EventRecord::MisbehaviorInject {
            ad: rogue,
            model: MisbehaviorModel::ForgedAck.tag(),
        },
    );
    for f in &sample_flows(&topo, 10, seed ^ 0x5a) {
        let _ = net.open_repairable(f);
    }
    let mut bank = MonitorBank::new(MonitorConfig::default());
    bank.set_injection_roots(&[(rogue, inject)]);
    let mut controller = QuarantineController::new(1);
    'ticks: for _ in 0..6 {
        let probes: Vec<Observation> = net
            .open_flows()
            .map(|(_, of)| Observation::Delivered {
                src: of.flow.src,
                dst: of.flow.dst,
                violators: audit_path(net.topo(), net.policies(), &of.flow, &of.route).violations,
            })
            .collect();
        for p in probes {
            bank.observe(p);
        }
        for alarm in bank.end_tick(&mut net.obs, SimTime::ZERO) {
            if let Some((ad, qev)) = controller.note_alarm(&alarm, &mut net.obs, SimTime::ZERO) {
                let torn = net.quarantine_ad(ad, qev);
                net.obs
                    .metrics
                    .record("quarantine_collateral_flows", torn as u64);
                net.repair_pending(3);
                break 'ticks;
            }
        }
    }
    net.obs.log.export_jsonl()
}

/// Chaos scenario: the quickstart internet's ORWG control plane
/// converging, then absorbing an event-keyed fault plan — a lossy /
/// corrupting / duplicating / reordering channel plus a partition/heal
/// cycle across the AD-index midpoint — run on the region-parallel
/// engine. Because every channel verdict is a pure function of event
/// identity, the faulted stream is a stable golden artifact at *any*
/// worker count.
fn chaos_parallel_export(workers: Option<usize>) -> String {
    use adroute::sim::{ChannelFaults, FaultPlan, FaultSpec};
    let seed = 1990u64;
    // Explicit small hierarchy: `internet()` clamps to a ~49-AD backbone
    // subtree, too chatty for a committed golden once chaos refloods.
    let topo = HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.25,
        bypass_prob: 0.15,
        multihome_prob: 0.25,
        seed,
    }
    .generate();
    let db = PolicyDb::permissive(&topo);
    let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db));
    e.enable_obs(1 << 16);
    e.begin_phase("converge");
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.begin_phase("chaos");
    let spec = FaultSpec {
        link_model: None,
        crash_model: None,
        channel: Some(ChannelFaults {
            loss: 0.08,
            corrupt: 0.02,
            duplicate: 0.02,
            reorder: 0.04,
            jitter_us: 400,
            seed: seed ^ 0x33,
            ..ChannelFaults::default()
        }),
        misbehavior: Default::default(),
    };
    let horizon_ms = 20;
    let plan = FaultPlan::draw(&topo, &spec, e.now(), horizon_ms).with_partition(
        &topo,
        (topo.num_ads() / 2) as u32,
        e.now().plus_us(500),
        e.now().plus_us(horizon_ms * 500),
    );
    plan.apply(&mut e);
    match workers {
        None => e.run_to_quiescence(),
        Some(w) => e.run_to_quiescence_parallel(w),
    };
    e.obs.log.export_jsonl()
}

#[test]
fn chaos_parallel_trace_matches_golden_at_every_worker_count() {
    let seq = chaos_parallel_export(None);
    assert!(seq.contains("\"kind\":\"fault-plan\""));
    assert!(seq.contains("\"kind\":\"partition-cut\""));
    assert!(seq.contains("\"kind\":\"partition-heal\""));
    assert!(seq.contains("\"kind\":\"chan-loss\""));
    assert!(seq.contains("\"kind\":\"chan-dup\""));
    for workers in [2usize, 8] {
        for run in 0..2 {
            assert_eq!(
                chaos_parallel_export(Some(workers)),
                seq,
                "faulted parallel trace ({workers} workers, run {run}) diverged"
            );
        }
    }
    check_golden("chaos_parallel_trace.jsonl", &seq);
}

#[test]
fn quickstart_trace_matches_golden_and_reruns_identically() {
    let a = quickstart_export();
    let b = quickstart_export();
    assert_eq!(a, b, "identically-seeded runs must export identical traces");
    assert!(a
        .lines()
        .last()
        .unwrap()
        .contains("\"kind\":\"trace-summary\""));
    assert!(a.contains("\"kind\":\"phase\""));
    assert!(a.contains("\"kind\":\"lsa-originate\""));
    assert!(a.contains("\"kind\":\"link-down\""));
    check_golden("quickstart_trace.jsonl", &a);
}

#[test]
fn e7b_trace_matches_golden_and_reruns_identically() {
    let a = e7b_export();
    let b = e7b_export();
    assert_eq!(a, b, "identically-seeded runs must export identical traces");
    assert!(a.contains("\"kind\":\"setup-open\""));
    assert!(a.contains("\"kind\":\"setup-ack\""));
    assert!(a.contains("\"kind\":\"view-invalidate\""));
    assert!(a.contains("\"kind\":\"view-delta\""));
    assert!(a.contains("\"kind\":\"setup-repair\""));
    check_golden("e7b_trace.jsonl", &a);
}

#[test]
fn audit_quickstart_trace_matches_golden_and_reruns_identically() {
    let a = audit_quickstart_export();
    let b = audit_quickstart_export();
    assert_eq!(a, b, "identically-seeded runs must export identical traces");
    assert!(a.contains("\"kind\":\"misbehavior-inject\""));
    assert!(a.contains("\"kind\":\"monitor-alarm\""));
    assert!(a.contains("\"kind\":\"quarantine-enter\""));
    assert!(a.contains("\"kind\":\"setup-repair\""));
    check_golden("audit_quickstart_trace.jsonl", &a);
}

/// Stress scenario (a shrunk `adroute stress` lifecycle): a short open
/// storm crosses a 15-AD internet's serving saturation under tight
/// admission watermarks, a mid-storm Route Server crash fails over to
/// its warm standby, and shed clients retry under the deadline budget —
/// exported as the overload event stream with defer/shed/retry/admit
/// spans and the rs-crash → rs-failover pair.
fn stress_export() -> String {
    use adroute::core::{run_load_ramp, AdmissionConfig, StressConfig};
    use adroute::sim::{OpenStorm, RouterOutage, StormPhase};

    let seed = 1990u64;
    let topo = HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.25,
        bypass_prob: 0.15,
        multihome_prob: 0.25,
        seed,
    }
    .generate();
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.enable_obs(1 << 14);
    let phases = [
        StormPhase {
            duration_ms: 10,
            opens_per_sec: 1_500,
        },
        StormPhase {
            duration_ms: 20,
            opens_per_sec: 8_000,
        },
    ];
    let storm = OpenStorm::draw(&topo, &phases, SimTime::ZERO, seed);
    let cfg = StressConfig {
        seed,
        service_full_us: 6_000,
        service_cached_us: 1_200,
        service_stored_us: 600,
        admission: AdmissionConfig {
            queue_capacity: 4,
            full_depth: 1,
            cached_depth: 2,
            ..AdmissionConfig::default()
        },
        crash: Some(RouterOutage {
            ad: AdId(0),
            down_at: SimTime(15_000),
            up_at: SimTime(21_000),
        }),
        ..StressConfig::default()
    };
    run_load_ramp(&mut net, &storm, &[10_000, 20_000], &cfg);
    net.obs.log.export_jsonl()
}

/// The stress scenario served by the sharded batch engine: caches warmed
/// and then partially invalidated by a trunk failure (so idle slots have
/// refill work), the same storm and mid-storm Route Server crash, but
/// every service slot batches opens — cached-rung slots answer through
/// one shared `request_batch` (the `synth-batch` span) and drained-queue
/// slots run the background-precompute scheduler (`precompute-refill`).
fn stress_sharded_export(shards: usize) -> String {
    use adroute::core::{run_load_ramp, AdmissionConfig, ShardConfig, StressConfig};
    use adroute::sim::{OpenStorm, RouterOutage, StormPhase};

    let seed = 1990u64;
    let topo = HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.25,
        bypass_prob: 0.15,
        multihome_prob: 0.25,
        seed,
    }
    .generate();
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.enable_obs(1 << 14);
    // Warm the two-tier caches, then fail the trunk: the invalidated
    // entries queue for background refill, which idle sharded slots run.
    for f in &sample_flows(&topo, 24, seed) {
        let _ = net.synthesize(f);
    }
    net.fail_link(trunk(&topo));
    let phases = [
        StormPhase {
            duration_ms: 10,
            opens_per_sec: 1_500,
        },
        StormPhase {
            duration_ms: 20,
            opens_per_sec: 8_000,
        },
    ];
    let storm = OpenStorm::draw(&topo, &phases, SimTime::ZERO, seed);
    let cfg = StressConfig {
        seed,
        sharding: Some(ShardConfig {
            shards,
            max_batch: 4,
            refill_budget: 4,
        }),
        service_full_us: 6_000,
        service_cached_us: 1_200,
        service_stored_us: 600,
        admission: AdmissionConfig {
            queue_capacity: 4,
            full_depth: 1,
            cached_depth: 2,
            ..AdmissionConfig::default()
        },
        crash: Some(RouterOutage {
            ad: AdId(0),
            down_at: SimTime(15_000),
            up_at: SimTime(21_000),
        }),
        ..StressConfig::default()
    };
    run_load_ramp(&mut net, &storm, &[10_000, 20_000], &cfg);
    net.obs.log.export_jsonl()
}

#[test]
fn stress_trace_matches_golden_and_reruns_identically() {
    let a = stress_export();
    let b = stress_export();
    assert_eq!(a, b, "identically-seeded runs must export identical traces");
    assert!(a.contains("\"kind\":\"setup-defer\""));
    assert!(a.contains("\"kind\":\"setup-shed\""));
    assert!(a.contains("\"retry_after_us\":"));
    assert!(a.contains("\"kind\":\"setup-retry\""));
    assert!(a.contains("\"kind\":\"setup-admit\""));
    assert!(a.contains("\"kind\":\"rs-crash\""));
    assert!(a.contains("\"kind\":\"rs-failover\""));
    check_golden("stress_trace.jsonl", &a);
}

#[test]
fn stress_sharded_trace_matches_golden_across_shard_counts() {
    let a = stress_sharded_export(8);
    let b = stress_sharded_export(8);
    assert_eq!(a, b, "identically-seeded runs must export identical traces");
    // The shard count parallelizes work *within* a service slot; the
    // event stream — batch spans included — must not depend on it.
    for shards in [1usize, 2] {
        assert_eq!(
            a,
            stress_sharded_export(shards),
            "trace changed between shards=8 and shards={shards}"
        );
    }
    assert!(a.contains("\"kind\":\"synth-batch\""));
    assert!(a.contains("\"kind\":\"precompute-refill\""));
    assert!(a.contains("\"kind\":\"setup-shed\""));
    assert!(a.contains("\"kind\":\"rs-crash\""));
    assert!(a.contains("\"kind\":\"rs-failover\""));
    check_golden("stress_sharded_trace.jsonl", &a);
}
