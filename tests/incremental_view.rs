//! Twin-server equivalence: incremental, dependency-indexed view
//! maintenance must be observationally identical to the flush-everything
//! oracle. Two converged networks absorb the same random fault script —
//! link failures and recoveries, metric moves, policy replacements — one
//! applying [`ViewDelta`]s in place, the other reinstalling every view
//! from scratch, and every synthesis request afterwards must agree.
//!
//! Equal *cost* (and equal reachability) is the right oracle, not equal
//! paths: two equal-cost routes can legitimately differ by Dijkstra
//! tie-breaking once one twin revalidates a stored route the other
//! recomputed. Each returned path is additionally checked legal at its
//! claimed cost against ground truth, so a cost match cannot hide an
//! illegal route.

use adroute::core::{OrwgNetwork, Strategy, ViewMaintenance};
use adroute::policy::legality::route_is_legal;
use adroute::policy::workload::PolicyWorkload;
use adroute::protocols::forwarding::sample_flows;
use adroute::topology::{AdId, HierarchyConfig, LinkId};
use proptest::prelude::*;

fn small_internet(seed: u64) -> adroute::topology::Topology {
    HierarchyConfig {
        backbones: 1,
        regionals_per_backbone: 2,
        metros_per_regional: 2,
        campuses_per_metro: 2,
        lateral_prob: 0.3,
        bypass_prob: 0.2,
        multihome_prob: 0.3,
        seed,
    }
    .generate()
}

/// One fault event, decoded from a raw proptest word so the vendored
/// strategy set (no tuples) suffices.
enum Op {
    Fail(LinkId),
    Restore(LinkId),
    Metric(LinkId, u32),
    Policy(AdId, u8, u64),
}

fn decode(word: u64, num_links: usize, num_ads: usize) -> Op {
    let kind = word & 3;
    let raw = (word >> 2) as usize;
    match kind {
        0 => Op::Fail(LinkId((raw % num_links) as u32)),
        1 => Op::Restore(LinkId((raw % num_links) as u32)),
        2 => Op::Metric(
            LinkId((raw % num_links) as u32),
            1 + (word >> 40) as u32 % 19,
        ),
        _ => Op::Policy(
            AdId((raw % num_ads) as u32),
            1 + ((word >> 40) % 3) as u8,
            word >> 16,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every request answered after every event of a random fault script
    /// agrees between the incremental twin and the flush oracle.
    #[test]
    fn incremental_twin_matches_flush_oracle(
        seed in 0u64..200,
        script in proptest::collection::vec(0u64..u64::MAX, 1..10),
    ) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let flows = sample_flows(&topo, 10, seed ^ 0x7);
        let mk = |mode| {
            let mut n = OrwgNetwork::converged_with(
                &topo, &db, Strategy::Hybrid { capacity: 32 }, 1024);
            n.set_view_maintenance(mode);
            // Half the flows live in the precomputed tables, half only in
            // the LRU caches, so both invalidation paths are exercised.
            for f in &flows[..flows.len() / 2] {
                let src = f.src;
                n.server_mut(src).precompute(&[*f]);
            }
            n
        };
        let mut inc = mk(ViewMaintenance::Incremental);
        let mut flush = mk(ViewMaintenance::Flush);
        for f in &flows {
            let _ = inc.synthesize(f);
            let _ = flush.synthesize(f);
        }
        for word in script {
            match decode(word, topo.num_links(), topo.num_ads()) {
                Op::Fail(l) => {
                    inc.fail_link(l);
                    flush.fail_link(l);
                }
                Op::Restore(l) => {
                    inc.restore_link(l);
                    flush.restore_link(l);
                }
                Op::Metric(l, m) => {
                    inc.change_metric(l, m);
                    flush.change_metric(l, m);
                }
                Op::Policy(ad, g, pseed) => {
                    // Replace one AD's policy with the same AD's policy
                    // from a different workload: sometimes a genuine
                    // restriction, sometimes expansive, so both halves of
                    // the delta classifier run.
                    let p = PolicyWorkload::granularity(g, pseed)
                        .generate(&topo)
                        .policy(ad)
                        .clone();
                    inc.change_policy(p.clone());
                    flush.change_policy(p);
                }
            }
            for f in &flows {
                let a = inc.synthesize(f);
                let b = flush.synthesize(f);
                match (&a, &b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(
                            x.cost, y.cost,
                            "cost diverged for {} (incremental {:?} vs flush {:?})",
                            f, x.path, y.path
                        );
                        prop_assert_eq!(
                            route_is_legal(inc.topo(), inc.policies(), f, &x.path),
                            Some(x.cost),
                            "incremental route for {} is not legal at its cost", f
                        );
                        prop_assert_eq!(
                            route_is_legal(flush.topo(), flush.policies(), f, &y.path),
                            Some(y.cost),
                            "flush route for {} is not legal at its cost", f
                        );
                    }
                    _ => prop_assert!(
                        false,
                        "reachability diverged for {}: incremental {:?}, flush {:?}",
                        f, a.map(|r| r.path), b.map(|r| r.path)
                    ),
                }
            }
        }
    }

    /// Cache coherence across the two-tier store: view deltas invalidate
    /// hot-tier entries atomically with the LRU they front, so after a
    /// random fault script every stored-state answer — the hot tier is
    /// probed first — is legal under the *current* view, and the
    /// background-precompute scheduler refills only entries the current
    /// view revalidates. A stale hot handle surviving its LRU entry's
    /// invalidation would surface here as an illegal served route.
    #[test]
    fn hot_tier_and_refills_stay_view_coherent(
        seed in 0u64..150,
        script in proptest::collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let topo = small_internet(seed);
        let db = PolicyWorkload::default_mix(seed).generate(&topo);
        let flows = sample_flows(&topo, 16, seed ^ 0x11);
        let mut net = OrwgNetwork::converged_with(
            &topo, &db, Strategy::Hybrid { capacity: 32 }, 1024);
        net.set_view_maintenance(ViewMaintenance::Incremental);
        // Warm through the request path: every answer lands in the LRU
        // *and* the hot tier fronting it.
        for f in &flows {
            let _ = net.synthesize(f);
        }
        for word in script {
            match decode(word, topo.num_links(), topo.num_ads()) {
                Op::Fail(l) => net.fail_link(l),
                Op::Restore(l) => net.restore_link(l),
                Op::Metric(l, m) => net.change_metric(l, m),
                Op::Policy(ad, g, pseed) => {
                    let p = PolicyWorkload::granularity(g, pseed)
                        .generate(&topo)
                        .policy(ad)
                        .clone();
                    net.change_policy(p);
                }
            }
            // Run the background-precompute scheduler over the entries
            // the delta invalidated, then check every stored-state
            // answer (refilled or surviving) against the current view.
            for ad in topo.ad_ids() {
                net.background_refill(ad, 64);
            }
            for f in &flows {
                if let Some(Some(r)) = net.server_mut(f.src).stored_route(f) {
                    prop_assert_eq!(
                        route_is_legal(net.topo(), net.policies(), f, &r.path),
                        Some(r.cost),
                        "stored tier served a view-stale route for {}", f
                    );
                }
            }
        }
    }
}
