//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! Registry access is unavailable in this build environment, so the small
//! slice of criterion the bench targets use is vendored: [`black_box`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! and [`criterion_main!`]. Timing is a plain mean over a fixed-duration
//! measurement window — no statistics, plots, or baselines. Good enough to
//! keep `cargo bench` runnable and the bench code compiling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Minimal benchmark driver.
pub struct Criterion {
    /// Target wall-clock time spent measuring each benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark closure and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: self.measurement,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("{name:<44} {per_iter:>12.2?}/iter  ({} iters)", b.iters);
        self
    }
}

/// Handed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` until the measurement budget is
    /// spent (after a short warm-up).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
