//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds without registry access, so the slice of proptest
//! this repo's tests rely on is vendored: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`, doc attributes, and `#[test]` pass-through),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, integer and
//! `f64` range strategies, [`strategy::Just`], [`prop_oneof!`],
//! [`collection::vec`], and `Strategy::prop_map`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its case index and seed; the
//!   whole run is deterministic, so replaying is exact.
//! - **Deterministic case generation.** Case `i` of a test is seeded from a
//!   hash of the source location and `i`, never from OS entropy. Property
//!   runs are therefore reproducible across machines — the trait this
//!   repo's determinism guards actually care about.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use core::ops::Range;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0u32..10) {..} }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, any number of
/// test functions, and passes outer attributes (including `#[test]` and doc
/// comments) through to the generated zero-argument function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(&($cfg), file!(), line!(), |__pt_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tens() -> impl Strategy<Value = u32> {
        (1u32..4).prop_map(|x| x * 10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds; combinators compose.
        #[test]
        fn strategies_in_bounds(x in 0u32..7, t in tens(), v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 7);
            prop_assert!(t == 10 || t == 20 || t == 30);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        /// prop_oneof picks only from its arms.
        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(matches!(x, 1 | 2 | 5 | 6), "got {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 1, "x was {}", x);
            }
        }
        inner();
    }
}
