//! The deterministic case runner behind the [`crate::proptest!`] macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An explicit `prop_assert*` failure.
    Fail(String),
    /// The case asked to be discarded (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type property bodies implicitly return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive a per-test seed from its source location.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for every generated input; panics on the first failure.
///
/// Case `i` is generated from `SmallRng::seed_from_u64(h ^ i)` where `h`
/// hashes the test's source location — fully deterministic, so a failure
/// reproduces exactly on re-run.
pub fn run<F>(cfg: &ProptestConfig, file: &str, line: u32, mut case: F)
where
    F: FnMut(&mut SmallRng) -> TestCaseResult,
{
    let base = fnv1a(file.as_bytes()) ^ (u64::from(line) << 32);
    for i in 0..u64::from(cfg.cases) {
        let seed = base ^ i;
        let mut rng = SmallRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed at {file}:{line}, case {i} (seed {seed:#x}): {msg}");
            }
        }
    }
}
