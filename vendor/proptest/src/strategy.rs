//! Value-generation strategies: ranges, `Just`, `prop_map`, unions.

use core::ops::{Range, RangeInclusive};
use rand::rngs::SmallRng;
use rand::{Rng, SampleRange};

/// A recipe for generating values of one type from an RNG.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<T: Clone> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among several strategies (backs [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}
