//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no network access to a
//! package registry, so the handful of `rand` APIs the simulator uses are
//! vendored here: [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! `f64` ranges, and [`Rng::gen_bool`].
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream on every platform. The streams are *not* bit-compatible with the
//! real `rand` crate, which is fine — all seeds in this repo are
//! self-referential (golden values were produced by this generator).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b`, `a..=b`, or an
    /// `f64` half-open range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits, same construction the real crate uses.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-shift uniform sample in `[0, n)`; `n == 0` means full range.
fn below(rng: &mut impl RngCore, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                start.wrapping_add(below(rng, width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Non-cryptographic small-state generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
