//! Quickstart: bring up the ORWG/IDPR-style policy-routing architecture on
//! a Figure-1-style internet and route a flow end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adroute::core::router::converge_control_plane;
use adroute::core::{OrwgNetwork, Strategy};
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::FlowSpec;
use adroute::topology::{AdLevel, HierarchyConfig};

fn main() {
    // 1. A hierarchical internet with lateral and bypass links (paper
    //    Figure 1), deterministic from its seed.
    let topo = HierarchyConfig::default().generate();
    let (h, l, b) = topo.link_kind_counts();
    println!(
        "internet: {} ADs, {} links ({h} hierarchical, {l} lateral, {b} bypass)",
        topo.num_ads(),
        topo.num_links()
    );

    // 2. A mixed policy workload: no-transit stubs, customer-cone
    //    restrictions, source-specific denials, QOS/UCI terms.
    let policies = PolicyWorkload::default_mix(1990).generate(&topo);
    println!(
        "policies: {} terms across {} ADs ({} bytes if flooded)",
        policies.total_terms(),
        policies.len(),
        policies.total_encoded_size()
    );

    // 3. Run the distributed control plane: flood policy-bearing LSAs to
    //    quiescence.
    let engine = converge_control_plane(topo.clone(), policies.clone());
    println!(
        "flooding converged at t={} after {} messages ({} bytes)",
        engine.stats.last_activity, engine.stats.msgs_sent, engine.stats.bytes_sent
    );

    // 4. Build the data plane from each AD's own flooded view.
    let mut net = OrwgNetwork::from_engine(&engine, Strategy::Cached { capacity: 256 }, 4096);

    // 5. Pick two campus ADs and open a policy route between them.
    let campuses: Vec<_> = topo
        .ads()
        .filter(|a| a.level == AdLevel::Campus)
        .map(|a| a.id)
        .collect();
    let (src, dst) = (campuses[0], *campuses.last().unwrap());
    let flow = FlowSpec::best_effort(src, dst);
    println!("\nflow {flow}:");

    match net.open(&flow) {
        Ok(setup) => {
            let route: Vec<String> = setup.route.iter().map(|a| a.to_string()).collect();
            println!("  policy route : {}", route.join(" -> "));
            println!(
                "  setup        : {} gateway validations, {} header bytes, {} us",
                setup.validations, setup.header_bytes, setup.latency_us
            );
            // 6. Data packets ride the handle: constant 12-byte header.
            let data = net
                .send(setup.handle)
                .expect("established route must forward");
            println!(
                "  data packet  : {} hops, {} header bytes, {} us",
                data.hops, data.header_bytes, data.latency_us
            );
            let sr = net
                .send_source_routed(&flow)
                .expect("source-routed variant");
            println!(
                "  (ablation)   : full source route in every packet would cost {} header bytes",
                sr.header_bytes
            );
        }
        Err(e) => println!("  no legal route: {e:?}"),
    }

    // 7. The division of labour the paper argues for: only the source
    //    computed anything.
    println!("\nroute computations per AD (nonzero only):");
    for ad in topo.ad_ids() {
        let s = net.server(ad).stats;
        if s.searches > 0 {
            println!(
                "  {ad}: {} searches ({} states settled)",
                s.searches, s.settled
            );
        }
    }
}
