//! Failure response across the design space: fail an inter-AD link after
//! convergence and watch each architecture recover.
//!
//! The paper's Section 2.2 assumption — ADs are stable, inter-AD links
//! fail — makes this the interesting dynamic case: naive DV counts toward
//! infinity, ECMA's ordering suppresses the count, path vector explores
//! paths, link state refloods, and ORWG invalidates handles and re-runs
//! setup.
//!
//! ```sh
//! cargo run --example failover
//! ```

use adroute::core::{OrwgNetwork, Strategy};
use adroute::policy::{FlowSpec, PolicyDb};
use adroute::protocols::ecma::Ecma;
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::{Engine, Protocol};
use adroute::topology::generate::ring;
use adroute::topology::AdId;

/// Converges, fails the 0-1 link, and reports the failure-response cost.
fn crash_test<P: Protocol>(name: &str, topo: adroute::topology::Topology, proto: P) {
    let mut e = Engine::new(topo, proto);
    e.begin_phase("converge");
    let t0 = e.run_to_quiescence();
    let l = e.topo().link_between(AdId(0), AdId(1)).expect("ring link");
    let fail_at = e.now().plus_us(10_000);
    e.schedule_link_change(l, false, fail_at);
    e.begin_phase("failure-response");
    let t1 = e.run_to_quiescence();
    let initial_msgs = e.stats.phase_delta("converge").unwrap().msgs_sent;
    println!(
        "{name:<22} initial: {initial_msgs:>5} msgs, conv {t0}   failure: {:>5} msgs, reconv {} ms",
        e.stats.phase_delta("failure-response").unwrap().msgs_sent,
        (t1.as_us().saturating_sub(fail_at.as_us())) / 1000
    );
}

fn main() {
    let n = 8;
    println!("ring of {n} ADs, permissive policies; fail link AD0-AD1 after convergence\n");

    crash_test(
        "naive DV",
        ring(n),
        NaiveDv {
            infinity: 32,
            split_horizon: false,
            ..NaiveDv::default()
        },
    );
    crash_test(
        "naive DV + split hz",
        ring(n),
        NaiveDv {
            infinity: 32,
            split_horizon: true,
            ..NaiveDv::default()
        },
    );
    crash_test("ECMA (ordering)", ring(n), Ecma::all_transit(&ring(n)));
    crash_test(
        "path vector (IDRP)",
        ring(n),
        PathVector::idrp(PolicyDb::permissive(&ring(n))),
    );
    crash_test(
        "link state (HBH)",
        ring(n),
        LsHbh::new(&ring(n), PolicyDb::permissive(&ring(n))),
    );

    // ORWG: the interesting part is the data plane — handles crossing the
    // dead link are invalidated and the source re-opens.
    println!("\nORWG handle recovery:");
    let topo = ring(n);
    let db = PolicyDb::permissive(&topo);
    let mut net = OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 128 }, 1024);
    let flow = FlowSpec::best_effort(AdId(0), AdId(4));
    let s1 = net.open(&flow).expect("initial setup");
    println!(
        "  before: route {:?}, setup {} bytes",
        s1.route.iter().map(|a| a.0).collect::<Vec<_>>(),
        s1.header_bytes
    );
    let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
    net.fail_link(l);
    match net.send(s1.handle) {
        Err(e) => println!("  after failure, old handle: {e:?} -> source must re-open"),
        Ok(_) => println!("  after failure, old handle unexpectedly still works"),
    }
    let s2 = net.open(&flow).expect("re-setup around the failure");
    println!(
        "  re-opened: route {:?} ({} validations, {} bytes)",
        s2.route.iter().map(|a| a.0).collect::<Vec<_>>(),
        s2.validations,
        s2.header_bytes
    );
    let d = net.send(s2.handle).expect("data flows again");
    println!(
        "  data flows again: {} hops, {} header bytes",
        d.hops, d.header_bytes
    );
}
