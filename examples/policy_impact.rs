//! Policy impact prediction: the administrator's "what-if" tool the
//! paper's Section 6 asks for.
//!
//! A regional AD's administrator is considering three candidate transit
//! policies. Before deploying any of them, the tool predicts — over a
//! sampled traffic matrix — which flows break, which re-route, how the
//! AD's own transit load and charging revenue shift, and what happens to
//! everyone's path costs.
//!
//! ```sh
//! cargo run --example policy_impact
//! ```

use adroute::core::PolicyImpact;
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};
use adroute::protocols::forwarding::sample_flows;
use adroute::topology::{AdLevel, HierarchyConfig};

fn main() {
    let topo = HierarchyConfig::default().generate();
    let db = PolicyWorkload::default_mix(3).generate(&topo);
    let flows = sample_flows(&topo, 300, 3);

    // The AD under study: a regional transit provider.
    let subject = topo
        .ads()
        .find(|a| a.level == AdLevel::Regional)
        .expect("hierarchy has regionals")
        .id;
    println!(
        "assessing candidate policies for {subject} over {} sampled flows\n",
        flows.len()
    );

    let mut candidates: Vec<(&str, TransitPolicy)> = Vec::new();

    // Candidate 1: stop carrying transit entirely.
    candidates.push(("deny all transit", TransitPolicy::deny_all(subject)));

    // Candidate 2: keep carrying, but charge 5 per crossing.
    let mut pricey = TransitPolicy::permit_all(subject);
    pricey.default = PolicyAction::Permit { cost: 5 };
    candidates.push(("charge 5/crossing", pricey));

    // Candidate 3: refuse traffic sourced at the three highest-degree
    // campus ADs (a targeted exclusion).
    let mut worst: Vec<_> = topo
        .ads()
        .filter(|a| a.level == AdLevel::Campus)
        .map(|a| (topo.full_degree(a.id), a.id))
        .collect();
    worst.sort_unstable_by(|a, b| b.cmp(a));
    let excluded: Vec<_> = worst.iter().take(3).map(|&(_, id)| id).collect();
    let mut targeted = TransitPolicy::permit_all(subject);
    targeted.push_term(
        vec![PolicyCondition::SrcIn(AdSet::only(excluded.clone()))],
        PolicyAction::Deny,
    );
    candidates.push(("exclude 3 sources", targeted));

    println!(
        "{:<20} {:>6} {:>8} {:>9} {:>14} {:>14} {:>12}",
        "candidate", "safe?", "broken", "rerouted", "transit Δ", "revenue", "mean cost"
    );
    for (name, cand) in candidates {
        let i = PolicyImpact::assess(&topo, &db, cand, &flows);
        println!(
            "{:<20} {:>6} {:>8} {:>9} {:>+14} {:>6}->{:<6} {:>5.2}->{:<5.2}",
            name,
            if i.is_safe() { "yes" } else { "NO" },
            i.broken.len(),
            i.rerouted,
            i.transit_delta(),
            i.revenue.0,
            i.revenue.1,
            i.mean_cost.0,
            i.mean_cost.1,
        );
        for f in i.broken.iter().take(3) {
            println!("{:<20}   would strand: {f}", "");
        }
    }
    println!(
        "\nThe paper (Section 6): \"it will be possible to specify local policies \
         that will result in poor service … administrators [need] tools to \
         assist them in predicting the impact of their policies\"."
    );
}
