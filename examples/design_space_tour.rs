//! A tour of the paper's design space: run every viable architecture on
//! the same internet and policy workload, and score each against the
//! oracle — route availability, policy compliance, loop-freedom, path
//! stretch, and control-plane cost.
//!
//! This is the narrative behind Table 1, measured rather than asserted.
//!
//! ```sh
//! cargo run --example design_space_tour
//! ```

use adroute::core::network::OpenError;
use adroute::core::{OrwgNetwork, Strategy};
use adroute::policy::legality::legal_route;
use adroute::policy::workload::PolicyWorkload;
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{sample_flows, score_flows, FlowScore};
use adroute::protocols::ls_hbh::LsHbh;
use adroute::protocols::naive_dv::NaiveDv;
use adroute::protocols::path_vector::PathVector;
use adroute::sim::Engine;
use adroute::topology::HierarchyConfig;

fn row(name: &str, s: &FlowScore, msgs: u64, bytes: u64) {
    println!(
        "{name:<22} {:>6.1}% {:>8.1}% {:>6} {:>8.2} {:>9} {:>11}",
        100.0 * s.availability(),
        100.0 * s.violation_rate(),
        s.loops,
        s.stretch(),
        msgs,
        bytes
    );
}

fn main() {
    let topo = HierarchyConfig {
        lateral_prob: 0.25,
        bypass_prob: 0.1,
        multihome_prob: 0.2,
        seed: 7,
        ..HierarchyConfig::default()
    }
    .generate();
    let policies = PolicyWorkload::default_mix(7).generate(&topo);
    let flows = sample_flows(&topo, 150, 7);
    let legal = flows
        .iter()
        .filter(|f| legal_route(&topo, &policies, f).is_some())
        .count();
    println!(
        "internet: {} ADs, {} links; {} policy terms; {} / {} sampled flows have a legal route\n",
        topo.num_ads(),
        topo.num_links(),
        policies.total_terms(),
        legal,
        flows.len()
    );
    println!(
        "{:<22} {:>7} {:>9} {:>6} {:>8} {:>9} {:>11}",
        "architecture", "avail", "violate", "loops", "stretch", "ctl msgs", "ctl bytes"
    );

    // Naive DV (no policy).
    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let (m, b) = (dv.stats.msgs_sent, dv.stats.bytes_sent);
    let s = score_flows(&mut dv, &topo.clone(), &policies, &flows);
    row("naive DV (baseline)", &s, m, b);

    // ECMA: DV + policy-in-topology.
    let mut ecma = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
    ecma.run_to_quiescence();
    let (m, b) = (ecma.stats.msgs_sent, ecma.stats.bytes_sent);
    let s = score_flows(&mut ecma, &topo.clone(), &policies, &flows);
    row("ECMA (DV+ordering)", &s, m, b);

    // IDRP: path vector + explicit policy terms.
    let mut pv = Engine::new(topo.clone(), PathVector::idrp(policies.clone()));
    pv.run_to_quiescence();
    let (m, b) = (pv.stats.msgs_sent, pv.stats.bytes_sent);
    let s = score_flows(&mut pv, &topo.clone(), &policies, &flows);
    row("IDRP (PV+terms)", &s, m, b);

    // BGP-2: path vector without source scopes.
    let mut bgp = Engine::new(topo.clone(), PathVector::bgp2(policies.clone()));
    bgp.run_to_quiescence();
    let (m, b) = (bgp.stats.msgs_sent, bgp.stats.bytes_sent);
    let s = score_flows(&mut bgp, &topo.clone(), &policies, &flows);
    row("BGP-2 (PV, no scope)", &s, m, b);

    // LS hop-by-hop.
    let mut ls = Engine::new(topo.clone(), LsHbh::new(&topo, policies.clone()));
    ls.run_to_quiescence();
    let (m, b) = (ls.stats.msgs_sent, ls.stats.bytes_sent);
    let s = score_flows(&mut ls, &topo.clone(), &policies, &flows);
    row("LS hop-by-hop", &s, m, b);

    // ORWG: LS + source routing (control cost = same flooding as LS).
    let engine = adroute::core::router::converge_control_plane(topo.clone(), policies.clone());
    let (m, b) = (engine.stats.msgs_sent, engine.stats.bytes_sent);
    let mut net = OrwgNetwork::from_engine(&engine, Strategy::Cached { capacity: 512 }, 4096);
    let mut s = FlowScore {
        flows: flows.len(),
        ..Default::default()
    };
    for f in &flows {
        let oracle = legal_route(&topo, &policies, f);
        if oracle.is_some() {
            s.legal_exists += 1;
        }
        match net.open(f) {
            Ok(setup) => {
                s.delivered += 1;
                if let Some(o) = &oracle {
                    s.compliant_of_legal += 1;
                    let cost = adroute::policy::legality::route_is_legal(
                        &topo,
                        &policies,
                        f,
                        &setup.route,
                    )
                    .expect("gateway-validated route must be legal");
                    s.cost_sum += cost;
                    s.oracle_cost_sum += o.cost;
                }
            }
            Err(OpenError::NoRoute) => {}
            Err(e) => panic!("unexpected setup failure {e:?}"),
        }
    }
    row("ORWG (LS+source rte)", &s, m, b);

    println!(
        "\ntransit route-computation burden (total searches): LS-HBH per-hop \
         recomputation vs ORWG source-only = see exp5 bench"
    );
}
