//! The paper's motivating scenario (Section 2.1): a **multi-homed stub**
//! AD has two providers for reliability but "wish[es] to disallow any
//! transit traffic".
//!
//! A policy-blind distance-vector protocol happily shortcuts provider-to-
//! provider traffic *through* the stub. ECMA's partial ordering and the
//! ORWG architecture both enforce the stub's policy — by construction.
//!
//! ```sh
//! cargo run --example multihomed_stub
//! ```

use adroute::core::OrwgNetwork;
use adroute::policy::workload::PolicyWorkload;
use adroute::policy::FlowSpec;
use adroute::protocols::ecma::Ecma;
use adroute::protocols::forwarding::{audit_path, forward, ForwardOutcome};
use adroute::protocols::naive_dv::NaiveDv;
use adroute::sim::Engine;
use adroute::topology::graph::make_ad;
use adroute::topology::{AdId, AdLevel, Topology};

/// Two regional providers R1, R2 joined only via a distant backbone; the
/// multi-homed campus stub S hangs under both. The tempting shortcut
/// R1-S-R2 is two hops; the legal path R1-B-R2 is two hops at higher
/// metric (the backbone links cost more).
fn build() -> Topology {
    let ads = vec![
        make_ad(0, AdLevel::Backbone), // B
        make_ad(1, AdLevel::Regional), // R1
        make_ad(2, AdLevel::Regional), // R2
        make_ad(3, AdLevel::Campus),   // S (multi-homed stub)
        make_ad(4, AdLevel::Campus),   // customer of R1
        make_ad(5, AdLevel::Campus),   // customer of R2
    ];
    let mut topo = Topology::new(
        ads,
        &[
            (AdId(0), AdId(1), 5), // B-R1 (long haul)
            (AdId(0), AdId(2), 5), // B-R2
            (AdId(1), AdId(3), 1), // R1-S
            (AdId(2), AdId(3), 1), // R2-S  <- the tempting shortcut
            (AdId(1), AdId(4), 1),
            (AdId(2), AdId(5), 1),
        ],
    );
    topo.reclassify_roles();
    topo
}

fn describe(path: &[AdId]) -> String {
    path.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn main() {
    let topo = build();
    let policies = PolicyWorkload::structural(1).generate(&topo);
    let flow = FlowSpec::best_effort(AdId(4), AdId(5)); // customer to customer
    println!(
        "scenario: {} (stub S = AD3 is multi-homed, no-transit)\n",
        flow
    );

    // --- Naive DV: policy-blind --------------------------------------
    let mut dv = Engine::new(topo.clone(), NaiveDv::default());
    dv.run_to_quiescence();
    let out = forward(&mut dv, &topo, &flow);
    if let ForwardOutcome::Delivered { path } = &out {
        let audit = audit_path(&topo, &policies, &flow, path);
        println!("naive DV   : {}", describe(path));
        println!(
            "             policy compliant: {} (violations at {:?})",
            audit.compliant(),
            audit.violations
        );
    }

    // --- ECMA: the stub never re-advertises, the ordering forbids the
    //     valley ------------------------------------------------------
    let mut ecma = Engine::new(topo.clone(), Ecma::hierarchical(&topo));
    ecma.run_to_quiescence();
    let out = forward(&mut ecma, &topo, &flow);
    if let ForwardOutcome::Delivered { path } = &out {
        let audit = audit_path(&topo, &policies, &flow, path);
        println!("ECMA       : {}", describe(path));
        println!("             policy compliant: {}", audit.compliant());
    } else {
        println!("ECMA       : {out:?}");
    }

    // --- ORWG: the stub's deny-all PT is flooded; no route server will
    //     ever synthesize a route through it ---------------------------
    let mut net = OrwgNetwork::converged(&topo, &policies);
    match net.open(&flow) {
        Ok(setup) => {
            println!("ORWG       : {}", describe(&setup.route));
            let audit = audit_path(&topo, &policies, &flow, &setup.route);
            println!(
                "             policy compliant: {} ({} gateway validations)",
                audit.compliant(),
                setup.validations
            );
        }
        Err(e) => println!("ORWG       : {e:?}"),
    }

    // And the stub keeps its redundancy: when R2-S fails, S still
    // reaches everyone via R1.
    let l = topo.link_between(AdId(2), AdId(3)).unwrap();
    net.fail_link(l);
    let from_stub = FlowSpec::best_effort(AdId(3), AdId(5));
    match net.open(&from_stub) {
        Ok(setup) => println!(
            "\nafter R2-S failure, stub still reaches AD5: {}",
            describe(&setup.route)
        ),
        Err(e) => println!("\nafter R2-S failure, stub cut off: {e:?}"),
    }
}
