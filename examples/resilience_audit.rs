//! Resilience audit of a generated internet: where are the single points
//! of failure, and what do multi-homing and bypass links buy?
//!
//! Paper Section 2.1 argues lateral links and multi-homing persist for
//! "special technical requirement, economic incentives, and
//! political/control incentives" — and because redundancy matters. This
//! example quantifies that: articulation ADs (whose failure partitions
//! the internet) with and without the non-hierarchical links, egress
//! diversity of multi-homed stubs, and a reloadable snapshot of the
//! topology under audit.
//!
//! ```sh
//! cargo run --example resilience_audit
//! ```

use adroute::topology::{analysis, io, AdLevel, AdRole, HierarchyConfig};

fn main() {
    let pure_tree = HierarchyConfig {
        lateral_prob: 0.0,
        bypass_prob: 0.0,
        multihome_prob: 0.0,
        seed: 77,
        ..HierarchyConfig::default()
    }
    .generate();
    let augmented = HierarchyConfig {
        lateral_prob: 0.3,
        bypass_prob: 0.15,
        multihome_prob: 0.35,
        seed: 77,
        ..HierarchyConfig::default()
    }
    .generate();

    for (name, topo) in [
        ("pure hierarchy", &pure_tree),
        ("augmented (Figure 1)", &augmented),
    ] {
        let arts = analysis::articulation_ads(topo);
        let stats = analysis::degree_stats(topo);
        let (h, l, b) = topo.link_kind_counts();
        println!(
            "{name}: {} ADs, {} links ({h} hier, {l} lateral, {b} bypass)",
            topo.num_ads(),
            topo.num_links()
        );
        println!(
            "  degree min/mean/max = {}/{:.2}/{}, articulation ADs = {}",
            stats.min,
            stats.mean,
            stats.max,
            arts.len()
        );
        let transit_arts = arts
            .iter()
            .filter(|&&a| topo.ad(a).role.offers_transit())
            .count();
        println!(
            "  of which transit providers: {transit_arts} (each a single point of failure for its subtree)"
        );
    }

    // Multi-homed stubs: their whole point is egress diversity ≥ 2.
    println!("\nmulti-homed stub egress diversity (augmented internet):");
    let backbone = augmented
        .ads()
        .find(|a| a.level == AdLevel::Backbone)
        .expect("has a backbone")
        .id;
    let mut shown = 0;
    for ad in augmented.ads().filter(|a| a.role == AdRole::MultiHomedStub) {
        let d = analysis::egress_diversity(&augmented, ad.id, backbone);
        println!(
            "  {}: {} independent egresses toward {}",
            ad.id, d, backbone
        );
        shown += 1;
        if shown == 6 {
            break;
        }
    }

    // Snapshot the audited topology: the dump reloads bit-identically, so
    // the audit is reproducible.
    let text = io::dump(&augmented);
    let reloaded = io::parse(&text).expect("own dump must parse");
    assert_eq!(reloaded.num_links(), augmented.num_links());
    println!(
        "\nsnapshot: {} bytes of text, reloads identically ({} ADs, {} links)",
        text.len(),
        reloaded.num_ads(),
        reloaded.num_links()
    );
    println!("first lines of the snapshot:");
    for line in text.lines().take(5) {
        println!("  {line}");
    }
}
