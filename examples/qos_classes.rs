//! QOS- and user-class routing across the design space.
//!
//! The paper (Section 3) notes that IGP-style QOS support "repeat[s] the
//! basic route computation … for each QOS" and cannot scale to many
//! classes or source-specific policy. This example builds a small
//! internet where one carrier sells a premium class cheaply and a rival
//! carries bulk traffic only off-peak, then routes the same
//! source/destination pair under different classes and times of day —
//! showing class-dependent and time-dependent paths under the ORWG
//! architecture, and what the hop-by-hop designs make of the same
//! policies.
//!
//! ```sh
//! cargo run --example qos_classes
//! ```

use adroute::core::OrwgNetwork;
use adroute::policy::{
    FlowSpec, PolicyAction, PolicyCondition, PolicyDb, QosClass, TimeOfDay, TransitPolicy,
    UserClass,
};
use adroute::protocols::forwarding::{forward, ForwardOutcome};
use adroute::protocols::path_vector::PathVector;
use adroute::sim::Engine;
use adroute::topology::graph::make_ad;
use adroute::topology::{AdId, AdLevel, Topology};

/// Source S(4) and destination D(5) joined by two rival regionals:
/// PREMIUM(1) and BULK(2), plus an expensive safety backbone path B(0)-X(3).
fn build() -> (Topology, PolicyDb) {
    let ads = vec![
        make_ad(0, AdLevel::Backbone), // B
        make_ad(1, AdLevel::Regional), // PREMIUM carrier
        make_ad(2, AdLevel::Regional), // BULK carrier
        make_ad(3, AdLevel::Regional), // X: peer of B, pricey
        make_ad(4, AdLevel::Campus),   // S
        make_ad(5, AdLevel::Campus),   // D
    ];
    let mut topo = Topology::new(
        ads,
        &[
            (AdId(4), AdId(1), 1), // S - PREMIUM
            (AdId(4), AdId(2), 1), // S - BULK
            (AdId(4), AdId(0), 3), // S - B (bypass)
            (AdId(1), AdId(5), 1),
            (AdId(2), AdId(5), 1),
            (AdId(0), AdId(3), 2),
            (AdId(3), AdId(5), 2),
        ],
    );
    topo.reclassify_roles();

    let mut db = PolicyDb::permissive(&topo);
    // PREMIUM: cheap for qos1 and for gold users, pricey otherwise.
    let mut premium = TransitPolicy::permit_all(AdId(1));
    premium.push_term(
        vec![PolicyCondition::QosIn(vec![QosClass(1)])],
        PolicyAction::Permit { cost: 1 },
    );
    premium.push_term(
        vec![PolicyCondition::UciIn(vec![UserClass(1)])],
        PolicyAction::Permit { cost: 2 },
    );
    premium.default = PolicyAction::Permit { cost: 8 };
    db.set_policy(premium);
    // BULK: best-effort only, and only off-peak (19:00-07:00); cheap.
    let mut bulk = TransitPolicy::deny_all(AdId(2));
    bulk.push_term(
        vec![
            PolicyCondition::QosIn(vec![QosClass(0)]),
            PolicyCondition::TimeWindow(TimeOfDay::hm(19, 0), TimeOfDay::hm(7, 0)),
        ],
        PolicyAction::Permit { cost: 0 },
    );
    db.set_policy(bulk);
    // X: permits everything but charges heavily.
    db.policy_mut(AdId(3)).default = PolicyAction::Permit { cost: 10 };
    (topo, db)
}

fn show(route: Option<Vec<AdId>>) -> String {
    match route {
        Some(p) => p
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" -> "),
        None => "(no route)".to_string(),
    }
}

fn main() {
    let (topo, db) = build();
    let mut net = OrwgNetwork::converged(&topo, &db);
    let base = FlowSpec::best_effort(AdId(4), AdId(5));

    println!("ORWG policy routes for S->D under different classes/times:");
    let cases = [
        ("best effort, noon", base),
        ("best effort, 23:00", base.at(TimeOfDay::hm(23, 0))),
        ("qos1 (premium), noon", base.with_qos(QosClass(1))),
        ("gold user, noon", base.with_uci(UserClass(1))),
    ];
    for (label, flow) in cases {
        println!("  {:<22} {}", label, show(net.policy_route(&flow)));
    }

    // The path-vector design must advertise a route per class; count what
    // S actually receives.
    let mut pv = Engine::new(topo.clone(), PathVector::idrp(db.clone()));
    pv.run_to_quiescence();
    let routes: Vec<_> = pv.router(AdId(4)).routes_to(AdId(5)).collect();
    println!("\nIDRP at S: {} distinct class-routes to D:", routes.len());
    for r in &routes {
        println!(
            "  qos={:?} uci={:?} cost={} via {}",
            r.attrs.qos.map(|q| q.0),
            r.attrs.uci.map(|u| u.0),
            r.cost,
            r.path[0]
        );
    }
    let out = forward(&mut pv, &topo, &base.with_qos(QosClass(1)));
    if let ForwardOutcome::Delivered { path } = out {
        println!(
            "  forwarding qos1 hop-by-hop: {}",
            path.iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    println!(
        "\nNote the time-of-day class: the ORWG route server re-evaluates it per\n\
         flow (source routing carries the class to every gateway), while the\n\
         hop-by-hop table had to freeze one evaluation time into its routes —\n\
         the Section 3 scalability point about class-explosion in IGP-style QOS."
    );
}
