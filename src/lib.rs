//! # adroute — the inter-AD policy-routing design space, executable
//!
//! An executable reproduction of *Design of Inter-Administrative Domain
//! Routing Protocols* (Breslau & Estrin, SIGCOMM 1990). The paper defines a
//! 2×2×2 design space for inter-AD routing — {distance vector | link state}
//! × {hop-by-hop | source routing} × {policy in topology | explicit policy
//! terms} — walks its four viable points, and argues that link-state source
//! routing with explicit Policy Terms (the ORWG / IDPR architecture) best
//! serves long-term policy-routing requirements.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`topology`] — the AD-level internet model and Figure-1 generators;
//! * [`policy`] — Policy Terms, traffic classes, policy workloads, and the
//!   route-legality oracle;
//! * [`sim`] — the deterministic discrete-event engine protocols run on;
//! * [`protocols`] — the hop-by-hop design points (naive DV, ECMA
//!   partial-order DV, IDRP/BGP-2 path vector, link-state hop-by-hop);
//! * [`core`] — the paper's endorsed architecture: policy source routing
//!   with Route Servers, Policy Gateways, and a setup/handle data plane.
//!
//! ## Quickstart
//!
//! ```
//! use adroute::topology::HierarchyConfig;
//! use adroute::policy::{workload::PolicyWorkload, FlowSpec, QosClass, UserClass};
//! use adroute::core::OrwgNetwork;
//!
//! // A Figure-1-style internet and a mixed policy workload.
//! let topo = HierarchyConfig::figure1().generate();
//! let policies = PolicyWorkload::default_mix(7).generate(&topo);
//!
//! // Bring up the ORWG architecture: flood policy terms, then source-route.
//! let mut net = OrwgNetwork::converged(&topo, &policies);
//! let flow = FlowSpec::best_effort(topo.ad_ids().next().unwrap(),
//!                                  topo.ad_ids().last().unwrap());
//! if let Some(route) = net.policy_route(&flow) {
//!     println!("policy route: {:?}", route);
//! }
//! ```

pub use adroute_core as core;
pub use adroute_policy as policy;
pub use adroute_protocols as protocols;
pub use adroute_sim as sim;
pub use adroute_topology as topology;

/// Convenience prelude: the types most programs need, one `use` away.
///
/// ```
/// use adroute::prelude::*;
///
/// let topo = HierarchyConfig::figure1().generate();
/// let db = PolicyDb::permissive(&topo);
/// let mut net = OrwgNetwork::converged(&topo, &db);
/// let flow = FlowSpec::best_effort(AdId(0), AdId(5));
/// assert!(net.open(&flow).is_ok() || adroute_policy::legal_route(&topo, &db, &flow).is_none());
/// ```
pub mod prelude {
    pub use adroute_core::{
        HandleId, OrwgNetwork, OrwgProtocol, PolicyImpact, PolicyRoute, RouteServer, Strategy,
    };
    pub use adroute_policy::{
        legal_route, AdSet, FlowSpec, PolicyAction, PolicyCondition, PolicyDb, QosClass,
        RouteSelection, TimeOfDay, TransitPolicy, UserClass,
    };
    pub use adroute_protocols::forwarding::{forward, sample_flows, DataPlane, ForwardOutcome};
    pub use adroute_sim::{Engine, FailureModel, FailureSchedule, Protocol, SimTime};
    pub use adroute_topology::{AdId, AdLevel, AdRole, HierarchyConfig, LinkId, Topology};
}
