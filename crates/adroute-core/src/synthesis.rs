//! The Route Server: policy route synthesis (paper Sections 5.4.1 and 6).
//!
//! "A Route Server in each AD computes Policy Routes based on the
//! advertised policy and topology information." Synthesis is the paper's
//! acknowledged hard problem: "Precomputation of all policy routes in a
//! large internet is computationally intractable, while on demand
//! computation may introduce excessive latency at setup time.
//! Consequently, a combination of precomputation and on-demand computation
//! should be used." The three [`Strategy`] variants realize exactly those
//! options; experiment E7 sweeps them.
//!
//! The search itself is the same policy-constrained Dijkstra as the oracle
//! (`adroute_policy::legality`) — run over **this AD's own flooded view**
//! of topology and policy, not ground truth.

use std::collections::HashMap;

use adroute_policy::{
    legality::{self, SearchStats},
    FlowSpec, PolicyDb, PtId, RouteSelection,
};
use adroute_topology::{AdId, Topology};

use crate::lru::LruCache;

/// A synthesized policy route: the AD path plus, per transit AD, the
/// Policy Term that permits the traversal (cited in the setup packet).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyRoute {
    /// The AD-level path, source to destination.
    pub path: Vec<AdId>,
    /// Total cost (link metrics + transit charges).
    pub cost: u64,
    /// For each transit AD on `path` (in order), the deciding permit term
    /// (`None` when the AD's default action permits).
    pub pts: Vec<Option<PtId>>,
}

impl PolicyRoute {
    /// Number of AD hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Route synthesis strategy (the Section 6 trade-off).
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Compute every request from scratch; no state, maximum setup
    /// latency.
    OnDemand,
    /// On-demand with an LRU route cache of the given capacity.
    Cached {
        /// Maximum cached routes.
        capacity: usize,
    },
    /// Precompute routes for a workload-supplied list of expected traffic
    /// classes (the "commonly used routes" heuristic); anything else is a
    /// miss that falls back to on-demand with an LRU cache.
    Hybrid {
        /// Maximum cached routes for non-precomputed classes.
        capacity: usize,
    },
}

/// Synthesis work counters (experiment E7's columns).
#[derive(Clone, Copy, Default, Debug)]
pub struct SynthStats {
    /// Route requests served.
    pub requests: u64,
    /// Full searches performed.
    pub searches: u64,
    /// Search states settled (CPU proxy).
    pub settled: u64,
    /// Search edge relaxations (CPU proxy).
    pub relaxations: u64,
    /// Requests answered from the precomputed table.
    pub precomputed_hits: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
}

/// One AD's Route Server.
#[derive(Clone, Debug)]
pub struct RouteServer {
    /// The AD this server belongs to.
    pub ad: AdId,
    view_topo: Topology,
    view_db: PolicyDb,
    strategy: Strategy,
    /// The source's private route-selection criteria (applied to every
    /// synthesis; never advertised — the privacy property of source
    /// routing). Set via [`RouteServer::set_selection`], which flushes
    /// cached routes computed under the old criteria.
    selection: RouteSelection,
    precompute_list: Vec<FlowSpec>,
    precomputed: HashMap<FlowSpec, Option<PolicyRoute>>,
    cache: LruCache<FlowSpec, Option<PolicyRoute>>,
    /// Work counters.
    pub stats: SynthStats,
}

impl RouteServer {
    /// A server for `ad` with the given view and strategy.
    pub fn new(
        ad: AdId,
        view_topo: Topology,
        view_db: PolicyDb,
        strategy: Strategy,
    ) -> RouteServer {
        let cache = match &strategy {
            Strategy::OnDemand => LruCache::new(0),
            Strategy::Cached { capacity } | Strategy::Hybrid { capacity } => {
                LruCache::new(*capacity)
            }
        };
        RouteServer {
            ad,
            view_topo,
            view_db,
            strategy,
            selection: RouteSelection::unconstrained(),
            precompute_list: Vec::new(),
            precomputed: HashMap::new(),
            cache,
            stats: SynthStats::default(),
        }
    }

    /// The server's current view of the topology.
    pub fn view_topo(&self) -> &Topology {
        &self.view_topo
    }

    /// The server's current view of global policy.
    pub fn view_db(&self) -> &PolicyDb {
        &self.view_db
    }

    /// The source's current route-selection criteria.
    pub fn selection(&self) -> &RouteSelection {
        &self.selection
    }

    /// Replaces the source's route-selection criteria. Cached and
    /// precomputed routes were synthesized under the old criteria, so both
    /// are flushed (and precomputation re-run).
    pub fn set_selection(&mut self, selection: RouteSelection) {
        self.selection = selection;
        self.cache.clear();
        self.run_precompute();
    }

    /// Number of precomputed routes currently held.
    pub fn precomputed_len(&self) -> usize {
        self.precomputed.len()
    }

    /// Number of cached routes currently held.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Precomputes routes for the expected traffic classes (only
    /// meaningful under [`Strategy::Hybrid`]; ignored by `OnDemand` and
    /// `Cached`). The list is remembered and re-run on view changes.
    pub fn precompute(&mut self, flows: &[FlowSpec]) {
        if !matches!(self.strategy, Strategy::Hybrid { .. }) {
            return;
        }
        self.precompute_list = flows.to_vec();
        self.run_precompute();
    }

    fn run_precompute(&mut self) {
        let list = std::mem::take(&mut self.precompute_list);
        self.precomputed.clear();
        for flow in &list {
            let r = self.search(flow);
            self.precomputed.insert(*flow, r);
        }
        self.precompute_list = list;
    }

    fn search(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.stats.searches += 1;
        let mut ss = SearchStats::default();
        let route = legality::legal_route_with(
            &self.view_topo,
            &self.view_db,
            flow,
            &self.selection,
            &mut ss,
        )?;
        self.stats.settled += ss.settled;
        self.stats.relaxations += ss.relaxations;
        // Collect the deciding PT per transit AD, to cite in the setup.
        let mut pts = Vec::with_capacity(route.path.len().saturating_sub(2));
        for i in 1..route.path.len().saturating_sub(1) {
            let (permit, pt) = self.view_db.policy(route.path[i]).evaluate_with_term(
                flow,
                Some(route.path[i - 1]),
                Some(route.path[i + 1]),
            );
            debug_assert!(permit.is_some(), "search returned an illegal route");
            pts.push(pt);
        }
        Some(PolicyRoute {
            path: route.path,
            cost: route.cost,
            pts,
        })
    }

    /// Synthesizes (or recalls) the policy route for `flow`.
    pub fn request(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.stats.requests += 1;
        if let Some(hit) = self.precomputed.get(flow) {
            self.stats.precomputed_hits += 1;
            return hit.clone();
        }
        if let Some(hit) = self.cache.get(flow) {
            self.stats.cache_hits += 1;
            return hit.clone();
        }
        let r = self.search(flow);
        self.cache.insert(*flow, r.clone());
        r
    }

    /// Up to `k` alternative routes for `flow`, cheapest first.
    ///
    /// Heuristic: after each route is found, re-search while avoiding one
    /// of its transit ADs (each in turn), collecting distinct results.
    /// This is the sort of pruning heuristic the paper's Section 6 calls
    /// for, not an exact k-shortest-paths.
    pub fn alternatives(&mut self, flow: &FlowSpec, k: usize) -> Vec<PolicyRoute> {
        let Some(first) = self.request(flow) else {
            return Vec::new();
        };
        let mut found = vec![first.clone()];
        let transit: Vec<AdId> = first.path[1..first.path.len().saturating_sub(1)].to_vec();
        let base = self.selection.clone();
        for avoid in transit {
            if found.len() >= k {
                break;
            }
            let mut sel = base.clone();
            let mut avoided: Vec<AdId> = match &sel.avoid {
                adroute_policy::AdSet::Only(v) => v.clone(),
                _ => Vec::new(),
            };
            avoided.push(avoid);
            sel.avoid = adroute_policy::AdSet::only(avoided);
            self.selection = sel;
            if let Some(alt) = self.search(flow) {
                if !found.iter().any(|r| r.path == alt.path) {
                    found.push(alt);
                }
            }
        }
        self.selection = base;
        found.sort_by_key(|r| (r.cost, r.path.len()));
        found.truncate(k.max(1));
        found
    }

    /// Installs a new view after a topology or policy change: flushes the
    /// cache and re-runs precomputation (the staleness cost E7 reports).
    pub fn update_view(&mut self, view_topo: Topology, view_db: PolicyDb) {
        self.view_topo = view_topo;
        self.view_db = view_db;
        self.cache.clear();
        self.run_precompute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};
    use adroute_topology::generate::{line, ring};

    fn server(strategy: Strategy) -> RouteServer {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        RouteServer::new(AdId(0), topo, db, strategy)
    }

    #[test]
    fn on_demand_searches_every_time() {
        let mut rs = server(Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let a = rs.request(&f).unwrap();
        let b = rs.request(&f).unwrap();
        assert_eq!(a, b);
        assert_eq!(rs.stats.searches, 2);
        assert_eq!(rs.stats.cache_hits, 0);
        assert_eq!(rs.cached_len(), 0);
    }

    #[test]
    fn cached_strategy_reuses() {
        let mut rs = server(Strategy::Cached { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = rs.request(&f);
        let _ = rs.request(&f);
        assert_eq!(rs.stats.searches, 1);
        assert_eq!(rs.stats.cache_hits, 1);
    }

    #[test]
    fn hybrid_precompute_hits_before_search() {
        let mut rs = server(Strategy::Hybrid { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        assert_eq!(rs.precomputed_len(), 1);
        let searched_during_precompute = rs.stats.searches;
        let _ = rs.request(&f);
        assert_eq!(rs.stats.searches, searched_during_precompute);
        assert_eq!(rs.stats.precomputed_hits, 1);
        // A class not precomputed falls back to on-demand + cache.
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g);
        let _ = rs.request(&g);
        assert_eq!(rs.stats.cache_hits, 1);
    }

    #[test]
    fn routes_carry_policy_term_citations() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p = TransitPolicy::deny_all(AdId(1));
        let pt = p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Permit { cost: 2 },
        );
        db.set_policy(p);
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = rs.request(&f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        assert_eq!(r.pts.len(), 2);
        assert_eq!(r.pts[0], Some(pt), "AD1's deciding term must be cited");
        assert_eq!(r.pts[1], None, "AD2 permits by default");
        assert_eq!(r.cost, 3 + 2);
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn selection_criteria_stay_private_but_apply() {
        let mut rs = server(Strategy::OnDemand);
        rs.set_selection(RouteSelection::avoiding([AdId(1), AdId(2)]));
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = rs.request(&f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn alternatives_finds_both_ring_sides() {
        let mut rs = server(Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let alts = rs.alternatives(&f, 2);
        assert_eq!(alts.len(), 2);
        assert_ne!(alts[0].path, alts[1].path);
        assert!(alts[0].cost <= alts[1].cost);
    }

    #[test]
    fn view_update_flushes_and_recomputes() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut rs = RouteServer::new(
            AdId(0),
            topo.clone(),
            db.clone(),
            Strategy::Hybrid { capacity: 8 },
        );
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g);
        assert_eq!(rs.cached_len(), 1);
        // Fail link 0-1 in the view.
        let mut topo2 = topo.clone();
        let l = topo2.link_between(AdId(0), AdId(1)).unwrap();
        topo2.set_link_up(l, false);
        rs.update_view(topo2, db);
        assert_eq!(rs.cached_len(), 0, "cache must flush");
        let r = rs.request(&f).unwrap();
        assert_eq!(
            r.path,
            vec![AdId(0), AdId(5), AdId(4), AdId(3)],
            "precomputed route must reflect the new view"
        );
        assert_eq!(rs.stats.precomputed_hits, 1);
    }

    #[test]
    fn unreachable_flows_are_negative_cached() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(rs.request(&f).is_none());
        assert!(rs.request(&f).is_none());
        assert_eq!(rs.stats.searches, 1, "negative result must be cached too");
    }
}
