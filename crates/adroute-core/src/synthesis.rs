//! The Route Server: policy route synthesis (paper Sections 5.4.1 and 6).
//!
//! "A Route Server in each AD computes Policy Routes based on the
//! advertised policy and topology information." Synthesis is the paper's
//! acknowledged hard problem: "Precomputation of all policy routes in a
//! large internet is computationally intractable, while on demand
//! computation may introduce excessive latency at setup time.
//! Consequently, a combination of precomputation and on-demand computation
//! should be used." The three [`Strategy`] variants realize exactly those
//! options; experiment E7 sweeps them.
//!
//! The search itself is the same policy-constrained Dijkstra as the oracle
//! (`adroute_policy::legality`) — run over **this AD's own flooded view**
//! of topology and policy, not ground truth.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use adroute_policy::{
    legality::{self, SearchStats},
    AdSetPool, FlowSpec, PolicyDb, PtId, QosClass, RouteSelection, TimeOfDay, TransitPolicy,
    UserClass,
};
use adroute_topology::{AdId, RegionMap, TopoDelta, Topology};

use crate::lru::LruCache;

/// A synthesized policy route: the AD path plus, per transit AD, the
/// Policy Term that permits the traversal (cited in the setup packet).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyRoute {
    /// The AD-level path, source to destination.
    pub path: Vec<AdId>,
    /// Total cost (link metrics + transit charges).
    pub cost: u64,
    /// For each transit AD on `path` (in order), the deciding permit term
    /// (`None` when the AD's default action permits).
    pub pts: Vec<Option<PtId>>,
}

impl PolicyRoute {
    /// Number of AD hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Route synthesis strategy (the Section 6 trade-off).
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Compute every request from scratch; no state, maximum setup
    /// latency.
    OnDemand,
    /// On-demand with an LRU route cache of the given capacity.
    Cached {
        /// Maximum cached routes.
        capacity: usize,
    },
    /// Precompute routes for a workload-supplied list of expected traffic
    /// classes (the "commonly used routes" heuristic); anything else is a
    /// miss that falls back to on-demand with an LRU cache.
    Hybrid {
        /// Maximum cached routes for non-precomputed classes.
        capacity: usize,
    },
}

/// Synthesis work counters (experiment E7's columns).
///
/// Setup-time work (`searches`/`settled`/`relaxations`) is counted apart
/// from background precomputation (`precompute_*`): E7 compares setup
/// latency against precompute refresh cost, and conflating the two made
/// both columns wrong.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SynthStats {
    /// Route requests served.
    pub requests: u64,
    /// Full searches performed at setup time (on demand).
    pub searches: u64,
    /// Search states settled at setup time (CPU proxy).
    pub settled: u64,
    /// Search edge relaxations at setup time (CPU proxy).
    pub relaxations: u64,
    /// Searches performed while (re)filling the precomputed table.
    pub precompute_searches: u64,
    /// Search states settled during precomputation.
    pub precompute_settled: u64,
    /// Search edge relaxations during precomputation.
    pub precompute_relaxations: u64,
    /// Requests answered from the precomputed table.
    pub precomputed_hits: u64,
    /// Requests answered from the LRU cache.
    pub cache_hits: u64,
    /// Stored entries discarded (and, for precomputed classes, recomputed)
    /// by view maintenance.
    pub entries_invalidated: u64,
    /// Surviving routes re-checked in place after a restrictive delta.
    pub revalidations: u64,
    /// Revalidations that confirmed the stored route, avoiding a search.
    pub revalidate_hits: u64,
}

/// Fast-path work counters for the sharded/batched serving engine.
///
/// These count *actual* work — one multi-destination sweep may answer many
/// opens — unlike [`SynthStats`], whose search-effort counters are defined
/// to be byte-identical between the batched and monolithic paths (the
/// twin-oracle contract). Keeping the two apart is what lets the
/// differential battery assert `SynthStats` equality while the fast path
/// measurably does less work.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SweepStats {
    /// Batches committed by [`RouteServer::request_batch`].
    pub batches: u64,
    /// Flows submitted across all batches.
    pub batch_flows: u64,
    /// Shared multi-destination sweeps run. Shard-*dependent*: a finer
    /// destination partition splits one class's sweep into several.
    pub sweeps: u64,
    /// Distinct compatibility classes (same source and non-destination
    /// attributes) swept across all batches. Shard-*invariant* — the
    /// sweep count a one-shard partition would have run — so slot
    /// service-time charging based on it cannot let the shard count leak
    /// into the simulation's timing.
    pub classes: u64,
    /// Requests absorbed by the hot tier (each also counts as a
    /// `cache_hits` in [`SynthStats`] — the hot tier is observationally a
    /// front for the LRU).
    pub hot_hits: u64,
    /// Entries recomputed by [`RouteServer::background_refill`].
    pub refills: u64,
}

/// Invalidated flows remembered for background refill are bounded so a
/// server that never runs the scheduler (the monolithic path) cannot
/// accumulate an unbounded queue.
const REFILL_QUEUE_CAP: usize = 1024;

/// One incremental change to a Route Server's view of the internet,
/// flooded to it by the link-state machinery (paper Section 5.4.1's
/// "advertised policy and topology information").
#[derive(Clone, Debug)]
pub enum ViewDelta {
    /// An endpoint-addressed topology change (link state or metric).
    Topo(TopoDelta),
    /// Replacement of one AD's transit policy.
    Policy(TransitPolicy),
}

/// Reverse index from view elements to the stored routes that depend on
/// them: link endpoint pair → flows whose current route crosses that link,
/// and AD → flows whose current route transits it. Lets a view delta
/// invalidate only the entries it can actually affect.
#[derive(Clone, Debug, Default)]
struct DepIndex {
    by_link: HashMap<(AdId, AdId), HashSet<FlowSpec>>,
    by_ad: HashMap<AdId, HashSet<FlowSpec>>,
    /// The path each flow is currently indexed under (needed to unindex
    /// exactly on eviction or replacement).
    paths: HashMap<FlowSpec, Vec<AdId>>,
}

impl DepIndex {
    fn norm(a: AdId, b: AdId) -> (AdId, AdId) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Registers `flow`'s current route, replacing any previous entry.
    fn index(&mut self, flow: FlowSpec, path: &[AdId]) {
        self.unindex(&flow);
        for w in path.windows(2) {
            self.by_link
                .entry(Self::norm(w[0], w[1]))
                .or_default()
                .insert(flow);
        }
        for ad in path.get(1..path.len().saturating_sub(1)).unwrap_or(&[]) {
            self.by_ad.entry(*ad).or_default().insert(flow);
        }
        self.paths.insert(flow, path.to_vec());
    }

    /// Drops `flow` from the index (no-op if not indexed).
    fn unindex(&mut self, flow: &FlowSpec) {
        let Some(path) = self.paths.remove(flow) else {
            return;
        };
        for w in path.windows(2) {
            let key = Self::norm(w[0], w[1]);
            if let Some(s) = self.by_link.get_mut(&key) {
                s.remove(flow);
                if s.is_empty() {
                    self.by_link.remove(&key);
                }
            }
        }
        for ad in path.get(1..path.len().saturating_sub(1)).unwrap_or(&[]) {
            if let Some(s) = self.by_ad.get_mut(ad) {
                s.remove(flow);
                if s.is_empty() {
                    self.by_ad.remove(ad);
                }
            }
        }
    }

    /// Flows whose route crosses the link `a`–`b`, in deterministic order.
    fn affected_by_link(&self, a: AdId, b: AdId) -> Vec<FlowSpec> {
        let mut v: Vec<FlowSpec> = self
            .by_link
            .get(&Self::norm(a, b))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Flows whose route transits `ad`, in deterministic order.
    fn affected_by_ad(&self, ad: AdId) -> Vec<FlowSpec> {
        let mut v: Vec<FlowSpec> = self
            .by_ad
            .get(&ad)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }
}

/// One AD's Route Server.
#[derive(Clone, Debug)]
pub struct RouteServer {
    /// The AD this server belongs to.
    pub ad: AdId,
    view_topo: Topology,
    view_db: PolicyDb,
    strategy: Strategy,
    /// The source's private route-selection criteria (applied to every
    /// synthesis; never advertised — the privacy property of source
    /// routing). Set via [`RouteServer::set_selection`], which flushes
    /// cached routes computed under the old criteria.
    selection: RouteSelection,
    precompute_list: Vec<FlowSpec>,
    precomputed: HashMap<FlowSpec, Option<PolicyRoute>>,
    cache: LruCache<FlowSpec, Option<PolicyRoute>>,
    /// Hot tier: a direct-mapped handle array (slot = destination index
    /// mod size) in front of the LRU. Every hot entry shadows a live LRU
    /// entry (the coherence invariant), and a hot hit replays the LRU
    /// recency bump — so the tier is observationally a front, invisible
    /// to `SynthStats` beyond counting as a cache hit, but answers the
    /// common repeat-destination probe without touching the `BTreeMap`
    /// recency structure's key clones.
    hot: Vec<Option<(FlowSpec, Option<PolicyRoute>)>>,
    index: DepIndex,
    /// Flows whose stored route an invalidation dropped, queued for the
    /// background-precompute scheduler ([`RouteServer::background_refill`]).
    pending_refill: VecDeque<FlowSpec>,
    /// Interned avoid-sets: the alternatives hunt widens the same base
    /// selection by one transit AD per probe, and the pool memoizes those
    /// compositions across flows.
    avoid_pool: AdSetPool,
    /// Work counters.
    pub stats: SynthStats,
    /// Fast-path (batch/hot-tier/refill) work counters.
    pub sweep: SweepStats,
}

impl RouteServer {
    /// A server for `ad` with the given view and strategy.
    pub fn new(
        ad: AdId,
        view_topo: Topology,
        view_db: PolicyDb,
        strategy: Strategy,
    ) -> RouteServer {
        let cache = match &strategy {
            Strategy::OnDemand => LruCache::new(0),
            Strategy::Cached { capacity } | Strategy::Hybrid { capacity } => {
                LruCache::new(*capacity)
            }
        };
        let hot = vec![None; cache.capacity()];
        RouteServer {
            ad,
            view_topo,
            view_db,
            strategy,
            selection: RouteSelection::unconstrained(),
            precompute_list: Vec::new(),
            precomputed: HashMap::new(),
            cache,
            hot,
            index: DepIndex::default(),
            pending_refill: VecDeque::new(),
            avoid_pool: AdSetPool::new(),
            stats: SynthStats::default(),
            sweep: SweepStats::default(),
        }
    }

    /// The server's current view of the topology.
    pub fn view_topo(&self) -> &Topology {
        &self.view_topo
    }

    /// The server's current view of global policy.
    pub fn view_db(&self) -> &PolicyDb {
        &self.view_db
    }

    /// `(hits, misses)` of the interned avoid-set pool across intern and
    /// widen operations — the AD-set sharing rate of this server's
    /// selection handling.
    pub fn intern_stats(&self) -> (u64, u64) {
        self.avoid_pool.stats()
    }

    /// The source's current route-selection criteria.
    pub fn selection(&self) -> &RouteSelection {
        &self.selection
    }

    /// Replaces the source's route-selection criteria. Cached and
    /// precomputed routes were synthesized under the old criteria, so both
    /// are flushed (and precomputation re-run).
    pub fn set_selection(&mut self, selection: RouteSelection) {
        // Remember what the flush drops (MRU first) so the background
        // scheduler can rebuild popular routes under the new criteria.
        let lost: Vec<FlowSpec> = self.cache.iter_recency().map(|(k, _)| *k).collect();
        for k in lost.into_iter().rev() {
            self.enqueue_refill(k);
        }
        self.selection = selection;
        self.flush_cache();
        self.run_precompute();
    }

    /// Number of precomputed routes currently held.
    pub fn precomputed_len(&self) -> usize {
        self.precomputed.len()
    }

    /// Number of cached routes currently held.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Precomputes routes for the expected traffic classes (only
    /// meaningful under [`Strategy::Hybrid`]; ignored by `OnDemand` and
    /// `Cached`). The list is remembered and re-run on view changes.
    pub fn precompute(&mut self, flows: &[FlowSpec]) {
        if !matches!(self.strategy, Strategy::Hybrid { .. }) {
            return;
        }
        self.precompute_list = flows.to_vec();
        self.run_precompute();
    }

    /// Drops every cache entry, keeping the dependency index consistent.
    /// Precomputed entries (and their index registrations) are untouched.
    fn flush_cache(&mut self) {
        let keys: Vec<FlowSpec> = self.cache.iter().map(|(k, _)| *k).collect();
        for k in &keys {
            self.index.unindex(k);
        }
        self.cache.clear();
        self.hot.iter_mut().for_each(|s| *s = None);
    }

    /// The hot-tier slot a flow's destination maps to.
    fn hot_slot(&self, flow: &FlowSpec) -> Option<usize> {
        (!self.hot.is_empty()).then(|| flow.dst.index() % self.hot.len())
    }

    /// Probes the hot tier. A hit is honored only while the LRU still
    /// shadows the entry (the coherence invariant), and replays the LRU
    /// recency bump the `get` it replaces would have made — so serving
    /// from the hot tier is observationally identical to serving from
    /// the LRU. A handle whose backing entry is gone is dropped.
    fn hot_probe(&mut self, flow: &FlowSpec) -> Option<Option<PolicyRoute>> {
        let i = self.hot_slot(flow)?;
        match &self.hot[i] {
            Some((hf, _)) if hf == flow => {}
            _ => return None,
        }
        if !self.cache.touch(flow) {
            self.hot[i] = None;
            return None;
        }
        self.sweep.hot_hits += 1;
        Some(self.hot[i].as_ref().and_then(|(_, r)| r.clone()))
    }

    /// Installs (or overwrites) the hot handle for `flow`. Callers must
    /// have just written the same value into the LRU.
    fn hot_store(&mut self, flow: &FlowSpec, r: &Option<PolicyRoute>) {
        if let Some(i) = self.hot_slot(flow) {
            self.hot[i] = Some((*flow, r.clone()));
        }
    }

    /// Drops `flow`'s hot handle if present (LRU eviction or removal).
    fn hot_clear(&mut self, flow: &FlowSpec) {
        if let Some(i) = self.hot_slot(flow) {
            if matches!(&self.hot[i], Some((hf, _)) if hf == flow) {
                self.hot[i] = None;
            }
        }
    }

    /// Replaces the value behind `flow`'s hot handle in place, if present
    /// (a revalidation refreshed the stored route's PT citations).
    fn hot_refresh(&mut self, flow: &FlowSpec, r: &PolicyRoute) {
        if let Some(i) = self.hot_slot(flow) {
            if matches!(&self.hot[i], Some((hf, _)) if hf == flow) {
                self.hot[i] = Some((*flow, Some(r.clone())));
            }
        }
    }

    /// Remembers an invalidated flow for the background-refill scheduler.
    fn enqueue_refill(&mut self, flow: FlowSpec) {
        if self.cache.capacity() > 0 && self.pending_refill.len() < REFILL_QUEUE_CAP {
            self.pending_refill.push_back(flow);
        }
    }

    /// Invalidated flows currently awaiting background refill.
    pub fn pending_refill_len(&self) -> usize {
        self.pending_refill.len()
    }

    /// Recomputes one precomputed class in place, keeping the index exact.
    fn refill_precomputed(&mut self, flow: &FlowSpec) {
        let r = self.search_tagged(flow, true);
        match &r {
            Some(route) => self.index.index(*flow, &route.path),
            None => self.index.unindex(flow),
        }
        self.precomputed.insert(*flow, r);
    }

    fn run_precompute(&mut self) {
        let old: Vec<FlowSpec> = self.precomputed.keys().copied().collect();
        for flow in &old {
            self.index.unindex(flow);
        }
        let list = std::mem::take(&mut self.precompute_list);
        self.precomputed.clear();
        for flow in &list {
            self.refill_precomputed(flow);
        }
        self.precompute_list = list;
    }

    fn search(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.search_tagged(flow, false)
    }

    /// One policy-constrained search; `precompute` routes the work into
    /// the background counters instead of the setup-time ones.
    fn search_tagged(&mut self, flow: &FlowSpec, precompute: bool) -> Option<PolicyRoute> {
        if precompute {
            self.stats.precompute_searches += 1;
        } else {
            self.stats.searches += 1;
        }
        let mut ss = SearchStats::default();
        let route = legality::legal_route_with(
            &self.view_topo,
            &self.view_db,
            flow,
            &self.selection,
            &mut ss,
        )?;
        if precompute {
            self.stats.precompute_settled += ss.settled;
            self.stats.precompute_relaxations += ss.relaxations;
        } else {
            self.stats.settled += ss.settled;
            self.stats.relaxations += ss.relaxations;
        }
        let pts = self.cite_pts(flow, &route.path);
        Some(PolicyRoute {
            path: route.path,
            cost: route.cost,
            pts,
        })
    }

    /// Collects the deciding PT per transit AD on a known-legal path, to
    /// cite in the setup packet.
    fn cite_pts(&self, flow: &FlowSpec, path: &[AdId]) -> Vec<Option<PtId>> {
        let mut pts = Vec::with_capacity(path.len().saturating_sub(2));
        for i in 1..path.len().saturating_sub(1) {
            let (permit, pt) = self.view_db.policy(path[i]).evaluate_with_term(
                flow,
                Some(path[i - 1]),
                Some(path[i + 1]),
            );
            debug_assert!(permit.is_some(), "citing terms for an illegal route");
            pts.push(pt);
        }
        pts
    }

    /// Synthesizes (or recalls) the policy route for `flow`.
    pub fn request(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.request_inner(flow, None)
    }

    /// One request against current state. `prepared` optionally supplies a
    /// search result a batch sweep computed ahead of the commit — exactly
    /// what a solo search here would return, since searches are pure
    /// functions of the view and selection, which do not change within a
    /// batch — so committing it (counters included) is indistinguishable
    /// from searching on the spot.
    fn request_inner(
        &mut self,
        flow: &FlowSpec,
        prepared: Option<(Option<legality::LegalRoute>, SearchStats)>,
    ) -> Option<PolicyRoute> {
        self.stats.requests += 1;
        if let Some(hit) = self.precomputed.get(flow) {
            self.stats.precomputed_hits += 1;
            return hit.clone();
        }
        if let Some(hit) = self.hot_probe(flow) {
            self.stats.cache_hits += 1;
            return hit;
        }
        if let Some(hit) = self.cache.get(flow) {
            self.stats.cache_hits += 1;
            let hit = hit.clone();
            self.hot_store(flow, &hit);
            return hit;
        }
        let r = match prepared {
            Some((lr, ss)) => {
                // Commit the sweep's result with solo-identical
                // accounting: searches always count; effort counters only
                // accrue when a route is found (`search_tagged` returns
                // early on a fruitless search).
                self.stats.searches += 1;
                lr.map(|lr| {
                    self.stats.settled += ss.settled;
                    self.stats.relaxations += ss.relaxations;
                    PolicyRoute {
                        pts: self.cite_pts(flow, &lr.path),
                        path: lr.path,
                        cost: lr.cost,
                    }
                })
            }
            None => self.search(flow),
        };
        if self.cache.capacity() > 0 {
            match &r {
                Some(route) => self.index.index(*flow, &route.path),
                None => self.index.unindex(flow),
            }
        }
        if let Some(evicted) = self.cache.insert(*flow, r.clone()) {
            self.index.unindex(&evicted);
            self.hot_clear(&evicted);
        }
        if self.cache.capacity() > 0 {
            self.hot_store(flow, &r);
        }
        r
    }

    /// Batched variant of [`RouteServer::request`]: answers every flow in
    /// `flows` (in order), with results, cache side effects, and
    /// [`SynthStats`] **exactly equal** to calling `request` once per
    /// flow — the twin-oracle contract the differential battery checks —
    /// while sharing search work across co-routable flows.
    ///
    /// Flows no store answers are deduplicated, partitioned by
    /// destination shard ([`RegionMap::contiguous`] over the view) and
    /// compatibility class (equal non-destination attributes), and each
    /// group is answered by one multi-destination sweep
    /// ([`legality::legal_routes_sweep`]) whose per-destination results
    /// and effort counters are provably those of solo searches. Results
    /// are then committed **sequentially in arrival order**, replaying
    /// the exact probe/insert/evict sequence of the monolithic path — so
    /// cache contents, LRU recency order, the dependency index, and
    /// every counter match byte for byte at any shard count.
    pub fn request_batch(&mut self, flows: &[FlowSpec], shards: usize) -> Vec<Option<PolicyRoute>> {
        self.sweep.batches += 1;
        self.sweep.batch_flows += flows.len() as u64;
        // Classify (read-only): flows no store answers need a search.
        let mut fresh: Vec<FlowSpec> = Vec::new();
        let mut seen: HashSet<FlowSpec> = HashSet::new();
        for f in flows {
            if self.precomputed.contains_key(f) || self.cache.peek(f).is_some() {
                continue;
            }
            if seen.insert(*f) {
                fresh.push(*f);
            }
        }
        // Shard and sweep. Group order is deterministic (BTreeMap), and
        // the sweeps are view-only, so any evaluation order — including a
        // parallel one — yields the same `found` map.
        let map = RegionMap::contiguous(self.view_topo.num_ads().max(1), shards.max(1));
        type GroupKey = (AdId, QosClass, UserClass, TimeOfDay, usize);
        let mut groups: BTreeMap<GroupKey, Vec<FlowSpec>> = BTreeMap::new();
        for f in &fresh {
            let key = (f.src, f.qos, f.uci, f.time, map.region_of(f.dst));
            groups.entry(key).or_default().push(*f);
        }
        let classes: HashSet<(AdId, QosClass, UserClass, TimeOfDay)> = groups
            .keys()
            .map(|&(src, qos, uci, time, _region)| (src, qos, uci, time))
            .collect();
        self.sweep.classes += classes.len() as u64;
        let mut found: HashMap<FlowSpec, (Option<legality::LegalRoute>, SearchStats)> =
            HashMap::with_capacity(fresh.len());
        for ((src, qos, uci, time, _region), group) in &groups {
            self.sweep.sweeps += 1;
            let template = FlowSpec {
                src: *src,
                dst: *src,
                qos: *qos,
                uci: *uci,
                time: *time,
            };
            let dsts: Vec<AdId> = group.iter().map(|f| f.dst).collect();
            let results = legality::legal_routes_sweep(
                &self.view_topo,
                &self.view_db,
                &template,
                &dsts,
                &self.selection,
            );
            for (f, r) in group.iter().zip(results) {
                found.insert(*f, r);
            }
        }
        // Sequential commit in arrival order. A flow classified as stored
        // that a mid-batch eviction displaced simply misses here and
        // searches solo, exactly as the monolithic path would.
        flows
            .iter()
            .map(|f| self.request_inner(f, found.remove(f)))
            .collect()
    }

    /// Background-precompute scheduler: re-synthesizes up to `budget`
    /// routes whose stored entries invalidations dropped (view deltas,
    /// quarantine/selection updates), refilling the cache and hot tier
    /// *before* the next open asks instead of at setup time. Every
    /// refilled entry is synthesized against the **current** view and
    /// selection, so only legality-valid routes are ever stored; the
    /// work lands in the `precompute_*` counters (it is background
    /// work). Returns how many entries were recomputed.
    pub fn background_refill(&mut self, budget: usize) -> usize {
        let mut refilled = 0;
        while refilled < budget {
            let Some(flow) = self.pending_refill.pop_front() else {
                break;
            };
            if self.precomputed.contains_key(&flow) || self.cache.peek(&flow).is_some() {
                continue; // already refilled (or re-requested) meanwhile
            }
            let r = self.search_tagged(&flow, true);
            if self.cache.capacity() > 0 {
                match &r {
                    Some(route) => self.index.index(flow, &route.path),
                    None => self.index.unindex(&flow),
                }
            }
            if let Some(evicted) = self.cache.insert(flow, r.clone()) {
                self.index.unindex(&evicted);
                self.hot_clear(&evicted);
            }
            if self.cache.capacity() > 0 {
                self.hot_store(&flow, &r);
            }
            self.sweep.refills += 1;
            refilled += 1;
        }
        refilled
    }

    /// Serves `flow` from stored state only — the precomputed table, then
    /// the LRU cache — performing **no** search. This is the brownout
    /// ladder's cheapest serving rung: under overload a Route Server that
    /// cannot afford synthesis can still answer from what it already has.
    ///
    /// Returns `None` when nothing is stored (the caller sheds the open);
    /// `Some(None)` is a stored negative entry — the view has no legal
    /// route, which is an answer, not a miss.
    pub fn stored_route(&mut self, flow: &FlowSpec) -> Option<Option<PolicyRoute>> {
        self.stats.requests += 1;
        if let Some(hit) = self.precomputed.get(flow) {
            self.stats.precomputed_hits += 1;
            return Some(hit.clone());
        }
        if let Some(hit) = self.hot_probe(flow) {
            self.stats.cache_hits += 1;
            return Some(hit);
        }
        if let Some(hit) = self.cache.get(flow) {
            self.stats.cache_hits += 1;
            let hit = hit.clone();
            self.hot_store(flow, &hit);
            return Some(hit);
        }
        None
    }

    /// Snapshot of the LRU cache, least-recently-used first, for warm
    /// standby sync. The order is deterministic (a pure function of the
    /// access sequence), so replaying a snapshot into a standby's cache
    /// reproduces the primary's recency order exactly.
    pub fn cache_snapshot(&self) -> Vec<(FlowSpec, Option<PolicyRoute>)> {
        self.cache
            .iter_recency()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Preseeds the cache from a standby snapshot, revalidating each entry
    /// against this server's **current** view and selection criteria: the
    /// snapshot may predate a view delta or a quarantine widening, and a
    /// takeover must never resurrect a route through an AD the source now
    /// avoids. Negative entries are dropped rather than trusted (absence
    /// of a route is cheap to rediscover and dangerous to assume).
    /// Returns how many entries were accepted.
    pub fn warm_cache(&mut self, entries: &[(FlowSpec, Option<PolicyRoute>)]) -> usize {
        if self.cache.capacity() == 0 {
            return 0;
        }
        let mut warmed = 0;
        for (flow, stored) in entries {
            let Some(route) = stored else {
                continue;
            };
            let Some(cost) =
                legality::route_is_legal(&self.view_topo, &self.view_db, flow, &route.path)
            else {
                continue;
            };
            if cost != route.cost || !self.selection.accepts(&route.path, cost) {
                continue;
            }
            if self.precomputed.contains_key(flow) {
                continue;
            }
            let refreshed = PolicyRoute {
                pts: self.cite_pts(flow, &route.path),
                ..route.clone()
            };
            self.index.index(*flow, &refreshed.path);
            self.hot_refresh(flow, &refreshed);
            if let Some(evicted) = self.cache.insert(*flow, Some(refreshed)) {
                self.index.unindex(&evicted);
                self.hot_clear(&evicted);
            }
            warmed += 1;
        }
        warmed
    }

    /// A crash loses all soft state: the route cache, the precomputed
    /// table, and the dependency index. The flooded view itself is kept —
    /// link-state is recoverable from neighbors, and modeling its loss is
    /// [`RouteServer::update_view`]'s job.
    pub fn crash_soft_state(&mut self) {
        self.flush_cache();
        let old: Vec<FlowSpec> = self.precomputed.keys().copied().collect();
        for flow in &old {
            self.index.unindex(flow);
        }
        self.precomputed.clear();
        self.pending_refill.clear();
    }

    /// Standby takeover: rebuilds the precomputed table from the flooded
    /// view. The precompute list survives a crash as configuration (it is
    /// workload knowledge, not derived state); the routes themselves are
    /// re-synthesized so they reflect the current view.
    pub fn rebuild_soft_state(&mut self) {
        self.run_precompute();
    }

    /// Up to `k` alternative routes for `flow`, cheapest first.
    ///
    /// Heuristic: after each route is found, re-search while avoiding one
    /// of its transit ADs (each in turn), collecting distinct results.
    /// This is the sort of pruning heuristic the paper's Section 6 calls
    /// for, not an exact k-shortest-paths.
    pub fn alternatives(&mut self, flow: &FlowSpec, k: usize) -> Vec<PolicyRoute> {
        if k == 0 {
            return Vec::new();
        }
        let Some(first) = self.request(flow) else {
            return Vec::new();
        };
        let mut found = vec![first.clone()];
        let transit: Vec<AdId> = first.path[1..first.path.len().saturating_sub(1)].to_vec();
        let base = self.selection.clone();
        let base_avoid = self.avoid_pool.intern(base.avoid.clone());
        for avoid in transit {
            if found.len() >= k {
                break;
            }
            let mut sel = base.clone();
            // Widen — never replace — the source's avoid set, so its
            // private criteria stay in force during the hunt. The pool
            // memoizes each (base, avoid) composition.
            let widened = self.avoid_pool.widen(base_avoid, avoid);
            sel.avoid = self.avoid_pool.get(widened).clone();
            self.selection = sel;
            if let Some(alt) = self.search(flow) {
                if !found.iter().any(|r| r.path == alt.path) {
                    found.push(alt);
                }
            }
        }
        self.selection = base;
        found.sort_by_key(|r| (r.cost, r.path.len()));
        found.truncate(k);
        found
    }

    /// Installs a new view after a topology or policy change: flushes the
    /// cache and re-runs precomputation (the staleness cost E7 reports).
    ///
    /// This is the flush-everything fallback; [`RouteServer::apply_delta`]
    /// is the incremental path.
    pub fn update_view(&mut self, view_topo: Topology, view_db: PolicyDb) {
        self.view_topo = view_topo;
        self.view_db = view_db;
        self.invalidate_all();
    }

    /// Applies one incremental change to the view, invalidating only the
    /// stored routes the change can affect.
    ///
    /// A **restrictive** delta (link down, metric increase, provable policy
    /// restriction) can only remove routes or make them costlier, so a
    /// stored route not touching the changed element is still optimal and
    /// a negative entry is still negative; only the flows whose current
    /// route crosses the changed link / transits the re-policied AD are
    /// re-examined — first by revalidating the stored path in place
    /// (legal at unchanged cost ⇒ still optimal), falling back to a fresh
    /// search. Anything else (link up, metric decrease, general policy
    /// replacement) can create or cheapen routes anywhere, so every stored
    /// entry is invalidated.
    ///
    /// Returns `false` — leaving the server untouched — when the delta
    /// cannot be applied to this view (the view's structure predates the
    /// link); the caller must fall back to [`RouteServer::update_view`].
    pub fn apply_delta(&mut self, delta: &ViewDelta) -> bool {
        match delta {
            ViewDelta::Topo(td) => {
                let Some(restrictive) = td.is_restrictive_on(&self.view_topo) else {
                    return false;
                };
                if !td.apply(&mut self.view_topo) {
                    return false;
                }
                if restrictive {
                    let (a, b) = td.endpoints();
                    let affected = self.index.affected_by_link(a, b);
                    self.invalidate_affected(&affected);
                } else {
                    self.invalidate_all();
                }
                true
            }
            ViewDelta::Policy(p) => {
                let restrictive = p.is_restriction_of(self.view_db.policy(p.ad));
                self.view_db.set_policy(p.clone());
                if restrictive {
                    let affected = self.index.affected_by_ad(p.ad);
                    self.invalidate_affected(&affected);
                } else {
                    self.invalidate_all();
                }
                true
            }
        }
    }

    /// Re-examines the stored routes a restrictive delta touches.
    fn invalidate_affected(&mut self, affected: &[FlowSpec]) {
        for flow in affected {
            let stored = if let Some(e) = self.precomputed.get(flow) {
                e.clone()
            } else if let Some(e) = self.cache.peek(flow) {
                e.clone()
            } else {
                // Indexed but no longer stored (shouldn't happen; evictions
                // unindex eagerly) — just drop the registration.
                self.index.unindex(flow);
                continue;
            };
            let Some(route) = stored else {
                self.index.unindex(flow);
                continue;
            };
            self.stats.revalidations += 1;
            let cost = legality::route_is_legal(&self.view_topo, &self.view_db, flow, &route.path);
            if cost == Some(route.cost) {
                // Still legal at unchanged cost: every competitor could
                // only have vanished or grown costlier, so the stored
                // route is still optimal. Refresh its PT citations — a
                // policy replacement may have renumbered term ids.
                self.stats.revalidate_hits += 1;
                let refreshed = PolicyRoute {
                    pts: self.cite_pts(flow, &route.path),
                    ..route
                };
                if self.precomputed.contains_key(flow) {
                    self.precomputed.insert(*flow, Some(refreshed));
                } else {
                    self.hot_refresh(flow, &refreshed);
                    // Re-inserting an existing key never evicts.
                    let _ = self.cache.insert(*flow, Some(refreshed));
                }
                continue;
            }
            self.stats.entries_invalidated += 1;
            if self.precomputed.contains_key(flow) {
                self.refill_precomputed(flow);
            } else {
                self.cache.remove(flow);
                self.index.unindex(flow);
                self.hot_clear(flow);
                self.enqueue_refill(*flow);
            }
        }
    }

    /// Invalidates every stored entry (the flush path, with accounting):
    /// drops the cache and recomputes the precomputed table.
    fn invalidate_all(&mut self) {
        self.stats.entries_invalidated += (self.cache.len() + self.precomputed.len()) as u64;
        let lost: Vec<FlowSpec> = self.cache.iter_recency().map(|(k, _)| *k).collect();
        for k in lost.into_iter().rev() {
            self.enqueue_refill(k);
        }
        self.flush_cache();
        self.run_precompute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{AdSet, PolicyAction, PolicyCondition, TransitPolicy};
    use adroute_topology::generate::{line, ring};

    fn server(strategy: Strategy) -> RouteServer {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        RouteServer::new(AdId(0), topo, db, strategy)
    }

    #[test]
    fn on_demand_searches_every_time() {
        let mut rs = server(Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let a = rs.request(&f).unwrap();
        let b = rs.request(&f).unwrap();
        assert_eq!(a, b);
        assert_eq!(rs.stats.searches, 2);
        assert_eq!(rs.stats.cache_hits, 0);
        assert_eq!(rs.cached_len(), 0);
    }

    #[test]
    fn cached_strategy_reuses() {
        let mut rs = server(Strategy::Cached { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = rs.request(&f);
        let _ = rs.request(&f);
        assert_eq!(rs.stats.searches, 1);
        assert_eq!(rs.stats.cache_hits, 1);
    }

    #[test]
    fn hybrid_precompute_hits_before_search() {
        let mut rs = server(Strategy::Hybrid { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        assert_eq!(rs.precomputed_len(), 1);
        // Precompute work lands in its own counters, not the setup-time
        // ones E7's latency column reads.
        assert_eq!(rs.stats.precompute_searches, 1);
        assert_eq!(rs.stats.searches, 0);
        assert_eq!(rs.stats.settled, 0);
        assert_eq!(rs.stats.relaxations, 0);
        assert!(rs.stats.precompute_settled > 0);
        let _ = rs.request(&f);
        assert_eq!(rs.stats.searches, 0);
        assert_eq!(rs.stats.precomputed_hits, 1);
        // A class not precomputed falls back to on-demand + cache.
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g);
        let _ = rs.request(&g);
        assert_eq!(rs.stats.cache_hits, 1);
        assert_eq!(rs.stats.searches, 1);
        assert_eq!(rs.stats.precompute_searches, 1);
    }

    #[test]
    fn routes_carry_policy_term_citations() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p = TransitPolicy::deny_all(AdId(1));
        let pt = p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Permit { cost: 2 },
        );
        db.set_policy(p);
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = rs.request(&f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        assert_eq!(r.pts.len(), 2);
        assert_eq!(r.pts[0], Some(pt), "AD1's deciding term must be cited");
        assert_eq!(r.pts[1], None, "AD2 permits by default");
        assert_eq!(r.cost, 3 + 2);
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn selection_criteria_stay_private_but_apply() {
        let mut rs = server(Strategy::OnDemand);
        rs.set_selection(RouteSelection::avoiding([AdId(1), AdId(2)]));
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = rs.request(&f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn alternatives_finds_both_ring_sides() {
        let mut rs = server(Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let alts = rs.alternatives(&f, 2);
        assert_eq!(alts.len(), 2);
        assert_ne!(alts[0].path, alts[1].path);
        assert!(alts[0].cost <= alts[1].cost);
    }

    #[test]
    fn view_update_flushes_and_recomputes() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut rs = RouteServer::new(
            AdId(0),
            topo.clone(),
            db.clone(),
            Strategy::Hybrid { capacity: 8 },
        );
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g);
        assert_eq!(rs.cached_len(), 1);
        // Fail link 0-1 in the view.
        let mut topo2 = topo.clone();
        let l = topo2.link_between(AdId(0), AdId(1)).unwrap();
        topo2.set_link_up(l, false);
        rs.update_view(topo2, db);
        assert_eq!(rs.cached_len(), 0, "cache must flush");
        let r = rs.request(&f).unwrap();
        assert_eq!(
            r.path,
            vec![AdId(0), AdId(5), AdId(4), AdId(3)],
            "precomputed route must reflect the new view"
        );
        assert_eq!(rs.stats.precomputed_hits, 1);
    }

    #[test]
    fn alternatives_with_zero_k_returns_nothing() {
        let mut rs = server(Strategy::OnDemand);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let before = rs.stats.requests;
        assert!(rs.alternatives(&f, 0).is_empty());
        assert_eq!(rs.stats.requests, before, "k = 0 must not even search");
    }

    #[test]
    fn alternatives_keep_non_only_avoid_sets_in_force() {
        // Base criteria: avoid everything except AD1/AD2 — i.e. of the
        // ring's transit candidates, AD4 and AD5 are off limits, so only
        // the 0-1-2-3 side is ever acceptable.
        let mut rs = server(Strategy::OnDemand);
        rs.set_selection(RouteSelection {
            avoid: AdSet::except([AdId(1), AdId(2)]),
            ..RouteSelection::unconstrained()
        });
        let base = rs.selection().clone();
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let alts = rs.alternatives(&f, 3);
        assert_eq!(alts.len(), 1, "the far ring side violates base criteria");
        for r in &alts {
            assert!(
                base.accepts(&r.path, r.cost),
                "alternative {:?} loosened the source's private criteria",
                r.path
            );
        }
        assert_eq!(rs.selection(), &base, "selection must be restored");
    }

    #[test]
    fn restrictive_delta_invalidates_only_crossing_entries() {
        let mut rs = server(Strategy::Cached { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3)); // 0-1-2-3
        let g = FlowSpec::best_effort(AdId(0), AdId(5)); // 0-5
        assert_eq!(rs.request(&f).unwrap().path.len(), 4);
        assert_eq!(rs.request(&g).unwrap().path.len(), 2);
        let ok = rs.apply_delta(&ViewDelta::Topo(TopoDelta::LinkState {
            a: AdId(1),
            b: AdId(2),
            up: false,
        }));
        assert!(ok);
        assert_eq!(rs.stats.revalidations, 1, "only f crosses 1-2");
        assert_eq!(rs.stats.revalidate_hits, 0);
        assert_eq!(rs.stats.entries_invalidated, 1);
        // g survives in cache; f is re-searched around the far side.
        let hits = rs.stats.cache_hits;
        assert_eq!(rs.request(&g).unwrap().path, vec![AdId(0), AdId(5)]);
        assert_eq!(rs.stats.cache_hits, hits + 1);
        assert_eq!(
            rs.request(&f).unwrap().path,
            vec![AdId(0), AdId(5), AdId(4), AdId(3)]
        );
    }

    #[test]
    fn restrictive_policy_change_revalidates_in_place() {
        let mut rs = server(Strategy::Cached { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = rs.request(&f);
        // AD1 denies sources it never carries anyway: a pure restriction
        // that leaves f's route legal at unchanged cost.
        let mut p = TransitPolicy::permit_all(AdId(1));
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(9)]))],
            PolicyAction::Deny,
        );
        assert!(rs.apply_delta(&ViewDelta::Policy(p)));
        assert_eq!(rs.stats.revalidations, 1);
        assert_eq!(rs.stats.revalidate_hits, 1);
        assert_eq!(rs.stats.entries_invalidated, 0);
        let searches = rs.stats.searches;
        let _ = rs.request(&f);
        assert_eq!(rs.stats.searches, searches, "entry must survive in cache");
    }

    #[test]
    fn expansive_delta_invalidates_everything() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut downed = topo.clone();
        let l = downed.link_between(AdId(1), AdId(2)).unwrap();
        downed.set_link_up(l, false);
        let mut rs = RouteServer::new(AdId(0), downed, db, Strategy::Cached { capacity: 16 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let g = FlowSpec::best_effort(AdId(0), AdId(5));
        let _ = rs.request(&f);
        let _ = rs.request(&g);
        assert_eq!(rs.cached_len(), 2);
        let ok = rs.apply_delta(&ViewDelta::Topo(TopoDelta::LinkState {
            a: AdId(1),
            b: AdId(2),
            up: true,
        }));
        assert!(ok);
        assert_eq!(rs.cached_len(), 0, "a link coming up can cheapen anything");
        assert_eq!(rs.stats.entries_invalidated, 2);
        assert_eq!(rs.stats.revalidations, 0);
        assert_eq!(
            rs.request(&f).unwrap().path,
            vec![AdId(0), AdId(1), AdId(2), AdId(3)],
            "the recovered, cheaper side must win again"
        );
    }

    #[test]
    fn negative_entries_survive_restrictive_deltas() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(rs.request(&f).is_none());
        assert!(rs.apply_delta(&ViewDelta::Topo(TopoDelta::LinkState {
            a: AdId(1),
            b: AdId(2),
            up: false,
        })));
        assert!(rs.request(&f).is_none());
        assert_eq!(
            rs.stats.searches, 1,
            "a restriction cannot create routes, so the negative entry holds"
        );
    }

    #[test]
    fn unknown_link_delta_is_rejected_for_fallback() {
        let mut rs = server(Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = rs.request(&f);
        let ok = rs.apply_delta(&ViewDelta::Topo(TopoDelta::LinkState {
            a: AdId(0),
            b: AdId(3),
            up: false,
        }));
        assert!(!ok, "a link this view never knew cannot be applied");
        assert_eq!(rs.cached_len(), 1, "failed apply must leave state alone");
    }

    #[test]
    fn stored_route_never_searches() {
        let mut rs = server(Strategy::Hybrid { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g); // lands in the LRU cache
        let h = FlowSpec::best_effort(AdId(0), AdId(4));
        let searches = rs.stats.searches;
        assert!(rs.stored_route(&f).unwrap().is_some(), "precomputed hit");
        assert!(rs.stored_route(&g).unwrap().is_some(), "cache hit");
        assert!(rs.stored_route(&h).is_none(), "miss must not search");
        assert_eq!(rs.stats.searches, searches);
        assert_eq!(rs.stats.precomputed_hits, 1);
        assert_eq!(rs.stats.cache_hits, 1);
    }

    #[test]
    fn stored_route_returns_stored_negatives() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(rs.request(&f).is_none());
        assert_eq!(
            rs.stored_route(&f),
            Some(None),
            "a stored negative is an answer, not a miss"
        );
    }

    #[test]
    fn snapshot_and_warm_cache_round_trip() {
        let mut primary = server(Strategy::Cached { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = primary.request(&f);
        let _ = primary.request(&g);
        let snap = primary.cache_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, f, "LRU-first: f was touched before g");
        let mut standby = server(Strategy::Cached { capacity: 8 });
        assert_eq!(standby.warm_cache(&snap), 2);
        let searches = standby.stats.searches;
        assert_eq!(standby.request(&f), primary.stored_route(&f).unwrap());
        assert_eq!(standby.stats.searches, searches, "warmed entry must hit");
    }

    #[test]
    fn warm_cache_rejects_entries_the_view_or_selection_refuse() {
        let mut primary = server(Strategy::Cached { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3)); // 0-1-2-3
        let _ = primary.request(&f);
        let snap = primary.cache_snapshot();
        // Standby whose view lost link 1-2: the snapshot route is illegal.
        let topo = ring(6);
        let mut downed = topo.clone();
        let l = downed.link_between(AdId(1), AdId(2)).unwrap();
        downed.set_link_up(l, false);
        let db = PolicyDb::permissive(&topo);
        let mut standby = RouteServer::new(
            AdId(0),
            downed,
            db.clone(),
            Strategy::Cached { capacity: 8 },
        );
        assert_eq!(
            standby.warm_cache(&snap),
            0,
            "illegal route must be dropped"
        );
        // Standby that quarantined AD1: selection refuses the route.
        let mut avoider = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 8 });
        avoider.set_selection(RouteSelection::avoiding([AdId(1)]));
        assert_eq!(avoider.warm_cache(&snap), 0, "quarantine must be respected");
        assert_eq!(avoider.cached_len(), 0);
    }

    #[test]
    fn warm_cache_drops_negative_entries() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut primary = RouteServer::new(
            AdId(0),
            topo.clone(),
            db.clone(),
            Strategy::Cached { capacity: 4 },
        );
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(primary.request(&f).is_none());
        let snap = primary.cache_snapshot();
        let mut standby = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 4 });
        assert_eq!(standby.warm_cache(&snap), 0);
        assert!(standby.stored_route(&f).is_none(), "negatives not trusted");
    }

    #[test]
    fn crash_loses_soft_state_and_rebuild_recovers_it() {
        let mut rs = server(Strategy::Hybrid { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        rs.precompute(&[f]);
        let g = FlowSpec::best_effort(AdId(0), AdId(2));
        let _ = rs.request(&g);
        assert_eq!(rs.precomputed_len(), 1);
        assert_eq!(rs.cached_len(), 1);
        rs.crash_soft_state();
        assert_eq!(rs.precomputed_len(), 0, "crash must lose the table");
        assert_eq!(rs.cached_len(), 0, "crash must lose the cache");
        assert!(rs.stored_route(&f).is_none());
        rs.rebuild_soft_state();
        assert_eq!(rs.precomputed_len(), 1, "rebuild refills from the view");
        assert!(rs.stored_route(&f).unwrap().is_some());
        assert!(rs.stored_route(&g).is_none(), "cache entries stay lost");
    }

    #[test]
    fn request_batch_is_byte_identical_to_request_loop() {
        for shards in [1usize, 2, 8] {
            let mut mono = server(Strategy::Cached { capacity: 4 });
            let mut batched = server(Strategy::Cached { capacity: 4 });
            // Repeats, negatives (none on a permissive ring), trivia, and
            // enough distinct dsts to force evictions at capacity 4.
            let flows: Vec<FlowSpec> = [3u32, 2, 3, 5, 1, 4, 2, 0, 3, 5, 4, 1]
                .iter()
                .map(|&d| FlowSpec::best_effort(AdId(0), AdId(d)))
                .collect();
            let solo: Vec<_> = flows.iter().map(|f| mono.request(f)).collect();
            let batch = batched.request_batch(&flows, shards);
            assert_eq!(solo, batch, "routes diverged at shards={shards}");
            assert_eq!(
                mono.stats, batched.stats,
                "stats diverged at shards={shards}"
            );
            assert_eq!(
                mono.cache_snapshot(),
                batched.cache_snapshot(),
                "cache contents or recency diverged at shards={shards}"
            );
            assert!(batched.sweep.sweeps > 0, "batch must actually sweep");
            assert!(
                batched.sweep.sweeps < batched.stats.searches,
                "sweeps must be shared across searches"
            );
        }
    }

    #[test]
    fn hot_tier_fronts_the_cache_invisibly() {
        let mut rs = server(Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = rs.request(&f); // search + store (cache and hot)
        let _ = rs.request(&f); // hot hit
        let _ = rs.request(&f); // hot hit
        assert_eq!(rs.stats.cache_hits, 2, "hot hits must count as cache hits");
        assert_eq!(rs.sweep.hot_hits, 2);
        assert_eq!(rs.stats.searches, 1);
        // The hot tier must keep LRU recency exact: touch f via hot, then
        // fill the cache; f must be the survivor, not the eviction victim.
        for d in [2u32, 4, 5] {
            let _ = rs.request(&FlowSpec::best_effort(AdId(0), AdId(d)));
        }
        let _ = rs.request(&f); // hot or cache — either way no search
        assert_eq!(rs.stats.searches, 4, "f must still be stored");
    }

    #[test]
    fn background_refill_restores_invalidated_entries() {
        let mut rs = server(Strategy::Cached { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3)); // 0-1-2-3
        let g = FlowSpec::best_effort(AdId(0), AdId(5)); // 0-5
        let _ = rs.request(&f);
        let _ = rs.request(&g);
        assert!(rs.apply_delta(&ViewDelta::Topo(TopoDelta::LinkState {
            a: AdId(1),
            b: AdId(2),
            up: false,
        })));
        assert_eq!(rs.pending_refill_len(), 1, "only f crossed the link");
        assert_eq!(rs.background_refill(8), 1);
        assert_eq!(rs.pending_refill_len(), 0);
        // The refilled entry reflects the new view and serves without a
        // setup-time search.
        let searches = rs.stats.searches;
        let served = rs.stored_route(&f).expect("refilled").expect("reachable");
        assert_eq!(served.path, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        assert_eq!(rs.stats.searches, searches, "refill work is background");
        assert!(rs.stats.precompute_searches > 0);
        assert_eq!(rs.sweep.refills, 1);
    }

    #[test]
    fn background_refill_only_stores_routes_legal_under_current_view() {
        // Quarantine AD1 (selection update): flushed entries are queued,
        // and the refill must synthesize under the *new* avoid set.
        let mut rs = server(Strategy::Cached { capacity: 8 });
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        let r = rs.request(&f).unwrap();
        assert_eq!(r.path, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        rs.set_selection(RouteSelection::avoiding([AdId(1)]));
        assert!(rs.pending_refill_len() > 0, "flush must queue refills");
        let _ = rs.background_refill(8);
        let served = rs.stored_route(&f).expect("refilled").expect("reachable");
        assert!(
            !served.path.contains(&AdId(1)),
            "refilled route must respect the quarantine avoid-set"
        );
    }

    #[test]
    fn unreachable_flows_are_negative_cached() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let mut rs = RouteServer::new(AdId(0), topo, db, Strategy::Cached { capacity: 4 });
        let f = FlowSpec::best_effort(AdId(0), AdId(2));
        assert!(rs.request(&f).is_none());
        assert!(rs.request(&f).is_none());
        assert_eq!(rs.stats.searches, 1, "negative result must be cached too");
    }
}
