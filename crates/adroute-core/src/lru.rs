//! A small least-recently-used cache.
//!
//! Used by Route Servers (route cache) and Policy Gateways (handle cache,
//! whose bounded size is the "policy gateway state management" concern of
//! the paper's Section 6). Deterministic: eviction order depends only on
//! the access sequence.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A bounded map with least-recently-used eviction.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
    stamp: u64,
    /// Number of entries evicted over the cache's lifetime.
    pub evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. Capacity 0 disables
    /// storage entirely (every insert is dropped).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: BTreeMap::new(),
            stamp: 0,
            evictions: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency. Misses leave the recency
    /// clock untouched, so miss-heavy workloads cannot skew the spacing
    /// between surviving entries.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if let Some((_, old)) = self.map.get(key) {
            self.stamp += 1;
            let stamp = self.stamp;
            let old = *old;
            self.order.remove(&old);
            self.order.insert(stamp, key.clone());
            let entry = self.map.get_mut(key).expect("present above");
            entry.1 = stamp;
            Some(&entry.0)
        } else {
            None
        }
    }

    /// Looks up without refreshing recency (for inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Refreshes `key`'s recency without borrowing its value, exactly as
    /// [`LruCache::get`] would. Returns whether the key was present.
    ///
    /// A hot-tier front cache uses this so hits it absorbs still count as
    /// accesses here, keeping eviction order identical to a cache serving
    /// every hit itself.
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some((_, old)) = self.map.get(key) {
            self.stamp += 1;
            let stamp = self.stamp;
            let old = *old;
            self.order.remove(&old);
            self.order.insert(stamp, key.clone());
            self.map.get_mut(key).expect("present above").1 = stamp;
            true
        } else {
            false
        }
    }

    /// Inserts `key -> value`, evicting the least recently used entry if
    /// over capacity. Returns the evicted key, if any, so callers keeping
    /// secondary indexes over the cached entries can stay exact.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.stamp += 1;
        if let Some((_, old)) = self.map.insert(key.clone(), (value, self.stamp)) {
            self.order.remove(&old);
        }
        self.order.insert(self.stamp, key);
        let mut evicted = None;
        while self.map.len() > self.capacity {
            let (&oldest, _) = self.order.iter().next().expect("non-empty over capacity");
            let victim = self.order.remove(&oldest).expect("key present");
            self.map.remove(&victim);
            self.evictions += 1;
            evicted = Some(victim);
        }
        evicted
    }

    /// Removes a single entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (v, stamp) = self.map.remove(key)?;
        self.order.remove(&stamp);
        Some(v)
    }

    /// Removes every entry for which the predicate holds.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        let doomed: Vec<u64> = self
            .order
            .iter()
            .filter(|(_, k)| {
                let (v, _) = &self.map[*k];
                !keep(k, v)
            })
            .map(|(&s, _)| s)
            .collect();
        for s in doomed {
            if let Some(k) = self.order.remove(&s) {
                self.map.remove(&k);
            }
        }
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (v, _))| (k, v))
    }

    /// Iterates over entries least-recently-used first. The order is a
    /// pure function of the access sequence, so snapshots taken from it
    /// (e.g. a warm standby syncing a Route Server's cache) are
    /// deterministic.
    pub fn iter_recency(&self) -> impl Iterator<Item = (&K, &V)> {
        self.order.values().map(move |k| (k, &self.map[k].0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.peek(&"b"), Some(&2));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        let _ = c.get(&"a"); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.peek(&"b"), None, "b should be evicted");
        assert_eq!(c.peek(&"a"), Some(&1));
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&"a"), Some(&9));
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn remove_retain_clear() {
        let mut c = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.remove(&3), Some(30));
        assert_eq!(c.remove(&3), None);
        c.retain(|&k, _| k % 2 == 0);
        assert_eq!(c.len(), 3); // 0, 2, 4
        assert!(c.peek(&5).is_none());
        assert_eq!(c.iter().count(), 3);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn miss_does_not_advance_recency_clock() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        let before = c.stamp;
        for _ in 0..100 {
            assert_eq!(c.get(&"zzz"), None);
        }
        assert_eq!(c.stamp, before, "misses must not advance the clock");
        let _ = c.get(&"a");
        assert_eq!(c.stamp, before + 1, "hits advance it by exactly one");
    }

    #[test]
    fn touch_is_get_without_the_borrow() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.touch(&"a")); // a is now most recent; b is LRU
        assert!(!c.touch(&"zzz"));
        let before = c.stamp;
        assert!(!c.touch(&"zzz"));
        assert_eq!(c.stamp, before, "touch misses must not advance the clock");
        assert_eq!(c.insert("c", 3), Some("b"), "touch must refresh recency");
    }

    #[test]
    fn insert_reports_evicted_key() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        let _ = c.get(&"a"); // b is now LRU
        assert_eq!(c.insert("c", 3), Some("b"));
        assert_eq!(c.insert("a", 9), None, "re-insert evicts nothing");
        let mut zero = LruCache::new(0);
        assert_eq!(zero.insert("x", 1), None);
    }

    #[test]
    fn iter_recency_is_lru_first() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        let _ = c.get(&"a"); // a is now the most recent
        let keys: Vec<_> = c.iter_recency().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
        let again: Vec<_> = c.iter_recency().map(|(k, _)| *k).collect();
        assert_eq!(keys, again, "iteration must not perturb recency");
    }

    #[test]
    fn eviction_order_is_deterministic() {
        let run = || {
            let mut c = LruCache::new(3);
            for i in 0..10 {
                c.insert(i, i);
                if i % 3 == 0 {
                    let _ = c.get(&(i / 2));
                }
            }
            let mut keys: Vec<_> = c.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            (keys, c.evictions)
        };
        assert_eq!(run(), run());
    }
}
