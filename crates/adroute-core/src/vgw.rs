//! Virtual gateways: replicated Policy Gateways per AD.
//!
//! "ORWG refers to the point of connection between ADs as virtual
//! gateways. A virtual gateway may be comprised of multiple PGs in the
//! interest of reliability and performance" (paper Section 5.4.1,
//! footnote 8). A [`VirtualGateway`] stripes route handles across `k`
//! replica [`PolicyGateway`]s for load sharing; when a replica fails, its
//! cached handles are lost and affected sources re-run setup — the same
//! recovery path as a cache eviction, which keeps the failure model
//! simple and measurable.

use adroute_policy::TransitPolicy;
use adroute_topology::AdId;

use crate::dataplane::{DataPacket, HandleId, SetupPacket};
use crate::gateway::{DataError, GatewayStats, PolicyGateway, SetupError};

/// A replicated gateway: several PGs fronting one AD.
#[derive(Clone, Debug)]
pub struct VirtualGateway {
    /// The AD this virtual gateway guards.
    pub ad: AdId,
    replicas: Vec<PolicyGateway>,
    alive: Vec<bool>,
}

impl VirtualGateway {
    /// A virtual gateway of `replicas` PGs, each with its own handle
    /// cache of `capacity_each`.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    pub fn new(ad: AdId, replicas: usize, capacity_each: usize) -> VirtualGateway {
        assert!(replicas > 0, "a virtual gateway needs at least one PG");
        VirtualGateway {
            ad,
            replicas: (0..replicas)
                .map(|_| PolicyGateway::new(ad, capacity_each))
                .collect(),
            alive: vec![true; replicas],
        }
    }

    /// Number of replicas (alive or not).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of currently alive replicas.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Deterministic replica choice for a handle: hash-striped over the
    /// alive replicas (so the same handle always lands on the same PG
    /// while the alive-set is stable).
    fn pick(&self, handle: HandleId) -> Option<usize> {
        let alive: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.alive[i])
            .collect();
        if alive.is_empty() {
            return None;
        }
        // Cheap splittable hash of the handle id.
        let h = handle.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Some(alive[(h % alive.len() as u64) as usize])
    }

    /// Validates a setup at the replica responsible for its handle.
    pub fn validate_setup(
        &mut self,
        policy: &TransitPolicy,
        setup: &SetupPacket,
    ) -> Result<(), SetupError> {
        let Some(i) = self.pick(setup.handle) else {
            // Whole virtual gateway down: the AD is unreachable as
            // transit; report as a policy-level refusal.
            return Err(SetupError::PolicyDenied { ad: self.ad });
        };
        self.replicas[i].validate_setup(policy, setup)
    }

    /// Forwards a data packet via the replica holding its handle.
    pub fn forward_data(
        &mut self,
        pkt: &DataPacket,
        arrived_from: AdId,
    ) -> Result<AdId, DataError> {
        let Some(i) = self.pick(pkt.handle) else {
            return Err(DataError::UnknownHandle { at: self.ad });
        };
        self.replicas[i].forward_data(pkt, arrived_from)
    }

    /// Fails one replica: its cached handles are lost. Subsequent packets
    /// for those handles re-stripe to surviving replicas, miss, and force
    /// a re-setup — the reliability model of the paper's footnote.
    pub fn fail_replica(&mut self, i: usize) {
        self.alive[i] = false;
        self.replicas[i].crash();
    }

    /// Restores a failed replica (empty-cached).
    pub fn restore_replica(&mut self, i: usize) {
        self.alive[i] = true;
        self.replicas[i].restart();
    }

    /// Crashes the whole virtual gateway (every replica at once): the AD
    /// drops out of the data plane until [`VirtualGateway::restart`].
    pub fn crash(&mut self) {
        for i in 0..self.replicas.len() {
            self.fail_replica(i);
        }
    }

    /// Restarts every replica cold.
    pub fn restart(&mut self) {
        for i in 0..self.replicas.len() {
            self.restore_replica(i);
        }
    }

    /// Total cached handles across replicas.
    pub fn cached_handles(&self) -> usize {
        self.replicas.iter().map(|r| r.cached_handles()).sum()
    }

    /// Handles held per replica — the load-sharing measure.
    pub fn load(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.cached_handles()).collect()
    }

    /// Aggregated statistics over replicas.
    pub fn stats(&self) -> GatewayStats {
        let mut agg = GatewayStats::default();
        for r in &self.replicas {
            agg.setups_ok += r.stats.setups_ok;
            agg.setups_rejected += r.stats.setups_rejected;
            agg.data_forwarded += r.stats.data_forwarded;
            agg.data_dropped += r.stats.data_dropped;
            agg.stale_forwards += r.stats.stale_forwards;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::FlowSpec;

    fn setup(handle: u64) -> SetupPacket {
        SetupPacket {
            flow: FlowSpec::best_effort(AdId(0), AdId(2)),
            route: vec![AdId(0), AdId(1), AdId(2)],
            claimed_pts: vec![None],
            handle: HandleId(handle),
        }
    }

    fn pkt(handle: u64) -> DataPacket {
        DataPacket {
            handle: HandleId(handle),
            src: AdId(0),
        }
    }

    #[test]
    fn stripes_handles_across_replicas() {
        let mut vg = VirtualGateway::new(AdId(1), 3, 1024);
        let policy = TransitPolicy::permit_all(AdId(1));
        for h in 0..90 {
            vg.validate_setup(&policy, &setup(h)).unwrap();
        }
        let load = vg.load();
        assert_eq!(load.iter().sum::<usize>(), 90);
        assert!(
            load.iter().all(|&l| l > 10),
            "unbalanced striping: {load:?}"
        );
        assert_eq!(vg.stats().setups_ok, 90);
        assert_eq!(vg.replica_count(), 3);
    }

    #[test]
    fn forwarding_reaches_the_striped_replica() {
        let mut vg = VirtualGateway::new(AdId(1), 4, 1024);
        let policy = TransitPolicy::permit_all(AdId(1));
        for h in 0..20 {
            vg.validate_setup(&policy, &setup(h)).unwrap();
        }
        for h in 0..20 {
            assert_eq!(vg.forward_data(&pkt(h), AdId(0)).unwrap(), AdId(2));
        }
        assert_eq!(vg.stats().data_forwarded, 20);
    }

    #[test]
    fn replica_failure_loses_only_its_handles() {
        let mut vg = VirtualGateway::new(AdId(1), 2, 1024);
        let policy = TransitPolicy::permit_all(AdId(1));
        for h in 0..40 {
            vg.validate_setup(&policy, &setup(h)).unwrap();
        }
        let before = vg.load();
        vg.fail_replica(0);
        assert_eq!(vg.alive_count(), 1);
        // Handles that lived on replica 1 keep working …
        let mut survivors = 0;
        let mut lost = 0;
        for h in 0..40 {
            match vg.forward_data(&pkt(h), AdId(0)) {
                Ok(_) => survivors += 1,
                Err(DataError::UnknownHandle { .. }) => lost += 1,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(survivors, before[1]);
        assert_eq!(lost, before[0]);
        // … and a lost handle can be re-set-up on the survivor.
        vg.validate_setup(&policy, &setup(1000)).unwrap();
        assert_eq!(vg.forward_data(&pkt(1000), AdId(0)).unwrap(), AdId(2));
    }

    #[test]
    fn restored_replica_rejoins_empty() {
        let mut vg = VirtualGateway::new(AdId(1), 2, 1024);
        let policy = TransitPolicy::permit_all(AdId(1));
        vg.fail_replica(1);
        for h in 0..10 {
            vg.validate_setup(&policy, &setup(h)).unwrap();
        }
        vg.restore_replica(1);
        assert_eq!(vg.alive_count(), 2);
        // Handles that now stripe to the restored (empty) replica miss.
        let mut misses = 0;
        for h in 0..10 {
            if vg.forward_data(&pkt(h), AdId(0)).is_err() {
                misses += 1;
            }
        }
        assert!(misses > 0, "restored replica should start cold");
    }

    #[test]
    fn all_replicas_down_refuses_setup() {
        let mut vg = VirtualGateway::new(AdId(1), 2, 8);
        vg.fail_replica(0);
        vg.fail_replica(1);
        let policy = TransitPolicy::permit_all(AdId(1));
        assert_eq!(
            vg.validate_setup(&policy, &setup(1)),
            Err(SetupError::PolicyDenied { ad: AdId(1) })
        );
        assert!(matches!(
            vg.forward_data(&pkt(1), AdId(0)),
            Err(DataError::UnknownHandle { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one PG")]
    fn zero_replicas_rejected() {
        VirtualGateway::new(AdId(1), 0, 8);
    }
}
