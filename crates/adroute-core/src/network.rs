//! [`OrwgNetwork`]: the assembled ORWG data plane — Route Servers, Policy
//! Gateways, and the setup/handle forwarding machinery — runnable against
//! a (converged) topology-and-policy view.

use std::collections::HashMap;

use adroute_policy::{FlowSpec, PolicyDb, TransitPolicy};
use adroute_sim::{Engine, EventId, EventRecord, Obs, Profiler, SimTime, DATA_STREAM_ID_BASE};
use adroute_topology::{AdId, LinkId, TopoDelta, Topology};

use crate::dataplane::{DataPacket, HandleId, SetupPacket};
use crate::gateway::{DataError, PolicyGateway, SetupError};
use crate::overload::{
    AdmissionConfig, AdmissionController, AdmissionVerdict, BrownoutRung, PendingOpen,
    ServeOutcome, ShardConfig,
};
use crate::router::OrwgProtocol;
use crate::synthesis::{PolicyRoute, RouteServer, Strategy, SweepStats, SynthStats, ViewDelta};

/// What one rung's synthesis produced for one queued open — shared by
/// the monolithic and batched serve paths.
enum Synth {
    Route(PolicyRoute, Vec<PolicyRoute>),
    Miss,
    NoRoute,
}

/// How Route Server views track topology and policy events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViewMaintenance {
    /// Apply each event as a [`ViewDelta`] in place, invalidating only the
    /// stored routes that depend on the changed element. A server whose
    /// view cannot absorb a delta (its structure predates the link) falls
    /// back to a full view install, individually.
    Incremental,
    /// Clone the full topology and policy database into every server and
    /// flush all derived state — the original behavior, retained as the
    /// correctness oracle and as E7's cost baseline.
    Flush,
}

/// Why opening a policy route failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenError {
    /// The source's Route Server found no legal route in its view.
    NoRoute,
    /// A link on the synthesized route is physically down (stale view).
    LinkDown {
        /// Upstream endpoint of the dead link.
        a: AdId,
        /// Downstream endpoint.
        b: AdId,
    },
    /// A Policy Gateway refused the setup.
    Rejected(SetupError),
    /// Every setup transmission (original plus all retransmits) was lost;
    /// the source's retry budget ran out.
    SetupTimeout,
}

/// Why sending on an established route failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendError {
    /// The handle was never opened (or was torn down) at the source.
    UnknownFlow,
    /// A link on the route is physically down.
    LinkDown {
        /// Upstream endpoint of the dead link.
        a: AdId,
        /// Downstream endpoint.
        b: AdId,
    },
    /// A gateway dropped the packet (evicted handle, failed validation).
    Dropped(DataError),
}

/// Result of a successful route setup.
#[derive(Clone, Debug)]
pub struct SetupOutcome {
    /// The allocated handle.
    pub handle: HandleId,
    /// The validated route.
    pub route: Vec<AdId>,
    /// Total header bytes transmitted (setup header × hops).
    pub header_bytes: usize,
    /// Policy-gateway validations performed.
    pub validations: usize,
    /// End-to-end setup latency over the route's link delays, µs.
    pub latency_us: u64,
}

/// Result of a successful data transmission.
#[derive(Clone, Copy, Debug)]
pub struct DataOutcome {
    /// Hops traversed.
    pub hops: usize,
    /// Total header bytes transmitted (per-hop header × hops).
    pub header_bytes: usize,
    /// End-to-end latency over the route's link delays, µs.
    pub latency_us: u64,
}

/// An established policy route at the source.
#[derive(Clone, Debug)]
pub struct OpenFlow {
    /// The traffic class.
    pub flow: FlowSpec,
    /// The validated route.
    pub route: Vec<AdId>,
    /// Spare policy routes cached at open time
    /// ([`OrwgNetwork::open_repairable`]): tried before fresh synthesis
    /// when the installed route dies.
    pub alternates: Vec<PolicyRoute>,
}

/// Source retransmission policy for setup packets: a timeout that doubles
/// on every retry (exponential backoff), up to a retry cap.
#[derive(Clone, Copy, Debug)]
pub struct SetupRetryPolicy {
    /// Retransmissions allowed after the initial transmission.
    pub max_retries: u32,
    /// Initial retransmit timeout, µs (doubles per retry).
    pub base_timeout_us: u64,
}

impl Default for SetupRetryPolicy {
    fn default() -> SetupRetryPolicy {
        SetupRetryPolicy {
            max_retries: 3,
            base_timeout_us: 2_000,
        }
    }
}

/// Outcomes of route repair after faults (cumulative per network).
#[derive(Clone, Copy, Default, Debug)]
pub struct RepairStats {
    /// Flows restored from an alternate route cached at open time.
    pub repaired_via_alternate: u64,
    /// Flows restored by a fresh resilient synthesis.
    pub repaired_via_synthesis: u64,
    /// Flows that could not be restored (no legal route survives).
    pub failures: u64,
    /// Setup packets retransmitted after a loss.
    pub setup_retransmits: u64,
}

/// The assembled ORWG network.
///
/// Ground truth (`topo`, `db`) models the physical network and each AD's
/// *actual* policy; each Route Server holds its own (possibly stale) view,
/// exactly as flooding left it.
pub struct OrwgNetwork {
    topo: Topology,
    db: PolicyDb,
    servers: Vec<RouteServer>,
    gateways: Vec<PolicyGateway>,
    next_handle: u64,
    open_flows: HashMap<HandleId, OpenFlow>,
    /// Flows whose installed route died (link failure, policy change, or
    /// gateway crash tore the handle down and notified the source); they
    /// wait here until [`OrwgNetwork::repair_pending`], each carrying the
    /// logged event that killed it (the view-invalidate of the fault), so
    /// the eventual repair chains to its cause in the span tree.
    pending_repair: Vec<(OpenFlow, Option<EventId>)>,
    /// Cumulative repair outcomes.
    pub repair_stats: RepairStats,
    setup_loss: Option<(f64, rand::rngs::SmallRng)>,
    view_maintenance: ViewMaintenance,
    /// ADs whose gateways forge setup acks: they install handles without
    /// consulting their own policy (see [`PolicyGateway::force_install`]),
    /// so setups the AD should reject sail through and policy-violating
    /// traffic flows — the ORWG byzantine misbehavior model.
    rogue_gateways: Vec<AdId>,
    /// ADs currently contained: every Route Server's selection carries
    /// them in its avoid-set, so no synthesized route transits them.
    quarantined: Vec<AdId>,
    /// Per-AD admission controllers fronting the Route Servers (the
    /// overload layer's bounded open queues).
    admission: Vec<AdmissionController>,
    /// ADs whose Route Server is currently crashed: offers to them are
    /// shed until standby takeover.
    rs_down: Vec<AdId>,
    /// Last warm-standby cache snapshot per AD (indexed by AD), replayed
    /// into the server at failover.
    standby: Vec<Vec<(FlowSpec, Option<PolicyRoute>)>>,
    /// Data-plane observability: typed events (route-setup open/ack/
    /// repair, view invalidation/delta application) plus metrics — the
    /// `"setup_latency_us"` and `"invalidation_fanout"` histograms. The
    /// event log is off until [`OrwgNetwork::enable_obs`]; the metrics are
    /// always live.
    pub obs: Obs,
    /// The data-plane self-profiler (disabled by default, see
    /// [`OrwgNetwork::enable_prof`]): spans around serve slots and
    /// refills plus a deterministic work ledger fed from synthesis
    /// counters. Merged with an engine's profiler for whole-run reports.
    pub prof: Profiler,
    /// Timestamp stamped on data-plane events: the last control-plane
    /// time adopted from an engine (see [`OrwgNetwork::refresh_from_engine`]
    /// and [`OrwgNetwork::from_engine`]), `SimTime::ZERO` otherwise.
    clock: SimTime,
}

impl OrwgNetwork {
    /// Default Route-Server strategy.
    pub const DEFAULT_STRATEGY: Strategy = Strategy::Cached { capacity: 1024 };
    /// Default Policy-Gateway handle-cache capacity.
    pub const DEFAULT_HANDLE_CAPACITY: usize = 4096;

    /// Builds a network in which every Route Server has a perfect,
    /// identical view — the state flooding reaches at quiescence. The
    /// standard entry point for experiments and examples.
    pub fn converged(topo: &Topology, db: &PolicyDb) -> OrwgNetwork {
        OrwgNetwork::converged_with(
            topo,
            db,
            Self::DEFAULT_STRATEGY,
            Self::DEFAULT_HANDLE_CAPACITY,
        )
    }

    /// [`OrwgNetwork::converged`] with explicit strategy and handle-cache
    /// capacity.
    pub fn converged_with(
        topo: &Topology,
        db: &PolicyDb,
        strategy: Strategy,
        handle_capacity: usize,
    ) -> OrwgNetwork {
        let servers = topo
            .ad_ids()
            .map(|ad| RouteServer::new(ad, topo.clone(), db.clone(), strategy.clone()))
            .collect();
        let gateways = topo
            .ad_ids()
            .map(|ad| PolicyGateway::new(ad, handle_capacity))
            .collect();
        let admission = topo
            .ad_ids()
            .map(|_| AdmissionController::new(AdmissionConfig::default()))
            .collect();
        let standby = topo.ad_ids().map(|_| Vec::new()).collect();
        OrwgNetwork {
            topo: topo.clone(),
            db: db.clone(),
            servers,
            gateways,
            next_handle: 1,
            open_flows: HashMap::new(),
            pending_repair: Vec::new(),
            repair_stats: RepairStats::default(),
            setup_loss: None,
            view_maintenance: ViewMaintenance::Incremental,
            rogue_gateways: Vec::new(),
            quarantined: Vec::new(),
            admission,
            rs_down: Vec::new(),
            standby,
            obs: Obs::disabled(),
            prof: Profiler::new(),
            clock: SimTime::ZERO,
        }
    }

    /// Builds the data plane from a converged control-plane engine: each
    /// AD's Route Server gets the view **its own flooded database**
    /// describes (views may legitimately differ if the engine has not
    /// quiesced).
    pub fn from_engine(
        engine: &Engine<OrwgProtocol>,
        strategy: Strategy,
        handle_capacity: usize,
    ) -> OrwgNetwork {
        let topo = engine.topo().clone();
        let db = engine.protocol().policies.clone();
        let servers = topo
            .ad_ids()
            .map(|ad| {
                let (vt, vd) = engine.router(ad).flooder.db.view();
                RouteServer::new(ad, vt, vd, strategy.clone())
            })
            .collect();
        let gateways = topo
            .ad_ids()
            .map(|ad| PolicyGateway::new(ad, handle_capacity))
            .collect();
        let admission = topo
            .ad_ids()
            .map(|_| AdmissionController::new(AdmissionConfig::default()))
            .collect();
        let standby = topo.ad_ids().map(|_| Vec::new()).collect();
        OrwgNetwork {
            topo,
            db,
            servers,
            gateways,
            next_handle: 1,
            open_flows: HashMap::new(),
            pending_repair: Vec::new(),
            repair_stats: RepairStats::default(),
            setup_loss: None,
            view_maintenance: ViewMaintenance::Incremental,
            rogue_gateways: Vec::new(),
            quarantined: Vec::new(),
            admission,
            rs_down: Vec::new(),
            standby,
            obs: Obs::disabled(),
            prof: Profiler::new(),
            clock: engine.now(),
        }
    }

    /// Enables the typed data-plane event log with the given ring-buffer
    /// capacity, clearing any previously retained records. Data-plane ids
    /// start at [`DATA_STREAM_ID_BASE`] so a merged export with an
    /// engine's control-plane log (whose ids start at 0) stays unique.
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs.log = adroute_sim::EventLog::with_id_base(capacity, DATA_STREAM_ID_BASE);
    }

    /// Enables the data-plane self-profiler. Adds no per-packet work:
    /// spans wrap serve slots and refill batches, and the ledger is fed
    /// from synthesis-counter deltas at slot boundaries.
    pub fn enable_prof(&mut self) {
        self.prof.enable();
    }

    /// Emits a data-plane event stamped at the network's clock, as a child
    /// of `cause`. Returns the assigned id, if the log is enabled.
    fn emit(&mut self, cause: Option<EventId>, rec: EventRecord) -> Option<EventId> {
        if self.obs.log.capacity() > 0 {
            return self.obs.record_event(self.clock, cause, rec);
        }
        None
    }

    /// Selects how Route Server views absorb subsequent events. Defaults
    /// to [`ViewMaintenance::Incremental`].
    pub fn set_view_maintenance(&mut self, mode: ViewMaintenance) {
        self.view_maintenance = mode;
    }

    /// The current view-maintenance mode.
    pub fn view_maintenance(&self) -> ViewMaintenance {
        self.view_maintenance
    }

    /// The ground-truth topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The ground-truth policy database.
    pub fn policies(&self) -> &PolicyDb {
        &self.db
    }

    /// The Route Server of `ad`.
    pub fn server(&self, ad: AdId) -> &RouteServer {
        &self.servers[ad.index()]
    }

    /// Mutable Route Server access (e.g. to set selection criteria or
    /// trigger precomputation).
    pub fn server_mut(&mut self, ad: AdId) -> &mut RouteServer {
        &mut self.servers[ad.index()]
    }

    /// The Policy Gateway of `ad`.
    pub fn gateway(&self, ad: AdId) -> &PolicyGateway {
        &self.gateways[ad.index()]
    }

    /// Synthesizes (without setting up) the policy route for `flow`, from
    /// the flow source's own Route Server.
    pub fn policy_route(&mut self, flow: &FlowSpec) -> Option<Vec<AdId>> {
        self.servers[flow.src.index()].request(flow).map(|r| r.path)
    }

    /// Synthesizes and returns the full [`PolicyRoute`] (with PT
    /// citations).
    pub fn synthesize(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.servers[flow.src.index()].request(flow)
    }

    fn check_links(route: &[AdId], topo: &Topology) -> Result<u64, (AdId, AdId)> {
        let mut latency = 0;
        for w in route.windows(2) {
            match topo.link_between(w[0], w[1]) {
                Some(l) if topo.link(l).up => latency += topo.link(l).delay_us,
                _ => return Err((w[0], w[1])),
            }
        }
        Ok(latency)
    }

    /// Walks a setup packet for an already-synthesized route through every
    /// transit AD's Policy Gateway; on success the flow is installed with
    /// the given spare routes attached.
    ///
    /// The open record is a child of `cause`; the matching ack (or nack,
    /// when a stale view sends the setup into a dead link or a refusing
    /// gateway) is a child of the open — the setup round-trip is one span.
    fn setup_along(
        &mut self,
        flow: &FlowSpec,
        route: &PolicyRoute,
        alternates: Vec<PolicyRoute>,
        cause: Option<EventId>,
    ) -> Result<SetupOutcome, OpenError> {
        let open_id = self
            .emit(
                cause,
                EventRecord::RouteSetupOpen {
                    src: flow.src,
                    dst: flow.dst,
                },
            )
            .or(cause);
        let handle = HandleId(self.next_handle);
        self.next_handle += 1;
        let setup = SetupPacket {
            flow: *flow,
            route: route.path.clone(),
            claimed_pts: route.pts.clone(),
            handle,
        };
        let latency_us = match Self::check_links(&setup.route, &self.topo) {
            Ok(latency) => latency,
            Err((a, b)) => {
                self.emit(
                    open_id,
                    EventRecord::RouteSetupNack {
                        src: flow.src,
                        dst: flow.dst,
                        reason: "link-down",
                    },
                );
                return Err(OpenError::LinkDown { a, b });
            }
        };
        let mut validations = 0;
        for i in 1..setup.route.len().saturating_sub(1) {
            let ad = setup.route[i];
            // The gateway validates against the AD's *actual* policy —
            // its own policy is always locally accurate. A rogue gateway
            // skips the policy check entirely and forges the ack.
            validations += 1;
            let verdict = if self.rogue_gateways.contains(&ad) {
                self.gateways[ad.index()].force_install(&setup)
            } else {
                self.gateways[ad.index()].validate_setup(self.db.policy(ad), &setup)
            };
            if let Err(e) = verdict {
                // Roll back handles already installed at earlier transit
                // ADs: a rejected setup must not leave partial state
                // pinning cache slots upstream of the refusal.
                for earlier in &setup.route[1..i] {
                    self.gateways[earlier.index()].teardown(handle);
                }
                self.emit(
                    open_id,
                    EventRecord::RouteSetupNack {
                        src: flow.src,
                        dst: flow.dst,
                        reason: match e {
                            SetupError::NotOnRoute => "not-on-route",
                            SetupError::PolicyDenied { .. } => "policy-denied",
                            SetupError::PtMismatch { .. } => "pt-mismatch",
                            SetupError::GatewayDown { .. } => "gateway-down",
                        },
                    },
                );
                return Err(OpenError::Rejected(e));
            }
        }
        let hops = setup.route.len() - 1;
        let header_bytes = setup.header_size() * hops;
        self.open_flows.insert(
            handle,
            OpenFlow {
                flow: *flow,
                route: setup.route.clone(),
                alternates,
            },
        );
        self.obs.metrics.record("setup_latency_us", latency_us);
        self.emit(
            open_id,
            EventRecord::RouteSetupAck {
                src: flow.src,
                dst: flow.dst,
                hops: hops as u64,
                latency_us,
            },
        );
        Ok(SetupOutcome {
            handle,
            route: setup.route,
            header_bytes,
            validations,
            latency_us,
        })
    }

    /// Opens a policy route for `flow`: synthesize at the source, then
    /// walk the setup packet through every transit AD's Policy Gateway.
    pub fn open(&mut self, flow: &FlowSpec) -> Result<SetupOutcome, OpenError> {
        self.open_caused(flow, None)
    }

    fn open_caused(
        &mut self,
        flow: &FlowSpec,
        cause: Option<EventId>,
    ) -> Result<SetupOutcome, OpenError> {
        let route = self.servers[flow.src.index()]
            .request(flow)
            .ok_or(OpenError::NoRoute)?;
        self.setup_along(flow, &route, Vec::new(), cause)
    }

    /// [`OrwgNetwork::open`], but the source also synthesizes up to two
    /// spare routes and caches them with the flow. When a fault later
    /// tears the installed route down, [`OrwgNetwork::repair_pending`]
    /// tries the spares before paying for a fresh synthesis — the paper's
    /// "precompute alternate routes" resilience option.
    pub fn open_repairable(&mut self, flow: &FlowSpec) -> Result<SetupOutcome, OpenError> {
        self.open_repairable_caused(flow, None)
    }

    fn open_repairable_caused(
        &mut self,
        flow: &FlowSpec,
        cause: Option<EventId>,
    ) -> Result<SetupOutcome, OpenError> {
        let mut routes = self.servers[flow.src.index()].alternatives(flow, 3);
        if routes.is_empty() {
            return Err(OpenError::NoRoute);
        }
        let primary = routes.remove(0);
        self.setup_along(flow, &primary, routes, cause)
    }

    /// Enables (or disables, with `prob = 0.0`) seeded random loss of
    /// setup transmissions, consumed by [`OrwgNetwork::open_with_retries`].
    pub fn set_setup_loss(&mut self, prob: f64, seed: u64) {
        use rand::SeedableRng;
        self.setup_loss = (prob > 0.0).then(|| (prob, rand::rngs::SmallRng::seed_from_u64(seed)));
    }

    /// Opens a repairable route under the setup-loss model: each
    /// transmission may be lost, in which case the source times out
    /// (doubling the timeout each retry — exponential backoff, charged to
    /// the outcome's latency) and retransmits, up to the policy's cap.
    pub fn open_with_retries(
        &mut self,
        flow: &FlowSpec,
        rp: &SetupRetryPolicy,
    ) -> Result<SetupOutcome, OpenError> {
        use rand::Rng;
        let mut timeout_penalty_us = 0u64;
        // Each retransmit chains to the one whose timeout triggered it, so
        // a lossy open renders as retransmit → retransmit → open → ack.
        let mut last_rexmit: Option<EventId> = None;
        for attempt in 0..=rp.max_retries {
            let lost = match &mut self.setup_loss {
                Some((prob, rng)) => rng.gen_bool(*prob),
                None => false,
            };
            if lost {
                // Detected only by timeout; back off exponentially.
                timeout_penalty_us += rp.base_timeout_us << attempt;
                if attempt < rp.max_retries {
                    self.repair_stats.setup_retransmits += 1;
                    last_rexmit = self
                        .emit(
                            last_rexmit,
                            EventRecord::RouteSetupRetransmit {
                                src: flow.src,
                                dst: flow.dst,
                                attempt: attempt as u64 + 1,
                            },
                        )
                        .or(last_rexmit);
                }
                continue;
            }
            return self.open_repairable_caused(flow, last_rexmit).map(|mut s| {
                s.latency_us += timeout_penalty_us;
                s
            });
        }
        Err(OpenError::SetupTimeout)
    }

    /// Opens a policy route, retrying around rejections.
    ///
    /// When a Policy Gateway refuses a setup (its actual policy is newer
    /// than the source's flooded view) or a link on the synthesized route
    /// is down, the source adds the offender to its (private) avoid
    /// criteria and re-synthesizes — up to `max_retries` times. The
    /// source's prior selection criteria are restored afterwards.
    pub fn open_resilient(
        &mut self,
        flow: &FlowSpec,
        max_retries: usize,
    ) -> Result<SetupOutcome, OpenError> {
        self.open_resilient_caused(flow, max_retries, None)
    }

    fn open_resilient_caused(
        &mut self,
        flow: &FlowSpec,
        max_retries: usize,
        cause: Option<EventId>,
    ) -> Result<SetupOutcome, OpenError> {
        let saved = self.servers[flow.src.index()].selection().clone();
        let mut extra: Vec<AdId> = Vec::new();
        let mut attempt = 0;
        let result = loop {
            match self.open_caused(flow, cause) {
                Ok(s) => break Ok(s),
                Err(e) if attempt >= max_retries => break Err(e),
                Err(OpenError::Rejected(
                    SetupError::PolicyDenied { ad }
                    | SetupError::PtMismatch { ad }
                    | SetupError::GatewayDown { ad },
                )) => {
                    extra.push(ad);
                }
                Err(OpenError::LinkDown { a, b }) => {
                    // Avoid the downstream endpoint (never the endpoints
                    // of the flow itself).
                    let pick = if b != flow.src && b != flow.dst { b } else { a };
                    if pick == flow.src || pick == flow.dst {
                        break Err(OpenError::LinkDown { a, b });
                    }
                    extra.push(pick);
                }
                Err(e) => break Err(e),
            }
            attempt += 1;
            let mut sel = saved.clone();
            // Widen the saved avoid set — replacing it would silently
            // loosen the source's standing criteria mid-retry.
            sel.avoid = saved
                .avoid
                .union(&adroute_policy::AdSet::only(extra.iter().copied()));
            self.servers[flow.src.index()].set_selection(sel);
        };
        self.servers[flow.src.index()].set_selection(saved);
        result
    }

    /// Sends one data packet on an established route using the handle.
    pub fn send(&mut self, handle: HandleId) -> Result<DataOutcome, SendError> {
        let of = self
            .open_flows
            .get(&handle)
            .ok_or(SendError::UnknownFlow)?
            .clone();
        let latency_us = Self::check_links(&of.route, &self.topo)
            .map_err(|(a, b)| SendError::LinkDown { a, b })?;
        let pkt = DataPacket {
            handle,
            src: of.flow.src,
        };
        for i in 1..of.route.len().saturating_sub(1) {
            let ad = of.route[i];
            let next = self.gateways[ad.index()]
                .forward_data(&pkt, of.route[i - 1])
                .map_err(SendError::Dropped)?;
            debug_assert_eq!(next, of.route[i + 1]);
        }
        let hops = of.route.len() - 1;
        Ok(DataOutcome {
            hops,
            header_bytes: DataPacket::HEADER_SIZE * hops,
            latency_us,
        })
    }

    /// The ablation data plane: every packet carries the full source
    /// route (no setup, no handles). Gateways fully re-validate policy for
    /// each packet — the "overhead of carrying and processing complete
    /// information for each packet is prohibitive" alternative.
    pub fn send_source_routed(&mut self, flow: &FlowSpec) -> Result<DataOutcome, OpenError> {
        let route = self.servers[flow.src.index()]
            .request(flow)
            .ok_or(OpenError::NoRoute)?;
        let latency_us = Self::check_links(&route.path, &self.topo)
            .map_err(|(a, b)| OpenError::LinkDown { a, b })?;
        for i in 1..route.path.len().saturating_sub(1) {
            let ad = route.path[i];
            let permit =
                self.db
                    .policy(ad)
                    .evaluate(flow, Some(route.path[i - 1]), Some(route.path[i + 1]));
            if permit.is_none() {
                return Err(OpenError::Rejected(SetupError::PolicyDenied { ad }));
            }
        }
        let hops = route.path.len() - 1;
        Ok(DataOutcome {
            hops,
            header_bytes: DataPacket::source_route_header_size(route.path.len()) * hops,
            latency_us,
        })
    }

    /// Tears down an open flow at the source and every gateway.
    pub fn teardown(&mut self, handle: HandleId) {
        if let Some(of) = self.open_flows.remove(&handle) {
            for ad in &of.route[1..of.route.len().saturating_sub(1)] {
                self.gateways[ad.index()].teardown(handle);
            }
        }
    }

    /// Removes every open flow `doomed` matches, queueing each for repair
    /// (the teardown notification every on-path gateway sends the source
    /// when it flushes the flow's handle).
    fn teardown_and_notify(&mut self, doomed: impl Fn(&OpenFlow) -> bool) {
        let mut dead: Vec<HandleId> = self
            .open_flows
            .iter()
            .filter(|(_, of)| doomed(of))
            .map(|(h, _)| *h)
            .collect();
        // HashMap iteration order varies across processes; the repair
        // queue (and hence trace exports) must not.
        dead.sort();
        for h in dead {
            if let Some(of) = self.open_flows.remove(&h) {
                // The fault's own record does not exist yet (it is
                // emitted after the teardowns it implies); the caller
                // backfills via `set_pending_cause_from`.
                self.pending_repair.push((of, None));
            }
        }
    }

    /// Attributes every repair queued at index `start` onward to `cause`
    /// — the event of the fault that tore those flows down.
    fn set_pending_cause_from(&mut self, start: usize, cause: Option<EventId>) {
        if cause.is_none() {
            return;
        }
        for (_, c) in &mut self.pending_repair[start..] {
            if c.is_none() {
                *c = cause;
            }
        }
    }

    /// Propagates one event to every Route Server's view (modeling
    /// re-flooding at quiescence), honoring the view-maintenance mode.
    /// Returns the id of the view-delta record, the causal root of the
    /// reflood span.
    fn broadcast_delta(&mut self, delta: &ViewDelta) -> Option<EventId> {
        if self.view_maintenance == ViewMaintenance::Flush {
            let topo = self.topo.clone();
            let db = self.db.clone();
            for s in &mut self.servers {
                s.update_view(topo.clone(), db.clone());
            }
            let n = self.servers.len() as u64;
            self.obs.metrics.add("view_full_installs", n);
            return self.emit(
                None,
                EventRecord::ViewDeltaApply {
                    mode: "flush",
                    fallbacks: n,
                },
            );
        }
        let mut fallback = Vec::new();
        for (i, s) in self.servers.iter_mut().enumerate() {
            if !s.apply_delta(delta) {
                fallback.push(i);
            }
        }
        let fallbacks = fallback.len() as u64;
        for i in fallback {
            self.servers[i].update_view(self.topo.clone(), self.db.clone());
        }
        self.obs.metrics.add("view_full_installs", fallbacks);
        self.emit(
            None,
            EventRecord::ViewDeltaApply {
                mode: "incremental",
                fallbacks,
            },
        )
    }

    /// [`OrwgNetwork::broadcast_delta`] plus fan-out observation: the
    /// population-wide count of cache entries the delta invalidated feeds
    /// the `"invalidation_fanout"` histogram and a `view-invalidate`
    /// event keyed by the changed element's endpoints — a child of the
    /// view-delta record. Returns the invalidate id (falling back to the
    /// delta id) so teardown-triggered repairs can chain to it.
    fn reflood(&mut self, a: AdId, b: AdId, delta: &ViewDelta) -> Option<EventId> {
        let before = self.aggregate_synth_stats().entries_invalidated;
        let delta_id = self.broadcast_delta(delta);
        let entries = self.aggregate_synth_stats().entries_invalidated - before;
        self.obs.metrics.record("invalidation_fanout", entries);
        self.emit(delta_id, EventRecord::ViewInvalidate { a, b, entries })
            .or(delta_id)
    }

    /// Fails a link in ground truth: flushes affected gateway handles,
    /// queues the torn-down flows for source-side repair, and (modeling
    /// re-flooding at quiescence) updates every Route Server's view.
    pub fn fail_link(&mut self, link: LinkId) {
        self.topo.set_link_up(link, false);
        let l = self.topo.link(link);
        let (a, b) = (l.a, l.b);
        self.gateways[a.index()].invalidate(|e| e.prev == b || e.next == b);
        self.gateways[b.index()].invalidate(|e| e.prev == a || e.next == a);
        let queued = self.pending_repair.len();
        self.teardown_and_notify(|of| {
            of.route
                .windows(2)
                .any(|w| w.contains(&a) && w.contains(&b))
        });
        let inv_id = self.reflood(
            a,
            b,
            &ViewDelta::Topo(TopoDelta::LinkState { a, b, up: false }),
        );
        self.set_pending_cause_from(queued, inv_id);
    }

    /// Restores a failed link in ground truth and refloods the change.
    /// Nothing tears down — a link coming back can only add routes — but
    /// servers must invalidate stored routes the recovered link may now
    /// undercut.
    pub fn restore_link(&mut self, link: LinkId) {
        self.topo.set_link_up(link, true);
        let l = self.topo.link(link);
        let (a, b) = (l.a, l.b);
        self.reflood(
            a,
            b,
            &ViewDelta::Topo(TopoDelta::LinkState { a, b, up: true }),
        );
    }

    /// Changes a link's metric in ground truth and refloods it. Installed
    /// routes keep forwarding (handles do not re-check cost); stored
    /// synthesis results are invalidated as the delta's direction demands.
    pub fn change_metric(&mut self, link: LinkId, metric: u32) {
        self.topo.set_metric(link, metric);
        let l = self.topo.link(link);
        let (a, b) = (l.a, l.b);
        self.reflood(a, b, &ViewDelta::Topo(TopoDelta::Metric { a, b, metric }));
    }

    /// Changes one AD's policy: the AD's gateway flushes all cached
    /// handles, the torn-down flows queue for repair, and (modeling
    /// re-flooding) every Route Server's view is refreshed. The staleness
    /// cost is E7's policy-change column.
    pub fn change_policy(&mut self, policy: TransitPolicy) {
        let ad = policy.ad;
        self.db.set_policy(policy.clone());
        self.gateways[ad.index()].invalidate(|_| true);
        let queued = self.pending_repair.len();
        self.teardown_and_notify(|of| of.route[1..of.route.len().saturating_sub(1)].contains(&ad));
        let inv_id = self.reflood(ad, ad, &ViewDelta::Policy(policy));
        self.set_pending_cause_from(queued, inv_id);
    }

    /// Crashes `ad`'s Policy Gateway: its handle cache is lost, flows
    /// transiting the AD are torn down and queued for repair, and setups
    /// through the AD are refused until [`OrwgNetwork::restore_gateway`].
    /// Route Servers' views are *not* refreshed — sources discover the
    /// crash through rejected setups, exactly like stale policy.
    pub fn crash_gateway(&mut self, ad: AdId) {
        self.gateways[ad.index()].crash();
        self.teardown_and_notify(|of| of.route[1..of.route.len().saturating_sub(1)].contains(&ad));
    }

    /// Restarts a crashed gateway cold (empty handle cache, new epoch).
    pub fn restore_gateway(&mut self, ad: AdId) {
        self.gateways[ad.index()].restart();
    }

    /// Installs `policy` as its AD's *actual* policy **without**
    /// reflooding — every Route Server keeps the stale published view.
    /// This is misbehavior injection, not management: it models an AD
    /// whose enforced policy diverges from what it advertises. Combined
    /// with [`OrwgNetwork::set_rogue_gateways`] it is the ORWG analogue
    /// of a route leak — the AD carries (and acks) traffic its real
    /// policy forbids, detectable only on the forwarding plane.
    pub fn set_covert_policy(&mut self, policy: TransitPolicy) {
        self.db.set_policy(policy);
    }

    /// Marks each given AD's gateway as rogue: it forges setup acks
    /// (installing handles without a policy check) until quarantined or
    /// unmarked. Replaces any previous rogue set.
    pub fn set_rogue_gateways(&mut self, ads: impl IntoIterator<Item = AdId>) {
        self.rogue_gateways = ads.into_iter().collect();
        self.rogue_gateways.sort();
        self.rogue_gateways.dedup();
    }

    /// ADs currently marked rogue.
    pub fn rogue_gateways(&self) -> &[AdId] {
        &self.rogue_gateways
    }

    /// Contains a confirmed-misbehaving AD: every Route Server adds `ad`
    /// to its avoid criteria (no future synthesis will transit it), and
    /// every open flow currently transiting `ad` is torn down and queued
    /// for repair, chained to `cause` (normally the quarantine-enter
    /// event) so the repair span renders under the containment decision.
    /// Returns the number of flows torn down — the immediate collateral
    /// of the quarantine. Follow with [`OrwgNetwork::repair_pending`] to
    /// reconverge the torn flows onto policy-legal alternates.
    pub fn quarantine_ad(&mut self, ad: AdId, cause: Option<EventId>) -> usize {
        if !self.quarantined.contains(&ad) {
            self.quarantined.push(ad);
            self.quarantined.sort();
        }
        let add = adroute_policy::AdSet::only([ad]);
        for s in &mut self.servers {
            let mut sel = s.selection().clone();
            sel.avoid = sel.avoid.union(&add);
            s.set_selection(sel);
        }
        let queued = self.pending_repair.len();
        self.teardown_and_notify(|of| of.route[1..of.route.len().saturating_sub(1)].contains(&ad));
        let torn = self.pending_repair.len() - queued;
        self.set_pending_cause_from(queued, cause);
        // Cached spare routes through the quarantined AD must go too:
        // repair replays alternates through a raw setup walk, and a rogue
        // gateway would forge the ack and reinstall the violating path.
        let transits = |r: &PolicyRoute| r.path[1..r.path.len().saturating_sub(1)].contains(&ad);
        for (of, _) in &mut self.pending_repair {
            of.alternates.retain(|r| !transits(r));
        }
        for of in self.open_flows.values_mut() {
            of.alternates.retain(|r| !transits(r));
        }
        torn
    }

    /// Releases `ad` from quarantine: every Route Server's avoid-set drops
    /// it, so synthesis may transit it again. Does not unmark a rogue
    /// gateway — a lifted-but-still-rogue AD will simply be re-detected.
    pub fn lift_quarantine(&mut self, ad: AdId) {
        self.quarantined.retain(|&q| q != ad);
        for s in &mut self.servers {
            let mut sel = s.selection().clone();
            sel.avoid = sel.avoid.subtract(&[ad]);
            s.set_selection(sel);
        }
    }

    /// ADs currently under quarantine.
    pub fn quarantined(&self) -> &[AdId] {
        &self.quarantined
    }

    /// Flows currently awaiting repair.
    pub fn pending_repair_count(&self) -> usize {
        self.pending_repair.len()
    }

    /// Sets the data-plane clock — the timestamp stamped on every emitted
    /// event. External drivers (the stress harness) advance it as their
    /// own event loop progresses.
    pub fn set_clock(&mut self, t: SimTime) {
        self.clock = t;
    }

    /// The current data-plane clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Installs `cfg` on every AD's admission controller. Queued opens
    /// and counters are reset — call before a run, not during one.
    pub fn set_admission(&mut self, cfg: AdmissionConfig) {
        for a in &mut self.admission {
            *a = AdmissionController::new(cfg);
        }
    }

    /// The admission controller fronting `ad`'s Route Server.
    pub fn admission(&self, ad: AdId) -> &AdmissionController {
        &self.admission[ad.index()]
    }

    /// ADs whose Route Server is currently crashed.
    pub fn rs_down(&self) -> &[AdId] {
        &self.rs_down
    }

    /// Offers an open to the source AD's admission controller (stamped at
    /// the network clock). A crashed Route Server or a full queue sheds
    /// the open with an explicit NACK carrying a retry-after hint — never
    /// a silent drop; otherwise the open queues for
    /// [`OrwgNetwork::serve_next`], and the emitted setup-defer record
    /// becomes its causal parent so the eventual admit chains to it.
    pub fn offer_open(&mut self, open: PendingOpen) -> AdmissionVerdict {
        let (src, dst) = (open.flow.src, open.flow.dst);
        self.obs.metrics.add("opens_offered", 1);
        if self.rs_down.contains(&src) {
            let retry_after_us = self.admission[src.index()].config().retry_after_us;
            self.obs.metrics.add("opens_shed", 1);
            let event = self.emit(
                open.cause,
                EventRecord::SetupShed {
                    src,
                    dst,
                    retry_after_us,
                    depth: 0,
                },
            );
            return AdmissionVerdict::Shed {
                open,
                retry_after_us,
                event,
            };
        }
        match self.admission[src.index()].offer(open) {
            Ok(depth) => {
                self.obs.metrics.add("opens_queued", 1);
                self.obs.metrics.record("open_queue_depth", depth as u64);
                let event = self.emit(
                    open.cause,
                    EventRecord::SetupDefer {
                        src,
                        dst,
                        depth: depth as u64,
                    },
                );
                if event.is_some() {
                    self.admission[src.index()].set_back_cause(event);
                }
                AdmissionVerdict::Queued { depth, event }
            }
            Err(retry_after_us) => {
                self.obs.metrics.add("opens_shed", 1);
                let depth = self.admission[src.index()].depth() as u64;
                let event = self.emit(
                    open.cause,
                    EventRecord::SetupShed {
                        src,
                        dst,
                        retry_after_us,
                        depth,
                    },
                );
                AdmissionVerdict::Shed {
                    open,
                    retry_after_us,
                    event,
                }
            }
        }
    }

    /// Serves the head of `ad`'s admission queue on the rung the brownout
    /// ladder currently selects. An open whose deadline passed while it
    /// queued is cancelled unserved (no synthesis is paid for); a stored-
    /// rung miss sheds mid-queue rather than searching. Every rung's
    /// result honors the source's selection criteria — quarantine
    /// avoid-sets hold even in degraded service, with an explicit
    /// re-check on stored entries as belt and braces.
    pub fn serve_next(&mut self, ad: AdId) -> Option<ServeOutcome> {
        let now = self.clock;
        let rung = self.admission[ad.index()].rung(now);
        let open = self.admission[ad.index()].pop()?;
        // The depth a mid-queue shed NACK would report: nothing between
        // here and the NACK touches the queue, so capturing it at the
        // pop is exact (and lets the batched path reuse this code).
        let depth = self.admission[ad.index()].depth() as u64;
        if now >= open.deadline {
            return Some(self.emit_expired(open));
        }
        let waited = now.as_us().saturating_sub(open.offered_at.as_us());
        self.obs.metrics.record("setup_wait_us", waited);
        let synth = self.synth_on_rung(ad, &open.flow, rung);
        Some(self.commit_outcome(ad, open, rung, waited, depth, synth))
    }

    /// Cancels an open whose deadline passed while it queued, emitting
    /// the abandon record. No synthesis is paid for.
    fn emit_expired(&mut self, open: PendingOpen) -> ServeOutcome {
        let (src, dst) = (open.flow.src, open.flow.dst);
        self.obs.metrics.add("opens_expired", 1);
        self.obs.metrics.record(
            "shed_latency_us",
            self.clock.as_us().saturating_sub(open.arrival.as_us()),
        );
        self.emit(
            open.cause,
            EventRecord::SetupAbandon {
                src,
                dst,
                attempts: u64::from(open.attempt) + 1,
            },
        );
        ServeOutcome::Expired { open }
    }

    /// One rung's synthesis for one flow — the per-open body shared by
    /// [`OrwgNetwork::serve_next`] and [`OrwgNetwork::serve_batch`].
    fn synth_on_rung(&mut self, ad: AdId, flow: &FlowSpec, rung: BrownoutRung) -> Synth {
        match rung {
            BrownoutRung::Full => {
                let mut alts = self.servers[ad.index()].alternatives(flow, 3);
                if alts.is_empty() {
                    Synth::NoRoute
                } else {
                    let primary = alts.remove(0);
                    Synth::Route(primary, alts)
                }
            }
            BrownoutRung::Cached => match self.servers[ad.index()].request(flow) {
                Some(r) => Synth::Route(r, Vec::new()),
                None => Synth::NoRoute,
            },
            BrownoutRung::Stored => match self.servers[ad.index()].stored_route(flow) {
                Some(Some(r)) => {
                    let sel = self.servers[ad.index()].selection();
                    if sel.accepts(&r.path, r.cost) {
                        Synth::Route(r, Vec::new())
                    } else {
                        // A stored entry that predates a quarantine
                        // widening must never be served; treat as a miss.
                        Synth::Miss
                    }
                }
                Some(None) => Synth::NoRoute,
                None => Synth::Miss,
            },
        }
    }

    /// Turns a synthesis result into the open's outcome: metrics, the
    /// admit/shed event, and the setup walk for a served route. `depth`
    /// is the queue depth captured when the open was popped.
    fn commit_outcome(
        &mut self,
        ad: AdId,
        open: PendingOpen,
        rung: BrownoutRung,
        waited: u64,
        depth: u64,
        synth: Synth,
    ) -> ServeOutcome {
        let (src, dst) = (open.flow.src, open.flow.dst);
        let flow = open.flow;
        match synth {
            Synth::Miss => {
                let retry_after_us = self.admission[ad.index()].config().retry_after_us;
                self.obs.metrics.add("opens_shed", 1);
                let event = self.emit(
                    open.cause,
                    EventRecord::SetupShed {
                        src,
                        dst,
                        retry_after_us,
                        depth,
                    },
                );
                ServeOutcome::Shed {
                    open,
                    retry_after_us,
                    event,
                }
            }
            Synth::NoRoute => {
                self.obs.metrics.add("opens_no_route", 1);
                ServeOutcome::NoRoute { open, rung }
            }
            Synth::Route(primary, alts) => {
                let admit = self.emit(
                    open.cause,
                    EventRecord::SetupAdmit {
                        src,
                        dst,
                        rung: rung.tag(),
                        waited_us: waited,
                    },
                );
                let cause = admit.or(open.cause);
                match self.setup_along(&flow, &primary, alts, cause) {
                    Ok(setup) => {
                        self.obs.metrics.add(
                            match rung {
                                BrownoutRung::Full => "opens_served_full",
                                BrownoutRung::Cached => "opens_served_cached",
                                BrownoutRung::Stored => "opens_served_stored",
                            },
                            1,
                        );
                        ServeOutcome::Served {
                            open,
                            rung,
                            setup,
                            admit,
                        }
                    }
                    Err(error) => {
                        self.obs.metrics.add("opens_setup_failed", 1);
                        ServeOutcome::Failed { open, rung, error }
                    }
                }
            }
        }
    }

    /// Serves up to `cfg.max_batch` opens from `ad`'s admission queue in
    /// one service slot, folding co-routable cached-rung opens into
    /// shared multi-destination sweeps ([`RouteServer::request_batch`]).
    ///
    /// The brownout ladder picks the slot's path once, at the rung in
    /// force when the slot's first live open is popped: `Full` serves a
    /// single open solo with spares (full synthesis shares nothing and
    /// costs too much to commit a whole batch to), `Cached` answers the
    /// whole batch through one batched request — itself byte-identical
    /// to a [`RouteServer::request`] loop — and `Stored` does per-open
    /// table lookups, shedding misses. Sampling the ladder per slot
    /// rather than per pop keeps its feedback at the granularity the
    /// service actually happens at; a batch must not talk itself into
    /// expensive full synthesis merely because its own pops momentarily
    /// drained the queue below a watermark.
    ///
    /// Expired opens are cancelled unserved in pop order, ride along
    /// free (they do not count against the batch), and — exactly as a
    /// [`OrwgNetwork::serve_next`] loop would — still see the rung
    /// recomputed until the first live open fixes it. With
    /// `max_batch == 1` this function *is* `serve_next`: one live open,
    /// popped at the recomputed rung. Outcomes return in pop order.
    pub fn serve_batch(&mut self, ad: AdId, cfg: ShardConfig) -> Vec<ServeOutcome> {
        self.prof.enter("serve_batch");
        let now = self.clock;
        let ai = ad.index();
        struct Popped {
            open: PendingOpen,
            expired: bool,
            waited: u64,
            depth: u64,
        }
        // Phase 1: pop under the ladder. The rung is recomputed before
        // every pop until the first live open freezes it for the slot;
        // the depth each shed NACK would report is captured at the pop.
        self.prof.enter("pop");
        let mut popped: Vec<Popped> = Vec::new();
        let mut slot_rung: Option<BrownoutRung> = None;
        let mut live = 0usize;
        let mut limit = cfg.max_batch.max(1);
        while live < limit {
            let rung = match slot_rung {
                Some(r) => r,
                None => self.admission[ai].rung(now),
            };
            let Some(open) = self.admission[ai].pop() else {
                break;
            };
            let expired = now >= open.deadline;
            if !expired {
                if slot_rung.is_none() {
                    slot_rung = Some(rung);
                    // Full synthesis shares nothing across a batch and is
                    // the most expensive rung by an order of magnitude: a
                    // full-rung slot serves exactly one open so the ladder
                    // can re-evaluate before committing to the next.
                    if rung == BrownoutRung::Full {
                        limit = 1;
                    }
                }
                live += 1;
            }
            popped.push(Popped {
                waited: now.as_us().saturating_sub(open.offered_at.as_us()),
                depth: self.admission[ai].depth() as u64,
                open,
                expired,
            });
        }
        self.prof.exit("pop");
        // Phase 2: synthesize the live opens on the slot rung, in pop
        // order. Cached is the batched path; Full and Stored answer each
        // open exactly as serve_next would.
        let rung = slot_rung.unwrap_or(BrownoutRung::Full);
        let lives: Vec<usize> = (0..popped.len()).filter(|&i| !popped[i].expired).collect();
        self.prof.enter("synth");
        self.prof.work("serve/opens_popped", popped.len() as u64);
        self.prof.work("serve/opens_live", lives.len() as u64);
        if !popped.is_empty() {
            self.prof.work(
                match rung {
                    BrownoutRung::Full => "serve/slots_full",
                    BrownoutRung::Cached => "serve/slots_cached",
                    BrownoutRung::Stored => "serve/slots_stored",
                },
                1,
            );
        }
        let synth_snap = self.prof_synth_snapshot(ai);
        let mut synths: Vec<Option<Synth>> = Vec::new();
        synths.resize_with(popped.len(), || None);
        if rung == BrownoutRung::Cached && lives.len() > 1 {
            let flows: Vec<FlowSpec> = lives.iter().map(|&k| popped[k].open.flow).collect();
            let searches_before = self.servers[ai].stats.searches;
            let routes = self.servers[ai].request_batch(&flows, cfg.shards);
            let fresh = self.servers[ai].stats.searches - searches_before;
            self.emit(
                None,
                EventRecord::SynthBatch {
                    ad,
                    flows: lives.len() as u64,
                    fresh,
                },
            );
            for (&k, r) in lives.iter().zip(routes) {
                synths[k] = Some(match r {
                    Some(route) => Synth::Route(route, Vec::new()),
                    None => Synth::NoRoute,
                });
            }
        } else {
            for &k in &lives {
                synths[k] = Some(self.synth_on_rung(ad, &popped[k].open.flow, rung));
            }
        }
        self.prof_synth_attribute(ai, synth_snap);
        self.prof.exit("synth");
        // Phase 3: commit in pop order, exactly as serve_next would.
        self.prof.enter("commit");
        let outcomes: Vec<ServeOutcome> = popped
            .into_iter()
            .zip(synths)
            .map(|(p, synth)| {
                if p.expired {
                    self.emit_expired(p.open)
                } else {
                    self.obs.metrics.record("setup_wait_us", p.waited);
                    let synth = synth.expect("live pops are synthesized");
                    self.commit_outcome(ad, p.open, rung, p.waited, p.depth, synth)
                }
            })
            .collect();
        self.prof.exit("commit");
        self.prof.exit("serve_batch");
        outcomes
    }

    /// Snapshot of one server's synthesis counters, taken around a serve
    /// slot's synthesis phase to credit the profiler's work ledger.
    fn prof_synth_snapshot(&self, ai: usize) -> (u64, u64, u64, u64, u64) {
        let s = &self.servers[ai];
        (
            s.stats.searches,
            s.stats.cache_hits,
            s.sweep.sweeps,
            s.sweep.classes,
            s.sweep.hot_hits,
        )
    }

    /// Credits the synthesis side of the work ledger with everything a
    /// slot's synthesis phase did. All five deltas are deterministic for
    /// a fixed scenario configuration, so the ledger is reproducible.
    fn prof_synth_attribute(&mut self, ai: usize, snap: (u64, u64, u64, u64, u64)) {
        if !self.prof.is_enabled() {
            return;
        }
        let s = &self.servers[ai];
        let deltas = (
            s.stats.searches - snap.0,
            s.stats.cache_hits - snap.1,
            s.sweep.sweeps - snap.2,
            s.sweep.classes - snap.3,
            s.sweep.hot_hits - snap.4,
        );
        self.prof.work("synth/searches", deltas.0);
        self.prof.work("synth/cache_hits", deltas.1);
        self.prof.work("synth/sweeps", deltas.2);
        self.prof.work("synth/classes", deltas.3);
        self.prof.work("synth/hot_hits", deltas.4);
    }

    /// Runs up to `budget` background precompute refills on `ad`'s Route
    /// Server — re-searching cache entries a view change invalidated so
    /// the next open finds them hot instead of paying a search. Emits a
    /// precompute-refill record when anything was restored; returns the
    /// number of entries refilled.
    pub fn background_refill(&mut self, ad: AdId, budget: usize) -> usize {
        self.prof.enter("background_refill");
        let refilled = self.servers[ad.index()].background_refill(budget);
        self.prof.work("synth/refills", refilled as u64);
        self.prof.exit("background_refill");
        if refilled > 0 {
            self.obs.metrics.add("precompute_refills", refilled as u64);
            self.emit(
                None,
                EventRecord::PrecomputeRefill {
                    ad,
                    refilled: refilled as u64,
                },
            );
        }
        refilled
    }

    /// Records a client's retry decision (the setup-retry event, chained
    /// to the shed that provoked it). Returns the event id so the retried
    /// offer can chain onward — the defer→retry→serve span.
    pub fn note_retry(
        &mut self,
        flow: &FlowSpec,
        attempt: u32,
        backoff_us: u64,
        cause: Option<EventId>,
    ) -> Option<EventId> {
        self.obs.metrics.add("open_retries", 1);
        self.emit(
            cause,
            EventRecord::SetupRetry {
                src: flow.src,
                dst: flow.dst,
                attempt: u64::from(attempt),
                backoff_us,
            },
        )
    }

    /// Records a client giving up on an open (deadline or attempt budget
    /// exhausted) and cancels its in-flight work: any partial handle
    /// state the abandoned attempts left at gateways is purged — unless
    /// another arrival with the same flow spec holds an open route, which
    /// must keep forwarding. Returns the number of handles purged.
    pub fn abandon_open(
        &mut self,
        flow: &FlowSpec,
        attempts: u64,
        arrival: SimTime,
        cause: Option<EventId>,
    ) -> usize {
        self.obs.metrics.add("opens_abandoned", 1);
        self.obs.metrics.record(
            "shed_latency_us",
            self.clock.as_us().saturating_sub(arrival.as_us()),
        );
        self.emit(
            cause,
            EventRecord::SetupAbandon {
                src: flow.src,
                dst: flow.dst,
                attempts,
            },
        );
        if self.open_flows.values().any(|of| of.flow == *flow) {
            return 0;
        }
        let mut purged = 0;
        for g in &mut self.gateways {
            purged += g.purge_flow(flow);
        }
        purged
    }

    /// Crashes `ad`'s Route Server: all soft synthesis state is lost, the
    /// admission queue drains (its opens are handed back, cancelled, for
    /// the clients' retry logic), and offers shed until
    /// [`OrwgNetwork::failover_route_server`]. Returns the cancelled
    /// opens plus the rs-crash event id (the causal parent for the
    /// cancellations' retries).
    pub fn crash_route_server(&mut self, ad: AdId) -> (Vec<PendingOpen>, Option<EventId>) {
        if !self.rs_down.contains(&ad) {
            self.rs_down.push(ad);
            self.rs_down.sort();
        }
        self.servers[ad.index()].crash_soft_state();
        let cancelled = self.admission[ad.index()].drain();
        self.obs.metrics.add("rs_crashes", 1);
        let id = self.emit(None, EventRecord::RsCrash { ad });
        (cancelled, id)
    }

    /// Warm-standby takeover for `ad`'s crashed Route Server: the standby
    /// rebuilds the precomputed table from the flooded view, then replays
    /// its last cache snapshot — each entry revalidated against the
    /// current view and selection, so the takeover respects quarantines
    /// declared since the sync. Returns the number of warmed entries.
    pub fn failover_route_server(&mut self, ad: AdId) -> usize {
        self.rs_down.retain(|&d| d != ad);
        self.servers[ad.index()].rebuild_soft_state();
        let snap = std::mem::take(&mut self.standby[ad.index()]);
        let warmed = self.servers[ad.index()].warm_cache(&snap);
        self.standby[ad.index()] = snap;
        self.obs.metrics.add("rs_failovers", 1);
        self.emit(
            None,
            EventRecord::RsFailover {
                ad,
                warmed: warmed as u64,
            },
        );
        warmed
    }

    /// Snapshots `ad`'s route cache into its warm standby (the periodic
    /// sync a deployment would run over the AD's internal network).
    /// Returns the snapshot size.
    pub fn standby_sync(&mut self, ad: AdId) -> usize {
        let snap = self.servers[ad.index()].cache_snapshot();
        let n = snap.len();
        self.standby[ad.index()] = snap;
        n
    }

    /// Attempts to restore every flow whose route a fault tore down.
    ///
    /// For each pending flow the source first replays its cached alternate
    /// routes (spares stored by [`OrwgNetwork::open_repairable`]) through
    /// a fresh setup walk — links and gateways re-validate, so a spare
    /// that the fault also broke is simply rejected. Only when no spare
    /// survives does the source pay for a fresh policy-constrained
    /// synthesis ([`OrwgNetwork::open_resilient`] with `max_retries`
    /// detour attempts). Outcomes accumulate in
    /// [`OrwgNetwork::repair_stats`]; the per-call delta is returned.
    pub fn repair_pending(&mut self, max_retries: usize) -> RepairStats {
        let before = self.repair_stats;
        let pending = std::mem::take(&mut self.pending_repair);
        for (of, cause) in pending {
            let mut fixed = false;
            for alt in &of.alternates {
                if alt.path == of.route {
                    continue; // the spare is the route that just died
                }
                if self.setup_along(&of.flow, alt, Vec::new(), cause).is_ok() {
                    self.repair_stats.repaired_via_alternate += 1;
                    fixed = true;
                    break;
                }
            }
            let via = if fixed {
                "alternate"
            } else {
                match self.open_resilient_caused(&of.flow, max_retries, cause) {
                    Ok(_) => {
                        self.repair_stats.repaired_via_synthesis += 1;
                        "synthesis"
                    }
                    Err(_) => {
                        self.repair_stats.failures += 1;
                        "failed"
                    }
                }
            };
            self.obs.metrics.add(
                match via {
                    "failed" => "repair_failed",
                    _ => "repair_ok",
                },
                1,
            );
            self.emit(
                cause,
                EventRecord::RouteSetupRepair {
                    src: of.flow.src,
                    dst: of.flow.dst,
                    via,
                },
            );
        }
        RepairStats {
            repaired_via_alternate: self.repair_stats.repaired_via_alternate
                - before.repaired_via_alternate,
            repaired_via_synthesis: self.repair_stats.repaired_via_synthesis
                - before.repaired_via_synthesis,
            failures: self.repair_stats.failures - before.failures,
            setup_retransmits: self.repair_stats.setup_retransmits - before.setup_retransmits,
        }
    }

    /// Computes the incremental deltas taking view `(old_t, old_d)` to
    /// view `(new_t, new_d)`. Returns `None` when the change is structural
    /// (an AD or link the old view never knew) and only a full install can
    /// absorb it. A link absent from the new view (flooding dropped the
    /// adjacency) maps to a link-down delta on the old structure — the
    /// synthesis search only walks *up* links, so a down-link-present view
    /// and a link-absent view are search-equivalent.
    fn diff_views(
        old_t: &Topology,
        old_d: &PolicyDb,
        new_t: &Topology,
        new_d: &PolicyDb,
    ) -> Option<Vec<ViewDelta>> {
        if new_t.num_ads() != old_t.num_ads() {
            return None;
        }
        let mut deltas = Vec::new();
        for l in new_t.links() {
            let old_id = old_t.link_between(l.a, l.b)?;
            let old = old_t.link(old_id);
            if old.up != l.up {
                deltas.push(ViewDelta::Topo(TopoDelta::LinkState {
                    a: l.a,
                    b: l.b,
                    up: l.up,
                }));
            }
            if old.metric != l.metric {
                deltas.push(ViewDelta::Topo(TopoDelta::Metric {
                    a: l.a,
                    b: l.b,
                    metric: l.metric,
                }));
            }
        }
        for l in old_t.links() {
            if l.up && new_t.link_between(l.a, l.b).is_none() {
                deltas.push(ViewDelta::Topo(TopoDelta::LinkState {
                    a: l.a,
                    b: l.b,
                    up: false,
                }));
            }
        }
        for ad in new_t.ad_ids() {
            if new_d.policy(ad) != old_d.policy(ad) {
                deltas.push(ViewDelta::Policy(new_d.policy(ad).clone()));
            }
        }
        Some(deltas)
    }

    /// Re-syncs the data plane with a (re-)quiesced control plane: ground
    /// truth adopts the engine's topology and policies, flows crossing
    /// newly-dead links are torn down and queued for repair, and every
    /// Route Server absorbs **its own flooded database**'s fresh view —
    /// incrementally (diffed against its current view) or by full install,
    /// per the view-maintenance mode.
    ///
    /// This is the quiescence hook the fault-recovery sweeps and the
    /// `chaos` pipeline call after the LS flooder settles.
    pub fn refresh_from_engine(&mut self, engine: &Engine<OrwgProtocol>) {
        self.clock = engine.now();
        let new_topo = engine.topo().clone();
        let queued = self.pending_repair.len();
        // Ground truth and the engine topology share construction (and
        // hence link ids); diff per id to find links that died since.
        if new_topo.num_links() == self.topo.num_links() {
            for id in 0..self.topo.num_links() {
                let lid = LinkId(id as u32);
                let old = self.topo.link(lid);
                let (was_up, a, b) = (old.up, old.a, old.b);
                if was_up && !new_topo.link(lid).up {
                    self.gateways[a.index()].invalidate(|e| e.prev == b || e.next == b);
                    self.gateways[b.index()].invalidate(|e| e.prev == a || e.next == a);
                    self.teardown_and_notify(|of| {
                        of.route
                            .windows(2)
                            .any(|w| w.contains(&a) && w.contains(&b))
                    });
                }
            }
        }
        self.topo = new_topo;
        self.db = engine.protocol().policies.clone();
        let mut fallbacks = 0u64;
        for ad in self.topo.ad_ids() {
            let (vt, vd) = engine.router(ad).flooder.db.view();
            let s = &mut self.servers[ad.index()];
            if self.view_maintenance == ViewMaintenance::Flush {
                s.update_view(vt, vd);
                fallbacks += 1;
                continue;
            }
            match Self::diff_views(s.view_topo(), s.view_db(), &vt, &vd) {
                Some(deltas) => {
                    if !deltas.iter().all(|d| s.apply_delta(d)) {
                        s.update_view(vt, vd);
                        fallbacks += 1;
                    }
                }
                None => {
                    s.update_view(vt, vd);
                    fallbacks += 1;
                }
            }
        }
        self.obs.metrics.add("view_full_installs", fallbacks);
        let delta_id = self.emit(
            None,
            EventRecord::ViewDeltaApply {
                mode: match self.view_maintenance {
                    ViewMaintenance::Flush => "flush",
                    ViewMaintenance::Incremental => "incremental",
                },
                fallbacks,
            },
        );
        // Flows the re-sync tore down chain to the view-delta record: the
        // repair that follows is causally downstream of this refresh.
        self.set_pending_cause_from(queued, delta_id);
    }

    /// Total setup-time synthesis searches across all Route Servers.
    pub fn total_searches(&self) -> u64 {
        self.servers.iter().map(|s| s.stats.searches).sum()
    }

    /// Total background precompute searches across all Route Servers.
    pub fn total_precompute_searches(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| s.stats.precompute_searches)
            .sum()
    }

    /// Sums every Route Server's counters into one [`SynthStats`].
    pub fn aggregate_synth_stats(&self) -> SynthStats {
        let mut agg = SynthStats::default();
        for s in &self.servers {
            agg.requests += s.stats.requests;
            agg.searches += s.stats.searches;
            agg.settled += s.stats.settled;
            agg.relaxations += s.stats.relaxations;
            agg.precompute_searches += s.stats.precompute_searches;
            agg.precompute_settled += s.stats.precompute_settled;
            agg.precompute_relaxations += s.stats.precompute_relaxations;
            agg.precomputed_hits += s.stats.precomputed_hits;
            agg.cache_hits += s.stats.cache_hits;
            agg.entries_invalidated += s.stats.entries_invalidated;
            agg.revalidations += s.stats.revalidations;
            agg.revalidate_hits += s.stats.revalidate_hits;
        }
        agg
    }

    /// Sums every Route Server's batched-sweep counters into one
    /// [`SweepStats`] — the per-run sharded-serving cost breakdown
    /// `report --json` and `profile` publish.
    pub fn aggregate_sweep_stats(&self) -> SweepStats {
        let mut agg = SweepStats::default();
        for s in &self.servers {
            agg.batches += s.sweep.batches;
            agg.batch_flows += s.sweep.batch_flows;
            agg.sweeps += s.sweep.sweeps;
            agg.classes += s.sweep.classes;
            agg.hot_hits += s.sweep.hot_hits;
            agg.refills += s.sweep.refills;
        }
        agg
    }

    /// Total `(hits, misses)` of every Route Server's interned avoid-set
    /// pool — the [`adroute_policy::AdSetPool`] intern/widen hit rate.
    pub fn intern_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in &self.servers {
            let (h, m) = s.intern_stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// Total data packets that hit a pre-crash handle across all gateways
    /// (must stay 0 — see [`crate::gateway::GatewayStats::stale_forwards`]).
    pub fn total_stale_forwards(&self) -> u64 {
        self.gateways.iter().map(|g| g.stats.stale_forwards).sum()
    }

    /// Currently open flows.
    pub fn open_flow_count(&self) -> usize {
        self.open_flows.len()
    }

    /// Iterates over the currently open flows (order unspecified).
    pub fn open_flows(&self) -> impl Iterator<Item = (HandleId, &OpenFlow)> {
        self.open_flows.iter().map(|(h, of)| (*h, of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{workload::PolicyWorkload, AdSet, PolicyAction, PolicyCondition};
    use adroute_topology::generate::{line, ring, HierarchyConfig};

    fn permissive(n: usize) -> OrwgNetwork {
        let topo = ring(n);
        let db = PolicyDb::permissive(&topo);
        OrwgNetwork::converged(&topo, &db)
    }

    fn pending(flow: FlowSpec, at: SimTime) -> PendingOpen {
        PendingOpen {
            flow,
            offered_at: at,
            arrival: at,
            deadline: at.plus_us(100_000),
            attempt: 0,
            phase: 0,
            cause: None,
        }
    }

    #[test]
    fn offer_queue_serve_emits_defer_admit_chain() {
        let mut net = permissive(6);
        net.enable_obs(64);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        net.set_clock(SimTime(100));
        let AdmissionVerdict::Queued { depth, event } = net.offer_open(pending(flow, SimTime(100)))
        else {
            panic!("an empty queue must admit");
        };
        assert_eq!(depth, 1);
        let defer_id = event.expect("log enabled");
        net.set_clock(SimTime(200));
        let Some(ServeOutcome::Served {
            rung,
            setup,
            admit,
            open,
        }) = net.serve_next(AdId(0))
        else {
            panic!("queued open must serve");
        };
        assert_eq!(rung, BrownoutRung::Full, "idle server serves full");
        assert_eq!(open.flow, flow);
        assert!(!setup.route.is_empty());
        let admit_id = admit.expect("log enabled");
        // The admit chains to the defer: the wait span is causally linked.
        let events: Vec<_> = net.obs.log.iter().collect();
        let admit_ev = events.iter().find(|e| e.id == admit_id).unwrap();
        assert_eq!(admit_ev.cause, Some(defer_id));
        assert_eq!(net.obs.metrics.counter("opens_served_full"), 1);
        assert!(net.serve_next(AdId(0)).is_none(), "queue is drained");
    }

    #[test]
    fn full_queue_sheds_with_retry_after_nack() {
        let mut net = permissive(6);
        net.enable_obs(64);
        net.set_admission(AdmissionConfig {
            queue_capacity: 1,
            ..AdmissionConfig::default()
        });
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(matches!(
            net.offer_open(pending(flow, SimTime::ZERO)),
            AdmissionVerdict::Queued { .. }
        ));
        let AdmissionVerdict::Shed {
            retry_after_us,
            event,
            ..
        } = net.offer_open(pending(flow, SimTime::ZERO))
        else {
            panic!("a full queue must shed");
        };
        assert_eq!(retry_after_us, AdmissionConfig::default().retry_after_us);
        assert!(event.is_some(), "shed is an explicit NACK, never silent");
        assert_eq!(net.obs.metrics.counter("opens_shed"), 1);
    }

    #[test]
    fn deep_queue_degrades_to_cheaper_rungs() {
        let mut net = permissive(6);
        net.set_admission(AdmissionConfig {
            queue_capacity: 64,
            full_depth: 1,
            cached_depth: 2,
            age_watermark_us: 1_000_000,
            retry_after_us: 10_000,
        });
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        // Warm the cache so the stored rung has something to serve.
        let _ = net.synthesize(&flow);
        for _ in 0..3 {
            assert!(matches!(
                net.offer_open(pending(flow, SimTime::ZERO)),
                AdmissionVerdict::Queued { .. }
            ));
        }
        // Depth 3 > cached_depth: stored rung (cache hit, no search).
        let searches = net.total_searches();
        let Some(ServeOutcome::Served { rung, .. }) = net.serve_next(AdId(0)) else {
            panic!("stored rung must serve the cached flow");
        };
        assert_eq!(rung, BrownoutRung::Stored);
        assert_eq!(net.total_searches(), searches, "stored rung never searches");
        // Depth 2: cached rung.
        let Some(ServeOutcome::Served { rung, .. }) = net.serve_next(AdId(0)) else {
            panic!("cached rung must serve");
        };
        assert_eq!(rung, BrownoutRung::Cached);
        // Depth 1: full rung again.
        let Some(ServeOutcome::Served { rung, .. }) = net.serve_next(AdId(0)) else {
            panic!("full rung must serve");
        };
        assert_eq!(rung, BrownoutRung::Full);
    }

    #[test]
    fn stored_rung_miss_sheds_instead_of_searching() {
        let mut net = permissive(6);
        net.set_admission(AdmissionConfig {
            queue_capacity: 64,
            full_depth: 0,
            cached_depth: 0,
            age_watermark_us: 1_000_000,
            retry_after_us: 10_000,
        });
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let _ = net.offer_open(pending(flow, SimTime::ZERO));
        let searches = net.total_searches();
        assert!(matches!(
            net.serve_next(AdId(0)),
            Some(ServeOutcome::Shed { .. })
        ));
        assert_eq!(net.total_searches(), searches);
    }

    #[test]
    fn stored_rung_respects_quarantine() {
        let mut net = permissive(6);
        net.set_admission(AdmissionConfig {
            queue_capacity: 64,
            full_depth: 0,
            cached_depth: 0,
            age_watermark_us: 1_000_000,
            retry_after_us: 10_000,
        });
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let first = net.synthesize(&flow).unwrap();
        assert!(first.path.contains(&AdId(1)) || first.path.contains(&AdId(2)));
        // Quarantining a transit AD flushes stale cached routes; the
        // stored rung must then either serve a legal detour or shed —
        // never the quarantined path.
        let transit = first.path[1];
        net.quarantine_ad(transit, None);
        let _ = net.offer_open(pending(flow, SimTime::ZERO));
        match net.serve_next(AdId(0)) {
            Some(ServeOutcome::Served { setup, .. }) => {
                assert!(!setup.route.contains(&transit));
            }
            Some(ServeOutcome::Shed { .. }) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn expired_open_is_cancelled_unserved() {
        let mut net = permissive(6);
        net.enable_obs(64);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let mut open = pending(flow, SimTime::ZERO);
        open.deadline = SimTime(50);
        let _ = net.offer_open(open);
        net.set_clock(SimTime(100));
        let searches = net.total_searches();
        assert!(matches!(
            net.serve_next(AdId(0)),
            Some(ServeOutcome::Expired { .. })
        ));
        assert_eq!(net.total_searches(), searches, "no synthesis paid");
        assert_eq!(net.obs.metrics.counter("opens_expired"), 1);
    }

    #[test]
    fn rs_crash_drains_queue_and_failover_warms_from_standby() {
        let mut net = permissive(6);
        net.enable_obs(128);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        // Build cache state and sync the standby.
        let _ = net.synthesize(&flow);
        assert_eq!(net.standby_sync(AdId(0)), 1);
        // Queue an open, then crash mid-queue.
        let _ = net.offer_open(pending(flow, SimTime::ZERO));
        let (cancelled, crash_id) = net.crash_route_server(AdId(0));
        assert_eq!(cancelled.len(), 1);
        assert!(crash_id.is_some());
        assert_eq!(net.rs_down(), &[AdId(0)]);
        assert_eq!(net.server(AdId(0)).cached_len(), 0, "soft state lost");
        // Offers while down shed.
        assert!(matches!(
            net.offer_open(pending(flow, SimTime(10))),
            AdmissionVerdict::Shed { .. }
        ));
        // Takeover: precompute rebuilt, cache warmed from the snapshot.
        let warmed = net.failover_route_server(AdId(0));
        assert_eq!(warmed, 1);
        assert!(net.rs_down().is_empty());
        // Serve the post-failover open on the cached rung: the warmed
        // entry must absorb it without a search.
        net.set_admission(AdmissionConfig {
            full_depth: 0,
            ..AdmissionConfig::default()
        });
        let searches = net.total_searches();
        let _ = net.offer_open(pending(flow, SimTime(20)));
        let Some(ServeOutcome::Served { rung, .. }) = net.serve_next(AdId(0)) else {
            panic!("post-failover open must serve");
        };
        assert_eq!(rung, BrownoutRung::Cached);
        assert_eq!(
            net.total_searches(),
            searches,
            "the warmed cache must absorb the post-failover open"
        );
    }

    #[test]
    fn failover_warm_cache_respects_quarantine_declared_after_sync() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let first = net.synthesize(&flow).unwrap();
        let transit = first.path[1];
        net.standby_sync(AdId(0));
        let (_, _) = net.crash_route_server(AdId(0));
        // Quarantine lands between sync and takeover.
        net.quarantine_ad(transit, None);
        let warmed = net.failover_route_server(AdId(0));
        assert_eq!(warmed, 0, "snapshot entry through {transit:?} must drop");
    }

    #[test]
    fn rejected_setup_rolls_back_partial_handles() {
        // Ring of 6: route 0-1-2-3. AD1 validates and installs; AD2's
        // actual policy then refuses. AD1 must not keep the handle.
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.db.set_policy(TransitPolicy::deny_all(AdId(2)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let err = net.open(&flow).unwrap_err();
        assert_eq!(
            err,
            OpenError::Rejected(SetupError::PolicyDenied { ad: AdId(2) })
        );
        assert_eq!(
            net.gateway(AdId(1)).cached_handles(),
            0,
            "partial install must roll back"
        );
    }

    #[test]
    fn abandon_purges_partial_state_but_spares_live_flows() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let s = net.open(&flow).unwrap();
        // Another client with the same flow spec abandons: the live
        // flow's handles must survive.
        assert_eq!(net.abandon_open(&flow, 3, SimTime::ZERO, None), 0);
        assert!(net.send(s.handle).is_ok());
        // After teardown nothing is live; purge clears stragglers.
        net.teardown(s.handle);
        assert_eq!(net.abandon_open(&flow, 3, SimTime::ZERO, None), 0);
        assert_eq!(net.obs.metrics.counter("opens_abandoned"), 2);
    }

    #[test]
    fn rogue_gateway_forges_acks_and_quarantine_reconverges_legally() {
        // Ring of 6; AD1's *actual* policy turns deny-all while every
        // Route Server still holds the permissive view (stale flooding).
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.enable_obs(256);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        // Honest gateway: the stale source synthesizes through AD1, and
        // AD1's gateway rejects the setup against its actual policy.
        assert_eq!(
            net.open(&flow).unwrap_err(),
            OpenError::Rejected(SetupError::PolicyDenied { ad: AdId(1) })
        );
        // Rogue gateway: the same setup sails through on a forged ack,
        // and policy-violating traffic actually flows.
        net.set_rogue_gateways([AdId(1)]);
        let s = net.open(&flow).unwrap();
        assert!(s.route.contains(&AdId(1)));
        assert!(net
            .policies()
            .policy(AdId(1))
            .evaluate(&flow, Some(AdId(0)), Some(AdId(2)))
            .is_none());
        net.send(s.handle).unwrap();
        // Containment: quarantine tears the violating flow down and
        // repair reconverges it onto the policy-legal long way around.
        let torn = net.quarantine_ad(AdId(1), None);
        assert_eq!(torn, 1);
        assert_eq!(net.quarantined(), &[AdId(1)]);
        let stats = net.repair_pending(3);
        assert_eq!(stats.repaired_via_synthesis, 1);
        assert_eq!(stats.failures, 0);
        let of = net.open_flows.values().next().unwrap();
        assert!(!of.route.contains(&AdId(1)), "still transits rogue AD");
        assert_eq!(of.route, vec![AdId(0), AdId(5), AdId(4), AdId(3), AdId(2)]);
        // Lifting restores the avoid-sets.
        net.lift_quarantine(AdId(1));
        assert!(net.quarantined().is_empty());
        assert!(!net.server(AdId(0)).selection().avoid.contains(AdId(1)));
    }

    #[test]
    fn data_plane_obs_records_setup_repair_and_invalidation() {
        let mut net = permissive(6);
        net.enable_obs(256);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        net.open_repairable(&flow).unwrap();
        let hist = net.obs.metrics.histogram("setup_latency_us").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.sum > 0, "ring links have nonzero delay");
        // Break the installed route; the teardown queues a repair, and the
        // reflood is observed as an invalidation with its fan-out.
        let l = net.topo.link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        net.repair_pending(2);
        let kinds: Vec<&str> = net.obs.log.iter().map(|ev| ev.rec.kind()).collect();
        assert!(kinds.contains(&"setup-open"));
        assert!(kinds.contains(&"setup-ack"));
        assert!(kinds.contains(&"view-delta"));
        assert!(kinds.contains(&"view-invalidate"));
        assert!(kinds.contains(&"setup-repair"));
        assert_eq!(net.obs.metrics.counter("repair_ok"), 1);
        assert_eq!(
            net.obs
                .metrics
                .histogram("invalidation_fanout")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn setup_spans_chain_open_ack_and_repair() {
        let mut net = permissive(6);
        net.enable_obs(256);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        net.open_repairable(&flow).unwrap();
        let l = net.topo.link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        net.repair_pending(2);
        let evs: Vec<_> = net.obs.log.iter().copied().collect();
        let by_id: std::collections::BTreeMap<_, _> = evs.iter().map(|ev| (ev.id, ev)).collect();
        // Data-plane ids live in their own namespace, disjoint from any
        // engine log, and causes always point at earlier records.
        for ev in &evs {
            assert!(ev.id.0 >= adroute_sim::DATA_STREAM_ID_BASE);
            if let Some(c) = ev.cause {
                assert!(c < ev.id);
                assert!(by_id.contains_key(&c));
            }
        }
        // Every ack is the child of an open; the first open is a root.
        let first_open = evs
            .iter()
            .find(|ev| matches!(ev.rec, EventRecord::RouteSetupOpen { .. }))
            .unwrap();
        assert_eq!(first_open.cause, None);
        for ev in &evs {
            if let EventRecord::RouteSetupAck { .. } = ev.rec {
                let parent = by_id[&ev.cause.expect("ack has a cause")];
                assert!(matches!(parent.rec, EventRecord::RouteSetupOpen { .. }));
            }
        }
        // The view-invalidate descends from its view-delta, and the
        // repair span (re-open, ack, repair record) descends from the
        // invalidate that tore the flow down.
        let inv = evs
            .iter()
            .find(|ev| matches!(ev.rec, EventRecord::ViewInvalidate { .. }))
            .unwrap();
        let inv_parent = by_id[&inv.cause.expect("invalidate has a cause")];
        assert!(matches!(inv_parent.rec, EventRecord::ViewDeltaApply { .. }));
        let repair = evs
            .iter()
            .find(|ev| matches!(ev.rec, EventRecord::RouteSetupRepair { .. }))
            .unwrap();
        assert_eq!(repair.cause, Some(inv.id));
        let reopen = evs
            .iter()
            .find(|ev| ev.id > inv.id && matches!(ev.rec, EventRecord::RouteSetupOpen { .. }))
            .unwrap();
        assert_eq!(reopen.cause, Some(inv.id));
    }

    #[test]
    fn lossy_setup_chains_retransmits_and_nacks_carry_reasons() {
        let mut net = permissive(6);
        net.enable_obs(256);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        // Every transmission lost: the log shows a retransmit chain.
        net.set_setup_loss(1.0, 7);
        let rp = SetupRetryPolicy {
            max_retries: 2,
            base_timeout_us: 500,
        };
        assert_eq!(
            net.open_with_retries(&flow, &rp).unwrap_err(),
            OpenError::SetupTimeout
        );
        let rexmits: Vec<_> = net
            .obs
            .log
            .iter()
            .filter(|ev| matches!(ev.rec, EventRecord::RouteSetupRetransmit { .. }))
            .copied()
            .collect();
        assert_eq!(rexmits.len(), 2);
        assert_eq!(rexmits[0].cause, None);
        assert_eq!(rexmits[1].cause, Some(rexmits[0].id));
        // A stale-view setup into a refusing gateway nacks with a reason,
        // chained to its open.
        net.set_setup_loss(0.0, 7);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        assert!(matches!(net.open(&flow), Err(OpenError::Rejected(_))));
        let nack = net
            .obs
            .log
            .iter()
            .find(|ev| matches!(ev.rec, EventRecord::RouteSetupNack { .. }))
            .copied()
            .expect("rejected setup nacks");
        assert!(matches!(
            nack.rec,
            EventRecord::RouteSetupNack {
                reason: "policy-denied",
                ..
            }
        ));
        let opens: Vec<_> = net
            .obs
            .log
            .iter()
            .filter(|ev| matches!(ev.rec, EventRecord::RouteSetupOpen { .. }))
            .copied()
            .collect();
        assert_eq!(nack.cause, Some(opens.last().unwrap().id));
        let jsonl = net.obs.log.export_jsonl();
        assert!(jsonl.contains("\"kind\":\"setup-nack\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"setup-retransmit\""), "{jsonl}");
    }

    #[test]
    fn open_then_send_amortizes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        assert_eq!(setup.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        assert_eq!(setup.validations, 2);
        assert!(setup.header_bytes > 0);
        let d = net.send(setup.handle).unwrap();
        assert_eq!(d.hops, 3);
        assert_eq!(d.header_bytes, 36);
        assert!(d.header_bytes < setup.header_bytes);
        // Handle forwarding does not consult route servers again.
        assert_eq!(net.total_searches(), 1);
        assert_eq!(net.open_flow_count(), 1);
    }

    #[test]
    fn source_routed_packets_cost_more_per_packet() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        let handle_pkt = net.send(setup.handle).unwrap();
        let sr_pkt = net.send_source_routed(&flow).unwrap();
        assert!(sr_pkt.header_bytes > handle_pkt.header_bytes);
    }

    #[test]
    fn gateways_enforce_policy_at_setup() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p = TransitPolicy::permit_all(AdId(2));
        p.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        db.set_policy(p);
        let mut net = OrwgNetwork::converged(&topo, &db);
        // The route server knows AD2 denies source 0: no route at all.
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert_eq!(net.open(&flow).unwrap_err(), OpenError::NoRoute);
        // Another source is fine.
        let flow1 = FlowSpec::best_effort(AdId(1), AdId(3));
        assert!(net.open(&flow1).is_ok());
    }

    #[test]
    fn stale_view_rejected_by_gateway() {
        // Build a network whose servers believe AD1 permits, then change
        // AD1's actual policy without telling the servers: the gateway
        // must catch the setup.
        let topo = line(3);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        // Out-of-band actual-policy change (bypassing change_policy, which
        // would refresh views).
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        match net.open(&flow) {
            Err(OpenError::Rejected(SetupError::PolicyDenied { ad })) => assert_eq!(ad, AdId(1)),
            other => panic!("expected gateway rejection, got {other:?}"),
        }
    }

    #[test]
    fn link_failure_invalidates_and_reroutes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        // Old handle is gone (flow flushed).
        assert_eq!(net.send(setup.handle).unwrap_err(), SendError::UnknownFlow);
        // Re-opening synthesizes the other side of the ring.
        let setup2 = net.open(&flow).unwrap();
        assert_eq!(setup2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        assert!(net.send(setup2.handle).is_ok());
    }

    #[test]
    fn policy_change_flushes_and_recomputes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let s1 = net.open(&flow).unwrap();
        assert_eq!(s1.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        net.change_policy(TransitPolicy::deny_all(AdId(1)));
        assert_eq!(net.send(s1.handle).unwrap_err(), SendError::UnknownFlow);
        let s2 = net.open(&flow).unwrap();
        assert_eq!(s2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn teardown_releases_state() {
        let mut net = permissive(5);
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        let s = net.open(&flow).unwrap();
        assert_eq!(net.gateway(AdId(1)).cached_handles(), 1);
        net.teardown(s.handle);
        assert_eq!(net.gateway(AdId(1)).cached_handles(), 0);
        assert_eq!(net.send(s.handle).unwrap_err(), SendError::UnknownFlow);
    }

    #[test]
    fn evicted_handle_surfaces_as_drop() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        // Tiny gateway caches: 1 handle.
        let mut net = OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 64 }, 1);
        let f1 = FlowSpec::best_effort(AdId(0), AdId(3));
        let f2 = FlowSpec::best_effort(AdId(5), AdId(2)); // also transits AD1
        let s1 = net.open(&f1).unwrap();
        let _s2 = net.open(&f2).unwrap(); // evicts s1's handle at shared PGs
        match net.send(s1.handle) {
            Err(SendError::Dropped(DataError::UnknownHandle { .. })) => {}
            other => panic!("expected eviction drop, got {other:?}"),
        }
    }

    #[test]
    fn open_resilient_routes_around_stale_policy() {
        // Servers believe AD1 permits; AD1's actual policy (not yet
        // reflooded) denies. Plain open is rejected at the gateway;
        // resilient open avoids AD1 and succeeds via the other side.
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(matches!(net.open(&flow), Err(OpenError::Rejected(_))));
        let s = net.open_resilient(&flow, 3).expect("detour exists");
        assert_eq!(s.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        // Selection criteria restored afterwards.
        assert!(net.server(AdId(0)).selection().allows_transit(AdId(1)));
        assert!(net.send(s.handle).is_ok());
    }

    #[test]
    fn open_resilient_gives_up_after_budget() {
        // Both ring directions stale-deny: one retry is not enough for
        // two rejections.
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        net.db.set_policy(TransitPolicy::deny_all(AdId(5)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(net.open_resilient(&flow, 0).is_err());
        // With budget, both offenders are discovered, then no route
        // remains in the (stale) view either way around.
        assert!(net.open_resilient(&flow, 4).is_err());
    }

    #[test]
    fn open_resilient_routes_around_unflooded_link_failure() {
        // The link fails but servers' views are stale (we bypass
        // fail_link's view refresh by flipping ground truth directly).
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        let l = net.topo.link_between(AdId(1), AdId(2)).unwrap();
        net.topo.set_link_up(l, false);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(matches!(net.open(&flow), Err(OpenError::LinkDown { .. })));
        let s = net.open_resilient(&flow, 3).expect("detour exists");
        assert_eq!(s.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn from_engine_builds_per_ad_views() {
        let topo = HierarchyConfig::figure1().generate();
        let db = PolicyWorkload::default_mix(4).generate(&topo);
        let engine = crate::router::converge_control_plane(topo.clone(), db.clone());
        let mut net = OrwgNetwork::from_engine(
            &engine,
            Strategy::Cached { capacity: 64 },
            OrwgNetwork::DEFAULT_HANDLE_CAPACITY,
        );
        // Every campus-to-campus flow with a legal route must open.
        let mut opened = 0;
        for f in adroute_protocols::forwarding::sample_flows(&topo, 25, 11) {
            let legal = adroute_policy::legality::legal_route(&topo, &db, &f).is_some();
            match net.open(&f) {
                Ok(_) => {
                    assert!(legal, "opened an illegal flow {f}");
                    opened += 1;
                }
                Err(OpenError::NoRoute) => assert!(!legal, "missed legal route for {f}"),
                Err(e) => panic!("unexpected {e:?} for {f}"),
            }
        }
        assert!(opened > 0);
    }

    #[test]
    fn crashed_gateway_tears_down_and_is_avoided() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let s = net.open(&flow).unwrap();
        assert_eq!(s.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        net.crash_gateway(AdId(1));
        // The source was notified: the flow is queued for repair, the
        // handle is dead.
        assert_eq!(net.pending_repair_count(), 1);
        assert_eq!(net.send(s.handle).unwrap_err(), SendError::UnknownFlow);
        // Plain opens through the crashed AD are refused at setup…
        match net.open(&flow) {
            Err(OpenError::Rejected(SetupError::GatewayDown { ad })) => assert_eq!(ad, AdId(1)),
            other => panic!("expected GatewayDown, got {other:?}"),
        }
        // …and the resilient source routes around the crash.
        let s2 = net.open_resilient(&flow, 3).expect("detour exists");
        assert_eq!(s2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        assert!(net.send(s2.handle).is_ok());
        // After restart the original side works again, cold.
        net.restore_gateway(AdId(1));
        let s3 = net.open(&flow).unwrap();
        assert_eq!(s3.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        assert_eq!(net.total_stale_forwards(), 0);
    }

    #[test]
    fn repair_prefers_cached_alternate_over_synthesis() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let s = net.open_repairable(&flow).unwrap();
        assert_eq!(s.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        let searches_after_open = net.total_searches();
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        assert_eq!(net.pending_repair_count(), 1);
        let r = net.repair_pending(3);
        assert_eq!(r.repaired_via_alternate, 1);
        assert_eq!(r.repaired_via_synthesis, 0);
        assert_eq!(r.failures, 0);
        // The spare was replayed, not re-synthesized.
        assert_eq!(net.total_searches(), searches_after_open);
        assert_eq!(net.open_flow_count(), 1);
        let of = net.open_flows.values().next().unwrap();
        assert_eq!(of.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn repair_falls_back_to_synthesis_when_spares_die_too() {
        // Figure-1-style richer graph: fail a link that kills the primary,
        // then crash an AD on the only cached spare so synthesis must run.
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        net.open_repairable(&flow).unwrap();
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        // Break the spare (the other ring side) before repair runs.
        let l2 = net.topo().link_between(AdId(4), AdId(5)).unwrap();
        net.fail_link(l2);
        let r = net.repair_pending(3);
        // No path remains on a 6-ring with both sides cut.
        assert_eq!(r.repaired_via_alternate, 0);
        assert_eq!(r.failures, 1);
        assert_eq!(net.repair_stats.failures, 1);
    }

    #[test]
    fn setup_loss_retransmits_with_backoff() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let rp = SetupRetryPolicy {
            max_retries: 8,
            base_timeout_us: 1_000,
        };
        // Deterministic heavy loss: some attempts are lost, the eventual
        // success carries the accumulated backoff in its latency.
        net.set_setup_loss(0.7, 42);
        let mut saw_retry = false;
        for _ in 0..10 {
            match net.open_with_retries(&flow, &rp) {
                Ok(s) => {
                    if s.latency_us > 3_000 {
                        // Ring of 6: raw route latency is 3 hops × 1000µs.
                        saw_retry = true;
                    }
                }
                Err(OpenError::SetupTimeout) => saw_retry = true,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(saw_retry, "70% loss must cost at least one retransmit");
        assert!(net.repair_stats.setup_retransmits > 0);
        // With loss disabled the same call is loss-free.
        net.set_setup_loss(0.0, 42);
        let before = net.repair_stats.setup_retransmits;
        net.open_with_retries(&flow, &rp).unwrap();
        assert_eq!(net.repair_stats.setup_retransmits, before);
    }

    #[test]
    fn setup_timeout_after_retry_cap() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        net.set_setup_loss(1.0, 7); // every transmission lost
        let rp = SetupRetryPolicy {
            max_retries: 2,
            base_timeout_us: 500,
        };
        assert_eq!(
            net.open_with_retries(&flow, &rp).unwrap_err(),
            OpenError::SetupTimeout
        );
        assert_eq!(net.repair_stats.setup_retransmits, 2);
    }

    #[test]
    fn restore_link_reinstates_cheaper_side() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        let s1 = net.open(&flow).unwrap();
        assert_eq!(s1.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        net.restore_link(l);
        // A link coming up tears nothing down …
        assert!(net.send(s1.handle).is_ok());
        // … but stored routes were invalidated, so a fresh open sees the
        // recovered side again.
        let s2 = net.open(&flow).unwrap();
        assert_eq!(s2.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
    }

    #[test]
    fn incremental_maintenance_spares_unrelated_entries() {
        let mut net = permissive(6);
        let f = FlowSpec::best_effort(AdId(0), AdId(3)); // 0-1-2-3
        let g = FlowSpec::best_effort(AdId(0), AdId(5)); // 0-5
        net.open(&f).unwrap();
        net.open(&g).unwrap();
        let l = net.topo().link_between(AdId(2), AdId(3)).unwrap();
        net.fail_link(l);
        let agg = net.aggregate_synth_stats();
        assert_eq!(agg.entries_invalidated, 1, "only f crosses 2-3");
        assert_eq!(agg.revalidations, 1);
        // g is served straight from cache; no server other than the
        // sources' did any invalidation work at all.
        let searches = net.total_searches();
        assert!(net.open(&g).is_ok());
        assert_eq!(net.total_searches(), searches);
        for ad in 1..6 {
            assert_eq!(net.server(AdId(ad)).stats.entries_invalidated, 0);
        }
    }

    #[test]
    fn metric_change_invalidates_by_direction() {
        let mut net = permissive(6);
        let f = FlowSpec::best_effort(AdId(0), AdId(3));
        net.open(&f).unwrap();
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        // Raising a crossed link's metric kills the stored route …
        net.change_metric(l, 10);
        let s = net.open(&f).unwrap();
        assert_eq!(s.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        // … lowering it back is expansive: everything re-examined, and
        // the cheap side wins again.
        net.change_metric(l, 1);
        let s2 = net.open(&f).unwrap();
        assert_eq!(s2.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
    }

    #[test]
    fn flush_mode_is_the_behavioral_oracle() {
        let run = |mode: ViewMaintenance| {
            let mut net = permissive(6);
            net.set_view_maintenance(mode);
            let f = FlowSpec::best_effort(AdId(0), AdId(3));
            let g = FlowSpec::best_effort(AdId(0), AdId(4));
            let mut log = Vec::new();
            log.push(net.open(&f).map(|s| s.route).ok());
            log.push(net.open(&g).map(|s| s.route).ok());
            let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
            net.fail_link(l);
            log.push(net.open(&f).map(|s| s.route).ok());
            net.change_policy(TransitPolicy::deny_all(AdId(4)));
            log.push(net.open(&g).map(|s| s.route).ok());
            net.restore_link(l);
            log.push(net.open(&f).map(|s| s.route).ok());
            log
        };
        assert_eq!(
            run(ViewMaintenance::Incremental),
            run(ViewMaintenance::Flush),
            "incremental maintenance must answer exactly like the flush oracle"
        );
    }

    #[test]
    fn transit_ads_do_no_route_computation() {
        let mut net = permissive(6);
        for dst in [2u32, 3, 4] {
            let f = FlowSpec::best_effort(AdId(0), AdId(dst));
            let _ = net.open(&f);
        }
        // Only the source's server worked.
        assert_eq!(net.server(AdId(0)).stats.searches, 3);
        for ad in 1..6 {
            assert_eq!(
                net.server(AdId(ad)).stats.searches,
                0,
                "AD{ad} computed a route"
            );
        }
    }
}
