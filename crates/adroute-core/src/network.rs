//! [`OrwgNetwork`]: the assembled ORWG data plane — Route Servers, Policy
//! Gateways, and the setup/handle forwarding machinery — runnable against
//! a (converged) topology-and-policy view.

use std::collections::HashMap;

use adroute_policy::{FlowSpec, PolicyDb, TransitPolicy};
use adroute_sim::Engine;
use adroute_topology::{AdId, LinkId, Topology};

use crate::dataplane::{DataPacket, HandleId, SetupPacket};
use crate::gateway::{DataError, PolicyGateway, SetupError};
use crate::router::OrwgProtocol;
use crate::synthesis::{PolicyRoute, RouteServer, Strategy};

/// Why opening a policy route failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenError {
    /// The source's Route Server found no legal route in its view.
    NoRoute,
    /// A link on the synthesized route is physically down (stale view).
    LinkDown {
        /// Upstream endpoint of the dead link.
        a: AdId,
        /// Downstream endpoint.
        b: AdId,
    },
    /// A Policy Gateway refused the setup.
    Rejected(SetupError),
}

/// Why sending on an established route failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendError {
    /// The handle was never opened (or was torn down) at the source.
    UnknownFlow,
    /// A link on the route is physically down.
    LinkDown {
        /// Upstream endpoint of the dead link.
        a: AdId,
        /// Downstream endpoint.
        b: AdId,
    },
    /// A gateway dropped the packet (evicted handle, failed validation).
    Dropped(DataError),
}

/// Result of a successful route setup.
#[derive(Clone, Debug)]
pub struct SetupOutcome {
    /// The allocated handle.
    pub handle: HandleId,
    /// The validated route.
    pub route: Vec<AdId>,
    /// Total header bytes transmitted (setup header × hops).
    pub header_bytes: usize,
    /// Policy-gateway validations performed.
    pub validations: usize,
    /// End-to-end setup latency over the route's link delays, µs.
    pub latency_us: u64,
}

/// Result of a successful data transmission.
#[derive(Clone, Copy, Debug)]
pub struct DataOutcome {
    /// Hops traversed.
    pub hops: usize,
    /// Total header bytes transmitted (per-hop header × hops).
    pub header_bytes: usize,
    /// End-to-end latency over the route's link delays, µs.
    pub latency_us: u64,
}

/// An established policy route at the source.
#[derive(Clone, Debug)]
pub struct OpenFlow {
    /// The traffic class.
    pub flow: FlowSpec,
    /// The validated route.
    pub route: Vec<AdId>,
}

/// The assembled ORWG network.
///
/// Ground truth (`topo`, `db`) models the physical network and each AD's
/// *actual* policy; each Route Server holds its own (possibly stale) view,
/// exactly as flooding left it.
pub struct OrwgNetwork {
    topo: Topology,
    db: PolicyDb,
    servers: Vec<RouteServer>,
    gateways: Vec<PolicyGateway>,
    next_handle: u64,
    open_flows: HashMap<HandleId, OpenFlow>,
}

impl OrwgNetwork {
    /// Default Route-Server strategy.
    pub const DEFAULT_STRATEGY: Strategy = Strategy::Cached { capacity: 1024 };
    /// Default Policy-Gateway handle-cache capacity.
    pub const DEFAULT_HANDLE_CAPACITY: usize = 4096;

    /// Builds a network in which every Route Server has a perfect,
    /// identical view — the state flooding reaches at quiescence. The
    /// standard entry point for experiments and examples.
    pub fn converged(topo: &Topology, db: &PolicyDb) -> OrwgNetwork {
        OrwgNetwork::converged_with(topo, db, Self::DEFAULT_STRATEGY, Self::DEFAULT_HANDLE_CAPACITY)
    }

    /// [`OrwgNetwork::converged`] with explicit strategy and handle-cache
    /// capacity.
    pub fn converged_with(
        topo: &Topology,
        db: &PolicyDb,
        strategy: Strategy,
        handle_capacity: usize,
    ) -> OrwgNetwork {
        let servers = topo
            .ad_ids()
            .map(|ad| RouteServer::new(ad, topo.clone(), db.clone(), strategy.clone()))
            .collect();
        let gateways = topo.ad_ids().map(|ad| PolicyGateway::new(ad, handle_capacity)).collect();
        OrwgNetwork {
            topo: topo.clone(),
            db: db.clone(),
            servers,
            gateways,
            next_handle: 1,
            open_flows: HashMap::new(),
        }
    }

    /// Builds the data plane from a converged control-plane engine: each
    /// AD's Route Server gets the view **its own flooded database**
    /// describes (views may legitimately differ if the engine has not
    /// quiesced).
    pub fn from_engine(
        engine: &Engine<OrwgProtocol>,
        strategy: Strategy,
        handle_capacity: usize,
    ) -> OrwgNetwork {
        let topo = engine.topo().clone();
        let db = engine.protocol().policies.clone();
        let servers = topo
            .ad_ids()
            .map(|ad| {
                let (vt, vd) = engine.router(ad).flooder.db.view();
                RouteServer::new(ad, vt, vd, strategy.clone())
            })
            .collect();
        let gateways = topo.ad_ids().map(|ad| PolicyGateway::new(ad, handle_capacity)).collect();
        OrwgNetwork { topo, db, servers, gateways, next_handle: 1, open_flows: HashMap::new() }
    }

    /// The ground-truth topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The ground-truth policy database.
    pub fn policies(&self) -> &PolicyDb {
        &self.db
    }

    /// The Route Server of `ad`.
    pub fn server(&self, ad: AdId) -> &RouteServer {
        &self.servers[ad.index()]
    }

    /// Mutable Route Server access (e.g. to set selection criteria or
    /// trigger precomputation).
    pub fn server_mut(&mut self, ad: AdId) -> &mut RouteServer {
        &mut self.servers[ad.index()]
    }

    /// The Policy Gateway of `ad`.
    pub fn gateway(&self, ad: AdId) -> &PolicyGateway {
        &self.gateways[ad.index()]
    }

    /// Synthesizes (without setting up) the policy route for `flow`, from
    /// the flow source's own Route Server.
    pub fn policy_route(&mut self, flow: &FlowSpec) -> Option<Vec<AdId>> {
        self.servers[flow.src.index()].request(flow).map(|r| r.path)
    }

    /// Synthesizes and returns the full [`PolicyRoute`] (with PT
    /// citations).
    pub fn synthesize(&mut self, flow: &FlowSpec) -> Option<PolicyRoute> {
        self.servers[flow.src.index()].request(flow)
    }

    fn check_links(route: &[AdId], topo: &Topology) -> Result<u64, (AdId, AdId)> {
        let mut latency = 0;
        for w in route.windows(2) {
            match topo.link_between(w[0], w[1]) {
                Some(l) if topo.link(l).up => latency += topo.link(l).delay_us,
                _ => return Err((w[0], w[1])),
            }
        }
        Ok(latency)
    }

    /// Opens a policy route for `flow`: synthesize at the source, then
    /// walk the setup packet through every transit AD's Policy Gateway.
    pub fn open(&mut self, flow: &FlowSpec) -> Result<SetupOutcome, OpenError> {
        let route = self.servers[flow.src.index()].request(flow).ok_or(OpenError::NoRoute)?;
        let handle = HandleId(self.next_handle);
        self.next_handle += 1;
        let setup = SetupPacket {
            flow: *flow,
            route: route.path.clone(),
            claimed_pts: route.pts.clone(),
            handle,
        };
        let latency_us =
            Self::check_links(&setup.route, &self.topo).map_err(|(a, b)| OpenError::LinkDown { a, b })?;
        let mut validations = 0;
        for i in 1..setup.route.len().saturating_sub(1) {
            let ad = setup.route[i];
            // The gateway validates against the AD's *actual* policy —
            // its own policy is always locally accurate.
            validations += 1;
            self.gateways[ad.index()]
                .validate_setup(self.db.policy(ad), &setup)
                .map_err(OpenError::Rejected)?;
        }
        let hops = setup.route.len() - 1;
        let header_bytes = setup.header_size() * hops;
        self.open_flows.insert(handle, OpenFlow { flow: *flow, route: setup.route.clone() });
        Ok(SetupOutcome { handle, route: setup.route, header_bytes, validations, latency_us })
    }

    /// Opens a policy route, retrying around rejections.
    ///
    /// When a Policy Gateway refuses a setup (its actual policy is newer
    /// than the source's flooded view) or a link on the synthesized route
    /// is down, the source adds the offender to its (private) avoid
    /// criteria and re-synthesizes — up to `max_retries` times. The
    /// source's prior selection criteria are restored afterwards.
    pub fn open_resilient(
        &mut self,
        flow: &FlowSpec,
        max_retries: usize,
    ) -> Result<SetupOutcome, OpenError> {
        let saved = self.servers[flow.src.index()].selection().clone();
        let mut avoided: Vec<AdId> = match &saved.avoid {
            adroute_policy::AdSet::Only(v) => v.clone(),
            _ => Vec::new(),
        };
        let mut attempt = 0;
        let result = loop {
            match self.open(flow) {
                Ok(s) => break Ok(s),
                Err(e) if attempt >= max_retries => break Err(e),
                Err(OpenError::Rejected(
                    SetupError::PolicyDenied { ad } | SetupError::PtMismatch { ad },
                )) => {
                    avoided.push(ad);
                }
                Err(OpenError::LinkDown { a, b }) => {
                    // Avoid the downstream endpoint (never the endpoints
                    // of the flow itself).
                    let pick = if b != flow.src && b != flow.dst { b } else { a };
                    if pick == flow.src || pick == flow.dst {
                        break Err(OpenError::LinkDown { a, b });
                    }
                    avoided.push(pick);
                }
                Err(e) => break Err(e),
            }
            attempt += 1;
            let mut sel = saved.clone();
            sel.avoid = adroute_policy::AdSet::only(avoided.iter().copied());
            self.servers[flow.src.index()].set_selection(sel);
        };
        self.servers[flow.src.index()].set_selection(saved);
        result
    }

    /// Sends one data packet on an established route using the handle.
    pub fn send(&mut self, handle: HandleId) -> Result<DataOutcome, SendError> {
        let of = self.open_flows.get(&handle).ok_or(SendError::UnknownFlow)?.clone();
        let latency_us = Self::check_links(&of.route, &self.topo)
            .map_err(|(a, b)| SendError::LinkDown { a, b })?;
        let pkt = DataPacket { handle, src: of.flow.src };
        for i in 1..of.route.len().saturating_sub(1) {
            let ad = of.route[i];
            let next = self.gateways[ad.index()]
                .forward_data(&pkt, of.route[i - 1])
                .map_err(SendError::Dropped)?;
            debug_assert_eq!(next, of.route[i + 1]);
        }
        let hops = of.route.len() - 1;
        Ok(DataOutcome { hops, header_bytes: DataPacket::HEADER_SIZE * hops, latency_us })
    }

    /// The ablation data plane: every packet carries the full source
    /// route (no setup, no handles). Gateways fully re-validate policy for
    /// each packet — the "overhead of carrying and processing complete
    /// information for each packet is prohibitive" alternative.
    pub fn send_source_routed(&mut self, flow: &FlowSpec) -> Result<DataOutcome, OpenError> {
        let route = self.servers[flow.src.index()].request(flow).ok_or(OpenError::NoRoute)?;
        let latency_us = Self::check_links(&route.path, &self.topo)
            .map_err(|(a, b)| OpenError::LinkDown { a, b })?;
        for i in 1..route.path.len().saturating_sub(1) {
            let ad = route.path[i];
            let permit = self.db.policy(ad).evaluate(
                flow,
                Some(route.path[i - 1]),
                Some(route.path[i + 1]),
            );
            if permit.is_none() {
                return Err(OpenError::Rejected(SetupError::PolicyDenied { ad }));
            }
        }
        let hops = route.path.len() - 1;
        Ok(DataOutcome {
            hops,
            header_bytes: DataPacket::source_route_header_size(route.path.len()) * hops,
            latency_us,
        })
    }

    /// Tears down an open flow at the source and every gateway.
    pub fn teardown(&mut self, handle: HandleId) {
        if let Some(of) = self.open_flows.remove(&handle) {
            for ad in &of.route[1..of.route.len().saturating_sub(1)] {
                self.gateways[ad.index()].teardown(handle);
            }
        }
    }

    /// Fails a link in ground truth: flushes affected gateway handles and
    /// (modeling re-flooding at quiescence) updates every Route Server's
    /// view.
    pub fn fail_link(&mut self, link: LinkId) {
        self.topo.set_link_up(link, false);
        let l = self.topo.link(link);
        let (a, b) = (l.a, l.b);
        self.gateways[a.index()].invalidate(|e| e.prev == b || e.next == b);
        self.gateways[b.index()].invalidate(|e| e.prev == a || e.next == a);
        self.open_flows
            .retain(|_, of| of.route.windows(2).all(|w| !(w.contains(&a) && w.contains(&b))));
        let topo = self.topo.clone();
        let db = self.db.clone();
        for s in &mut self.servers {
            s.update_view(topo.clone(), db.clone());
        }
    }

    /// Changes one AD's policy: the AD's gateway flushes all cached
    /// handles, and (modeling re-flooding) every Route Server's view is
    /// refreshed. The staleness cost is E7's policy-change column.
    pub fn change_policy(&mut self, policy: TransitPolicy) {
        let ad = policy.ad;
        self.db.set_policy(policy);
        self.gateways[ad.index()].invalidate(|_| true);
        self.open_flows.retain(|_, of| !of.route[1..of.route.len().saturating_sub(1)].contains(&ad));
        let topo = self.topo.clone();
        let db = self.db.clone();
        for s in &mut self.servers {
            s.update_view(topo.clone(), db.clone());
        }
    }

    /// Total synthesis searches across all Route Servers.
    pub fn total_searches(&self) -> u64 {
        self.servers.iter().map(|s| s.stats.searches).sum()
    }

    /// Currently open flows.
    pub fn open_flow_count(&self) -> usize {
        self.open_flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{workload::PolicyWorkload, AdSet, PolicyAction, PolicyCondition};
    use adroute_topology::generate::{line, ring, HierarchyConfig};

    fn permissive(n: usize) -> OrwgNetwork {
        let topo = ring(n);
        let db = PolicyDb::permissive(&topo);
        OrwgNetwork::converged(&topo, &db)
    }

    #[test]
    fn open_then_send_amortizes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        assert_eq!(setup.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        assert_eq!(setup.validations, 2);
        assert!(setup.header_bytes > 0);
        let d = net.send(setup.handle).unwrap();
        assert_eq!(d.hops, 3);
        assert_eq!(d.header_bytes, 36);
        assert!(d.header_bytes < setup.header_bytes);
        // Handle forwarding does not consult route servers again.
        assert_eq!(net.total_searches(), 1);
        assert_eq!(net.open_flow_count(), 1);
    }

    #[test]
    fn source_routed_packets_cost_more_per_packet() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        let handle_pkt = net.send(setup.handle).unwrap();
        let sr_pkt = net.send_source_routed(&flow).unwrap();
        assert!(sr_pkt.header_bytes > handle_pkt.header_bytes);
    }

    #[test]
    fn gateways_enforce_policy_at_setup() {
        let topo = line(4);
        let mut db = PolicyDb::permissive(&topo);
        let mut p = TransitPolicy::permit_all(AdId(2));
        p.push_term(vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))], PolicyAction::Deny);
        db.set_policy(p);
        let mut net = OrwgNetwork::converged(&topo, &db);
        // The route server knows AD2 denies source 0: no route at all.
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert_eq!(net.open(&flow).unwrap_err(), OpenError::NoRoute);
        // Another source is fine.
        let flow1 = FlowSpec::best_effort(AdId(1), AdId(3));
        assert!(net.open(&flow1).is_ok());
    }

    #[test]
    fn stale_view_rejected_by_gateway() {
        // Build a network whose servers believe AD1 permits, then change
        // AD1's actual policy without telling the servers: the gateway
        // must catch the setup.
        let topo = line(3);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        // Out-of-band actual-policy change (bypassing change_policy, which
        // would refresh views).
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        match net.open(&flow) {
            Err(OpenError::Rejected(SetupError::PolicyDenied { ad })) => assert_eq!(ad, AdId(1)),
            other => panic!("expected gateway rejection, got {other:?}"),
        }
    }

    #[test]
    fn link_failure_invalidates_and_reroutes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let setup = net.open(&flow).unwrap();
        let l = net.topo().link_between(AdId(1), AdId(2)).unwrap();
        net.fail_link(l);
        // Old handle is gone (flow flushed).
        assert_eq!(net.send(setup.handle).unwrap_err(), SendError::UnknownFlow);
        // Re-opening synthesizes the other side of the ring.
        let setup2 = net.open(&flow).unwrap();
        assert_eq!(setup2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        assert!(net.send(setup2.handle).is_ok());
    }

    #[test]
    fn policy_change_flushes_and_recomputes() {
        let mut net = permissive(6);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let s1 = net.open(&flow).unwrap();
        assert_eq!(s1.route, vec![AdId(0), AdId(1), AdId(2), AdId(3)]);
        net.change_policy(TransitPolicy::deny_all(AdId(1)));
        assert_eq!(net.send(s1.handle).unwrap_err(), SendError::UnknownFlow);
        let s2 = net.open(&flow).unwrap();
        assert_eq!(s2.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn teardown_releases_state() {
        let mut net = permissive(5);
        let flow = FlowSpec::best_effort(AdId(0), AdId(2));
        let s = net.open(&flow).unwrap();
        assert_eq!(net.gateway(AdId(1)).cached_handles(), 1);
        net.teardown(s.handle);
        assert_eq!(net.gateway(AdId(1)).cached_handles(), 0);
        assert_eq!(net.send(s.handle).unwrap_err(), SendError::UnknownFlow);
    }

    #[test]
    fn evicted_handle_surfaces_as_drop() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        // Tiny gateway caches: 1 handle.
        let mut net =
            OrwgNetwork::converged_with(&topo, &db, Strategy::Cached { capacity: 64 }, 1);
        let f1 = FlowSpec::best_effort(AdId(0), AdId(3));
        let f2 = FlowSpec::best_effort(AdId(5), AdId(2)); // also transits AD1
        let s1 = net.open(&f1).unwrap();
        let _s2 = net.open(&f2).unwrap(); // evicts s1's handle at shared PGs
        match net.send(s1.handle) {
            Err(SendError::Dropped(DataError::UnknownHandle { .. })) => {}
            other => panic!("expected eviction drop, got {other:?}"),
        }
    }

    #[test]
    fn open_resilient_routes_around_stale_policy() {
        // Servers believe AD1 permits; AD1's actual policy (not yet
        // reflooded) denies. Plain open is rejected at the gateway;
        // resilient open avoids AD1 and succeeds via the other side.
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(matches!(net.open(&flow), Err(OpenError::Rejected(_))));
        let s = net.open_resilient(&flow, 3).expect("detour exists");
        assert_eq!(s.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
        // Selection criteria restored afterwards.
        assert!(net.server(AdId(0)).selection().allows_transit(AdId(1)));
        assert!(net.send(s.handle).is_ok());
    }

    #[test]
    fn open_resilient_gives_up_after_budget() {
        // Both ring directions stale-deny: one retry is not enough for
        // two rejections.
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        net.db.set_policy(TransitPolicy::deny_all(AdId(1)));
        net.db.set_policy(TransitPolicy::deny_all(AdId(5)));
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(net.open_resilient(&flow, 0).is_err());
        // With budget, both offenders are discovered, then no route
        // remains in the (stale) view either way around.
        assert!(net.open_resilient(&flow, 4).is_err());
    }

    #[test]
    fn open_resilient_routes_around_unflooded_link_failure() {
        // The link fails but servers' views are stale (we bypass
        // fail_link's view refresh by flipping ground truth directly).
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let mut net = OrwgNetwork::converged(&topo, &db);
        let l = net.topo.link_between(AdId(1), AdId(2)).unwrap();
        net.topo.set_link_up(l, false);
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        assert!(matches!(net.open(&flow), Err(OpenError::LinkDown { .. })));
        let s = net.open_resilient(&flow, 3).expect("detour exists");
        assert_eq!(s.route, vec![AdId(0), AdId(5), AdId(4), AdId(3)]);
    }

    #[test]
    fn from_engine_builds_per_ad_views() {
        let topo = HierarchyConfig::figure1().generate();
        let db = PolicyWorkload::default_mix(4).generate(&topo);
        let engine = crate::router::converge_control_plane(topo.clone(), db.clone());
        let mut net = OrwgNetwork::from_engine(
            &engine,
            Strategy::Cached { capacity: 64 },
            OrwgNetwork::DEFAULT_HANDLE_CAPACITY,
        );
        // Every campus-to-campus flow with a legal route must open.
        let mut opened = 0;
        for f in adroute_protocols::forwarding::sample_flows(&topo, 25, 11) {
            let legal = adroute_policy::legality::legal_route(&topo, &db, &f).is_some();
            match net.open(&f) {
                Ok(_) => {
                    assert!(legal, "opened an illegal flow {f}");
                    opened += 1;
                }
                Err(OpenError::NoRoute) => assert!(!legal, "missed legal route for {f}"),
                Err(e) => panic!("unexpected {e:?} for {f}"),
            }
        }
        assert!(opened > 0);
    }

    #[test]
    fn transit_ads_do_no_route_computation() {
        let mut net = permissive(6);
        for dst in [2u32, 3, 4] {
            let f = FlowSpec::best_effort(AdId(0), AdId(dst));
            let _ = net.open(&f);
        }
        // Only the source's server worked.
        assert_eq!(net.server(AdId(0)).stats.searches, 3);
        for ad in 1..6 {
            assert_eq!(net.server(AdId(ad)).stats.searches, 0, "AD{ad} computed a route");
        }
    }
}
