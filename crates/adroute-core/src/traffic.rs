//! Session-level traffic driver for the ORWG data plane.
//!
//! The paper stresses that policy routes "have a long lifetime and are not
//! intended to correspond one to one with transport level sessions … a
//! single policy route can support multiple pairs of hosts" (Section
//! 5.4.1). This module drives an [`OrwgNetwork`] with a stream of
//! *sessions* — open a flow (reusing the policy route if one is live),
//! send a burst of packets, occasionally tear down — under a skewed
//! destination popularity, and aggregates the costs. It is the workload
//! engine behind the steady-state experiments and the churn tests.

use std::collections::HashMap;

use adroute_policy::FlowSpec;
use adroute_topology::{AdId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataplane::HandleId;
use crate::gateway::DataError;
use crate::network::{OpenError, OrwgNetwork, SendError};

/// Traffic model parameters.
#[derive(Clone, Debug)]
pub struct TrafficModel {
    /// Number of sessions to run.
    pub sessions: usize,
    /// Packets per session (mean; actual count is 1..=2*mean-1).
    pub packets_per_session: usize,
    /// Probability a session tears its route down when it ends (long-lived
    /// routes shared across sessions are the paper's expectation).
    pub teardown_prob: f64,
    /// Fraction of traffic aimed at the "hot" 10% of destinations.
    pub hot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            sessions: 500,
            packets_per_session: 10,
            teardown_prob: 0.1,
            hot_fraction: 0.7,
            seed: 0,
        }
    }
}

/// Aggregate outcome of a traffic run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions with no legal route.
    pub unroutable: usize,
    /// Fresh route setups performed.
    pub setups: u64,
    /// Setups forced by evicted gateway handles mid-flow.
    pub resetups: u64,
    /// Data packets delivered.
    pub packets: u64,
    /// Total header bytes (setup + data).
    pub header_bytes: u64,
    /// Route-synthesis searches performed by all Route Servers.
    pub searches: u64,
}

impl TrafficReport {
    /// Mean header bytes per delivered packet (setups amortized in).
    pub fn bytes_per_packet(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.header_bytes as f64 / self.packets as f64
    }
}

/// Runs the model against a network. Deterministic for a given
/// `(network state, model)` pair.
pub fn run_traffic(net: &mut OrwgNetwork, topo: &Topology, model: &TrafficModel) -> TrafficReport {
    let mut rng = SmallRng::seed_from_u64(model.seed);
    let n = topo.num_ads() as u32;
    let hot: Vec<u32> = (0..n).filter(|x| x % 10 == 7).collect();
    let mut live: HashMap<FlowSpec, HandleId> = HashMap::new();
    let mut report = TrafficReport {
        sessions: model.sessions,
        ..TrafficReport::default()
    };
    let searches_before = net.total_searches();

    for _ in 0..model.sessions {
        // Pick a flow with skewed destination popularity.
        let src = AdId(rng.gen_range(0..n));
        let dst = loop {
            let d = if rng.gen_bool(model.hot_fraction) && !hot.is_empty() {
                AdId(hot[rng.gen_range(0..hot.len())])
            } else {
                AdId(rng.gen_range(0..n))
            };
            if d != src {
                break d;
            }
        };
        let flow = FlowSpec::best_effort(src, dst);

        // Reuse the live policy route when one exists (the paper's
        // long-lived-route expectation), otherwise set up.
        let handle = match live.get(&flow) {
            Some(&h) => h,
            None => match net.open(&flow) {
                Ok(setup) => {
                    report.setups += 1;
                    report.header_bytes += setup.header_bytes as u64;
                    live.insert(flow, setup.handle);
                    setup.handle
                }
                Err(OpenError::NoRoute) => {
                    report.unroutable += 1;
                    continue;
                }
                Err(e) => panic!("unexpected setup failure: {e:?}"),
            },
        };

        let burst = rng.gen_range(1..=model.packets_per_session.max(1) * 2 - 1);
        let mut h = handle;
        for _ in 0..burst {
            match net.send(h) {
                Ok(d) => {
                    report.packets += 1;
                    report.header_bytes += d.header_bytes as u64;
                }
                Err(SendError::Dropped(DataError::UnknownHandle { .. }))
                | Err(SendError::UnknownFlow) => {
                    // A gateway evicted our handle: re-setup and retry.
                    match net.open(&flow) {
                        Ok(setup) => {
                            report.resetups += 1;
                            report.header_bytes += setup.header_bytes as u64;
                            h = setup.handle;
                            live.insert(flow, h);
                        }
                        Err(_) => break,
                    }
                }
                Err(e) => panic!("unexpected send failure: {e:?}"),
            }
        }

        if rng.gen_bool(model.teardown_prob) {
            net.teardown(h);
            live.remove(&flow);
        }
    }
    report.searches = net.total_searches() - searches_before;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::Strategy;
    use adroute_policy::PolicyDb;
    use adroute_topology::generate::ring;

    fn net(handle_capacity: usize) -> (OrwgNetwork, Topology) {
        let topo = ring(10);
        let db = PolicyDb::permissive(&topo);
        let n = OrwgNetwork::converged_with(
            &topo,
            &db,
            Strategy::Cached { capacity: 1024 },
            handle_capacity,
        );
        (n, topo)
    }

    #[test]
    fn traffic_runs_and_delivers() {
        let (mut n, topo) = net(65536);
        let model = TrafficModel {
            sessions: 200,
            seed: 1,
            ..Default::default()
        };
        let r = run_traffic(&mut n, &topo, &model);
        assert_eq!(r.sessions, 200);
        assert_eq!(r.unroutable, 0, "permissive ring must route everything");
        assert!(r.packets > 0);
        assert!(r.setups > 0);
        assert_eq!(r.resetups, 0, "huge handle caches never evict");
        assert!(r.bytes_per_packet() > 0.0);
    }

    #[test]
    fn route_reuse_keeps_setups_below_sessions() {
        let (mut n, topo) = net(65536);
        let model = TrafficModel {
            sessions: 400,
            teardown_prob: 0.0,
            hot_fraction: 0.9,
            seed: 2,
            ..Default::default()
        };
        let r = run_traffic(&mut n, &topo, &model);
        assert!(
            r.setups < r.sessions as u64 / 2,
            "hot destinations should reuse routes: {} setups / {} sessions",
            r.setups,
            r.sessions
        );
        // Synthesis is cached too: distinct classes bound the searches.
        assert!(r.searches <= 10 * 9);
    }

    #[test]
    fn tiny_gateway_caches_force_resetups() {
        let (mut n, topo) = net(2);
        let model = TrafficModel {
            sessions: 300,
            teardown_prob: 0.0,
            seed: 3,
            ..Default::default()
        };
        let r = run_traffic(&mut n, &topo, &model);
        assert!(r.resetups > 0, "capacity-2 gateway caches must churn");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut n, topo) = net(128);
            let model = TrafficModel {
                sessions: 150,
                seed: 9,
                ..Default::default()
            };
            let r = run_traffic(&mut n, &topo, &model);
            (r.setups, r.resetups, r.packets, r.header_bytes, r.searches)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unroutable_sessions_counted() {
        let topo = ring(6);
        let mut db = PolicyDb::permissive(&topo);
        // Cut the ring policy-wise: two opposite ADs deny all transit.
        db.set_policy(adroute_policy::TransitPolicy::deny_all(AdId(1)));
        db.set_policy(adroute_policy::TransitPolicy::deny_all(AdId(4)));
        let mut n = OrwgNetwork::converged(&topo, &db);
        let model = TrafficModel {
            sessions: 200,
            seed: 5,
            ..Default::default()
        };
        let r = run_traffic(&mut n, &topo, &model);
        assert!(r.unroutable > 0);
        assert!(r.packets > 0, "some flows still work");
    }
}
