//! Packet formats of the ORWG data plane and their header-size accounting.
//!
//! The design trades header bytes against state: the **setup packet**
//! carries the full policy route (the ordered AD list) plus the Policy
//! Term each transit AD is expected to honor; once validated, **data
//! packets** carry only a compact handle. Experiment E6 regenerates the
//! amortization curve: per-packet overhead of handle-based forwarding vs
//! carrying the full source route in every packet, against flow length.

use adroute_policy::{FlowSpec, PtId};
use adroute_topology::AdId;
use std::fmt;

/// A policy-route handle, allocated by the source AD at setup time and
/// used as the cache key at every Policy Gateway on the route.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HandleId(pub u64);

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{:x}", self.0)
    }
}

/// The first packet of a policy route: "carries the full policy route
/// (list of ADs) and a Policy Term from each AD that the source AD
/// believes will allow it to use this route" (paper Section 5.4.1).
#[derive(Clone, Debug)]
pub struct SetupPacket {
    /// The traffic class this route is being set up for.
    pub flow: FlowSpec,
    /// The complete AD-level source route, `src … dst`.
    pub route: Vec<AdId>,
    /// For each *transit* AD on the route (in order), the Policy Term the
    /// source claims permits the traversal (`None` = the AD's default
    /// action permits).
    pub claimed_pts: Vec<Option<PtId>>,
    /// The handle subsequent data packets will carry.
    pub handle: HandleId,
}

impl SetupPacket {
    /// Header size in bytes: flow spec (12) + handle (8) + route list +
    /// claimed PT list.
    pub fn header_size(&self) -> usize {
        12 + 8 + 4 * self.route.len() + 6 * self.claimed_pts.len()
    }

    /// Number of transit ADs (= number of validations the setup incurs).
    pub fn transit_count(&self) -> usize {
        self.route.len().saturating_sub(2)
    }
}

/// A data packet on an established policy route: handle plus source AD
/// (the per-packet validation key: "is it coming from the AD specified in
/// the cached PT setup information").
#[derive(Clone, Copy, Debug)]
pub struct DataPacket {
    /// The route handle assigned at setup.
    pub handle: HandleId,
    /// The source AD, checked against the cached setup state.
    pub src: AdId,
}

impl DataPacket {
    /// Header size in bytes: handle (8) + source AD (4).
    pub const HEADER_SIZE: usize = 12;

    /// Header size of the ablation alternative: carrying the full source
    /// route (of `route_len` ADs) in every data packet instead of a
    /// handle.
    pub fn source_route_header_size(route_len: usize) -> usize {
        12 + 4 * route_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::FlowSpec;

    #[test]
    fn setup_sizes_scale_with_route() {
        let flow = FlowSpec::best_effort(AdId(0), AdId(3));
        let short = SetupPacket {
            flow,
            route: vec![AdId(0), AdId(3)],
            claimed_pts: vec![],
            handle: HandleId(1),
        };
        let long = SetupPacket {
            flow,
            route: vec![AdId(0), AdId(1), AdId(2), AdId(3)],
            claimed_pts: vec![None, None],
            handle: HandleId(1),
        };
        assert!(long.header_size() > short.header_size());
        assert_eq!(short.transit_count(), 0);
        assert_eq!(long.transit_count(), 2);
    }

    #[test]
    fn data_header_is_constant_and_small() {
        assert_eq!(DataPacket::HEADER_SIZE, 12);
        // The handle pays off once routes exceed zero transit hops.
        assert!(DataPacket::source_route_header_size(5) > DataPacket::HEADER_SIZE);
        assert_eq!(DataPacket::source_route_header_size(0), 12);
    }

    #[test]
    fn handle_display() {
        assert_eq!(HandleId(255).to_string(), "hff");
    }
}
