//! The ORWG control plane: flooding of policy-bearing link-state
//! advertisements over the simulation engine.
//!
//! This is deliberately thin: unlike the hop-by-hop link-state design
//! (Section 5.3), no per-flow computation happens in routers at all. The
//! flooded database is handed to the AD's Route Server
//! ([`crate::synthesis::RouteServer`]); transit ADs never compute routes.

use adroute_policy::PolicyDb;
use adroute_protocols::linkstate::{FloodMsg, Flooder};
use adroute_sim::{Ctx, Engine, Protocol};
use adroute_topology::{AdId, AdLevel, LinkId, Topology};

/// Protocol configuration: what each AD advertises.
#[derive(Clone, Debug)]
pub struct OrwgProtocol {
    /// Ground-truth per-AD policies; each router advertises **its own**
    /// entry in its LSAs.
    pub policies: PolicyDb,
    /// Hierarchy level per AD (advertised for view reconstruction).
    pub levels: Vec<AdLevel>,
}

impl OrwgProtocol {
    /// Builds the configuration from a topology and its policies.
    pub fn new(topo: &Topology, policies: PolicyDb) -> OrwgProtocol {
        OrwgProtocol {
            policies,
            levels: topo.ads().map(|a| a.level).collect(),
        }
    }
}

/// Per-AD state: just the flooder.
#[derive(Clone, Debug)]
pub struct OrwgRouter {
    /// Flooding machinery and the local database copy.
    pub flooder: Flooder,
}

impl Protocol for OrwgProtocol {
    type Router = OrwgRouter;
    type Msg = FloodMsg;

    fn make_router(&self, topo: &Topology, ad: AdId) -> OrwgRouter {
        OrwgRouter {
            flooder: Flooder::new(ad, topo.num_ads()),
        }
    }

    fn on_start(&self, r: &mut OrwgRouter, ctx: &mut Ctx<'_, FloodMsg>) {
        let me = r.flooder.me;
        r.flooder.originate(
            ctx,
            self.levels[me.index()],
            self.policies.policy(me).clone(),
        );
    }

    fn on_message(
        &self,
        r: &mut OrwgRouter,
        ctx: &mut Ctx<'_, FloodMsg>,
        from: AdId,
        _link: LinkId,
        msg: FloodMsg,
    ) {
        r.flooder.handle(ctx, from, msg);
    }

    fn on_link_event(
        &self,
        r: &mut OrwgRouter,
        ctx: &mut Ctx<'_, FloodMsg>,
        _link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        let me = r.flooder.me;
        r.flooder.originate(
            ctx,
            self.levels[me.index()],
            self.policies.policy(me).clone(),
        );
        if up {
            // Database exchange on the fresh adjacency (see
            // `Flooder::resync`): heals partitions.
            r.flooder.resync(ctx, neighbor);
        }
    }

    fn msg_size(&self, msg: &FloodMsg) -> usize {
        msg.encoded_size()
    }
}

/// Convenience: runs the flooding control plane to quiescence and returns
/// the converged engine.
pub fn converge_control_plane(topo: Topology, policies: PolicyDb) -> Engine<OrwgProtocol> {
    let proto = OrwgProtocol::new(&topo, policies);
    let mut e = Engine::new(topo, proto);
    e.run_to_quiescence();
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::{ring, HierarchyConfig};

    #[test]
    fn floods_everywhere() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let e = converge_control_plane(topo, db);
        for ad in e.topo().ad_ids() {
            assert_eq!(e.router(ad).flooder.db.len(), 6);
        }
    }

    #[test]
    fn views_are_identical_after_convergence() {
        let topo = HierarchyConfig::figure1().generate();
        let db = adroute_policy::workload::PolicyWorkload::default_mix(2).generate(&topo);
        let e = converge_control_plane(topo.clone(), db);
        let (ref_topo, ref_db) = e.router(AdId(0)).flooder.db.view();
        assert_eq!(ref_topo.num_links(), topo.num_links());
        for ad in e.topo().ad_ids() {
            let (t, d) = e.router(ad).flooder.db.view();
            assert_eq!(t.num_links(), ref_topo.num_links(), "{ad} diverges");
            assert_eq!(d.total_terms(), ref_db.total_terms());
        }
    }

    #[test]
    fn reorigination_after_failure_updates_views() {
        let topo = ring(5);
        let db = PolicyDb::permissive(&topo);
        let mut e = converge_control_plane(topo, db);
        let l = e.topo().link_between(AdId(0), AdId(1)).unwrap();
        let t = e.now().plus_us(1000);
        e.schedule_link_change(l, false, t);
        e.run_to_quiescence();
        for ad in e.topo().ad_ids() {
            let (view, _) = e.router(ad).flooder.db.view();
            assert!(
                view.link_between(AdId(0), AdId(1)).is_none(),
                "{ad} still believes the dead link exists"
            );
        }
    }
}
