//! Overload-robust route serving: admission control, the brownout ladder,
//! deadline-budgeted client retries, and the stress-test driver.
//!
//! The paper names ORWG route synthesis as *the* open scaling problem —
//! "precomputation of all policy routes in a large internet is
//! computationally intractable, while on demand computation may introduce
//! excessive latency at setup time". This module treats the Route Server
//! as what it would be in deployment: a serving system that must survive
//! an open storm. Three mechanisms compose:
//!
//! 1. **Admission control** ([`AdmissionController`]): each Route Server
//!    fronts a bounded open queue. Beyond capacity, opens are *shed* with
//!    an explicit NACK carrying a retry-after hint — never silently
//!    dropped.
//! 2. **Brownout ladder** ([`BrownoutRung`]): as queue depth and head age
//!    cross watermarks, the server downgrades the work it performs per
//!    open — full synthesis with spare routes, then cached-route fast
//!    path, then stored-state-only (no search at all) — trading route
//!    quality for throughput so goodput plateaus instead of collapsing.
//!    Shedding is the ladder's fourth, implicit rung.
//! 3. **Deadline-budgeted retries** ([`RetryPolicy`]): shed clients back
//!    off exponentially with seeded jitter, honor the server's
//!    retry-after, and abandon (cancelling any partial state) when the
//!    next attempt could not land inside the setup deadline.
//!
//! A Route Server crash ([`crate::network::OrwgNetwork::crash_route_server`])
//! drains the queue and loses all soft state; a warm standby that
//! periodically snapshots the primary's route cache takes over by
//! rebuilding the precomputed table from the flooded view and replaying
//! the snapshot — revalidated entry by entry, so a takeover can never
//! resurrect a route through a quarantined AD.
//!
//! [`run_load_ramp`] is the deterministic driver behind `adroute stress`
//! and experiment E9b: a mini event loop over an
//! [`OpenStorm`](adroute_sim::OpenStorm) arrival schedule, with per-AD
//! service occupancy, an optional mid-storm Route Server outage (reusing
//! [`RouterOutage`] from `sim::faults`), and causal defer→retry→serve
//! chains in the event log.

use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_policy::FlowSpec;
use adroute_sim::{EventId, RouterOutage, SimTime};
use adroute_topology::AdId;

use crate::network::{OpenError, OrwgNetwork, SetupOutcome};

/// Watermarks and bounds for one Route Server's open queue.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum queued opens; offers beyond this are shed.
    pub queue_capacity: usize,
    /// Queue depth up to which the server still performs full synthesis
    /// (with spare routes) per open.
    pub full_depth: usize,
    /// Queue depth up to which the server serves the cached-route fast
    /// path; beyond it, stored-state only.
    pub cached_depth: usize,
    /// Head-of-queue age beyond which the server degrades one extra rung
    /// (overload shows up as waiting even when the queue is short). The
    /// degrade is proportional: each further multiple of the watermark
    /// costs another rung, until the ladder bottoms out at stored-only.
    pub age_watermark_us: u64,
    /// Retry-after hint attached to every shed NACK.
    pub retry_after_us: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 64,
            full_depth: 8,
            cached_depth: 24,
            age_watermark_us: 5_000,
            retry_after_us: 10_000,
        }
    }
}

/// The serving rung the brownout ladder selects for one admitted open.
/// Shedding — the fourth rung — happens at the admission edge and is
/// represented by the NACK, not by a variant here.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BrownoutRung {
    /// Full synthesis plus spare routes (the `open_repairable` quality).
    Full,
    /// Cached-route fast path: one search at most, no spares.
    Cached,
    /// Stored state only — precomputed table or cache hit; a miss sheds
    /// rather than searching.
    Stored,
}

impl BrownoutRung {
    /// Short tag for event logs and report tables.
    pub fn tag(self) -> &'static str {
        match self {
            BrownoutRung::Full => "full",
            BrownoutRung::Cached => "cached",
            BrownoutRung::Stored => "stored",
        }
    }

    fn degrade(self) -> BrownoutRung {
        match self {
            BrownoutRung::Full => BrownoutRung::Cached,
            BrownoutRung::Cached | BrownoutRung::Stored => BrownoutRung::Stored,
        }
    }
}

/// One open waiting in (or returned by) a Route Server's admission queue.
#[derive(Clone, Copy, Debug)]
pub struct PendingOpen {
    /// The traffic class to open.
    pub flow: FlowSpec,
    /// When this attempt was offered to the admission controller.
    pub offered_at: SimTime,
    /// When the client first asked (attempt 0) — shed latency is measured
    /// from here.
    pub arrival: SimTime,
    /// The client's absolute setup deadline; an open still queued past it
    /// is cancelled unserved.
    pub deadline: SimTime,
    /// Retry attempt number (0 = first offer).
    pub attempt: u32,
    /// Load-ramp phase the arrival belongs to (report attribution).
    pub phase: usize,
    /// Causal parent for the defer/admit events of this attempt.
    pub cause: Option<EventId>,
}

/// Cumulative admission counters for one Route Server.
#[derive(Clone, Copy, Default, Debug)]
pub struct AdmissionStats {
    /// Opens offered.
    pub offered: u64,
    /// Opens queued (admitted to wait).
    pub admitted: u64,
    /// Opens shed at the admission edge.
    pub shed: u64,
}

/// The bounded open queue fronting one Route Server.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    queue: VecDeque<PendingOpen>,
    /// Cumulative counters.
    pub stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller with the given watermarks.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// The configured watermarks.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Offers one open. `Ok(depth)` queues it and reports the depth after
    /// enqueue; `Err(retry_after_us)` sheds it.
    pub fn offer(&mut self, open: PendingOpen) -> Result<usize, u64> {
        self.stats.offered += 1;
        if self.queue.len() >= self.cfg.queue_capacity {
            self.stats.shed += 1;
            return Err(self.cfg.retry_after_us);
        }
        self.queue.push_back(open);
        self.stats.admitted += 1;
        Ok(self.queue.len())
    }

    /// The rung the ladder currently selects, from queue depth and
    /// head-of-queue age at `now`. Age degrades proportionally: one rung
    /// per full watermark the head has waited beyond admission (ages in
    /// `(w, 2w]` cost one rung, `(2w, 3w]` two), so a server that falls
    /// far behind reaches stored-only service without waiting for depth
    /// to catch up.
    pub fn rung(&self, now: SimTime) -> BrownoutRung {
        let depth = self.queue.len();
        let mut rung = if depth <= self.cfg.full_depth {
            BrownoutRung::Full
        } else if depth <= self.cfg.cached_depth {
            BrownoutRung::Cached
        } else {
            BrownoutRung::Stored
        };
        if let Some(head) = self.queue.front() {
            let age = now.as_us().saturating_sub(head.offered_at.as_us());
            // Integer form of "one rung per started watermark beyond the
            // first": 0 steps for age <= w, then +1 per multiple of w.
            let steps = age.saturating_sub(1) / self.cfg.age_watermark_us.max(1);
            // The ladder has three rungs, so two steps saturate it.
            for _ in 0..steps.min(2) {
                rung = rung.degrade();
            }
        }
        rung
    }

    /// Rewrites the causal parent of the most recently queued open —
    /// the setup-defer record is emitted *after* enqueue, and the
    /// eventual admit must chain to it.
    pub fn set_back_cause(&mut self, cause: Option<EventId>) {
        if cause.is_some() {
            if let Some(o) = self.queue.back_mut() {
                o.cause = cause;
            }
        }
    }

    /// Pops the oldest queued open.
    pub fn pop(&mut self) -> Option<PendingOpen> {
        self.queue.pop_front()
    }

    /// Empties the queue (Route Server crash), returning the cancelled
    /// opens oldest-first.
    pub fn drain(&mut self) -> Vec<PendingOpen> {
        self.queue.drain(..).collect()
    }
}

/// Client-side retry behavior for shed opens: jittered exponential
/// backoff, bounded by the setup deadline and an attempt cap, honoring
/// the server's retry-after hint.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First backoff, µs (doubles per attempt).
    pub base_backoff_us: u64,
    /// Backoff growth cap, µs.
    pub max_backoff_us: u64,
    /// Uniform jitter added on top, `[0, jitter_us)`, drawn from the
    /// driver's seeded RNG in event order (deterministic).
    pub jitter_us: u64,
    /// Total attempts allowed (first offer included).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_backoff_us: 2_000,
            max_backoff_us: 64_000,
            jitter_us: 1_000,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The wait before re-offering after attempt number `attempt` was
    /// shed: the exponential backoff or the server's retry-after,
    /// whichever is larger, plus `jitter` (already drawn, `< jitter_us`).
    pub fn wait_us(&self, attempt: u32, retry_after_us: u64, jitter: u64) -> u64 {
        let exp = self
            .base_backoff_us
            .saturating_mul(1 << attempt.min(16))
            .min(self.max_backoff_us);
        exp.max(retry_after_us) + jitter
    }
}

/// What [`OrwgNetwork::offer_open`] decided at the admission edge.
#[derive(Clone, Copy, Debug)]
pub enum AdmissionVerdict {
    /// Queued at the given depth; [`OrwgNetwork::serve_next`] will reach
    /// it. `event` is the setup-defer record (causal parent of the
    /// eventual admit).
    Queued {
        /// Queue depth after enqueue.
        depth: usize,
        /// The setup-defer event id, if the log is enabled.
        event: Option<EventId>,
    },
    /// Shed with a NACK; the open is handed back for the client's retry
    /// logic. `event` is the setup-shed record (causal parent of the
    /// retry).
    Shed {
        /// The rejected open, returned to the client.
        open: PendingOpen,
        /// Server's retry-after hint.
        retry_after_us: u64,
        /// The setup-shed event id, if the log is enabled.
        event: Option<EventId>,
    },
}

/// What serving the head of an admission queue produced.
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// The open was served and the route installed.
    Served {
        /// The open that was served.
        open: PendingOpen,
        /// The rung it was served on.
        rung: BrownoutRung,
        /// The installed route's setup outcome.
        setup: SetupOutcome,
        /// The setup-admit event id (parent of the route-setup span).
        admit: Option<EventId>,
    },
    /// The stored rung had nothing for this flow: shed mid-queue (the
    /// server cannot afford a search), NACK with retry-after.
    Shed {
        /// The open handed back to the client.
        open: PendingOpen,
        /// Server's retry-after hint.
        retry_after_us: u64,
        /// The setup-shed event id.
        event: Option<EventId>,
    },
    /// The view holds no legal route — an answer, not congestion.
    NoRoute {
        /// The answered open.
        open: PendingOpen,
        /// The rung that produced the answer.
        rung: BrownoutRung,
    },
    /// The setup walk failed (dead link or refusing gateway).
    Failed {
        /// The failed open.
        open: PendingOpen,
        /// The rung that attempted it.
        rung: BrownoutRung,
        /// Why the walk failed.
        error: OpenError,
    },
    /// The open's deadline passed while it queued: cancelled unserved,
    /// before any synthesis was paid for.
    Expired {
        /// The cancelled open.
        open: PendingOpen,
    },
}

/// Sharded, batched Route Server service (`adroute stress --sharded`).
///
/// Service semantics per open are unchanged — the batch path is proven
/// byte-identical to a [`OrwgNetwork::serve_next`] loop — but queued
/// cached-rung opens sharing a destination shard and QoS/policy class
/// are answered by one multi-destination sweep, and idle service slots
/// refill invalidated cache entries in the background.
///
/// [`OrwgNetwork::serve_next`]: crate::network::OrwgNetwork::serve_next
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Destination shards (contiguous AD regions) per batched sweep.
    pub shards: usize,
    /// Opens served per service slot (expired pops ride along free).
    pub max_batch: usize,
    /// Background cache refills attempted per idle serve slot.
    pub refill_budget: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 8,
            max_batch: 16,
            refill_budget: 4,
        }
    }
}

/// Configuration of one stress run (`adroute stress`, experiment E9b).
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Per-open setup deadline, µs from first arrival.
    pub deadline_us: u64,
    /// Client retry behavior.
    pub retry: RetryPolicy,
    /// Server admission watermarks (installed on every AD).
    pub admission: AdmissionConfig,
    /// Seed for client-side retry jitter.
    pub seed: u64,
    /// Route Server service time for a full-rung open, µs.
    pub service_full_us: u64,
    /// Service time for a cached-rung open, µs.
    pub service_cached_us: u64,
    /// Service time for a stored-rung open (including a stored-miss
    /// shed), µs.
    pub service_stored_us: u64,
    /// Optional mid-storm Route Server outage: `ad`'s server crashes at
    /// `down_at` and its warm standby takes over at `up_at`.
    pub crash: Option<RouterOutage>,
    /// Warm-standby sync period, ms (0 disables sync; the takeover then
    /// rebuilds from the flooded view alone).
    pub standby_sync_ms: u64,
    /// Sharded, batched service. `None` serves one open per slot through
    /// the monolithic [`OrwgNetwork::serve_next`] path.
    ///
    /// [`OrwgNetwork::serve_next`]: crate::network::OrwgNetwork::serve_next
    pub sharding: Option<ShardConfig>,
}

impl Default for StressConfig {
    fn default() -> StressConfig {
        StressConfig {
            deadline_us: 200_000,
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::default(),
            seed: 0,
            service_full_us: 400,
            service_cached_us: 40,
            service_stored_us: 20,
            crash: None,
            standby_sync_ms: 10,
            sharding: None,
        }
    }
}

/// Per-phase outcome counters of a stress run. An open's outcome is
/// attributed to the phase of its *arrival*, however many retries later
/// it resolved.
#[derive(Clone, Copy, Default, Debug)]
pub struct PhaseReport {
    /// First-attempt arrivals in this phase.
    pub offered: u64,
    /// Opens served (any rung).
    pub served: u64,
    /// Served on the full rung.
    pub served_full: u64,
    /// Served on the cached rung.
    pub served_cached: u64,
    /// Served on the stored rung.
    pub served_stored: u64,
    /// Shed NACKs issued (counts every shed attempt, so it can exceed
    /// `offered`).
    pub shed: u64,
    /// Opens abandoned: deadline or attempt budget exhausted.
    pub abandoned: u64,
    /// Opens answered "no legal route".
    pub no_route: u64,
    /// Setup walks that failed (dead link / refusing gateway).
    pub failed: u64,
    /// Phase length, µs.
    pub duration_us: u64,
}

impl PhaseReport {
    /// Opens served per second of simulated time.
    pub fn goodput_per_sec(&self) -> u64 {
        (self.served * 1_000_000)
            .checked_div(self.duration_us)
            .unwrap_or(0)
    }
}

/// The crash/failover timeline of a stress run.
#[derive(Clone, Copy, Debug)]
pub struct FailoverReport {
    /// The AD whose Route Server crashed.
    pub ad: AdId,
    /// When it crashed.
    pub crashed_at: SimTime,
    /// When the standby took over.
    pub takeover_at: SimTime,
    /// Queued opens the crash cancelled (clients retried them).
    pub cancelled: u64,
    /// Cache entries the standby accepted from its last sync.
    pub warmed: u64,
}

/// One shed→retry→admit causal chain, by event id, proving shed opens
/// come back and get served (visible in `adroute stress --trace`).
#[derive(Clone, Copy, Debug)]
pub struct ExemplarChain {
    /// The setup-shed NACK.
    pub shed: EventId,
    /// The client's retry decision.
    pub retry: EventId,
    /// The eventual admit that served the open.
    pub admit: EventId,
}

/// Everything a stress run produced.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// Per-phase outcomes, in phase order.
    pub phases: Vec<PhaseReport>,
    /// Total first-attempt arrivals.
    pub offered: u64,
    /// Total opens served.
    pub served: u64,
    /// Total shed NACKs issued.
    pub shed: u64,
    /// Total opens abandoned.
    pub abandoned: u64,
    /// Total "no legal route" answers.
    pub no_route: u64,
    /// Total failed setup walks.
    pub failed: u64,
    /// Total retry attempts scheduled.
    pub retries: u64,
    /// Median queueing wait of admitted opens, µs.
    pub p50_wait_us: u64,
    /// 99th-percentile queueing wait, µs.
    pub p99_wait_us: u64,
    /// Crash/failover timeline, when the run had an outage.
    pub failover: Option<FailoverReport>,
    /// An exemplar defer→retry→serve chain, when one occurred with the
    /// event log enabled.
    pub chain: Option<ExemplarChain>,
}

enum Ev {
    Offer(PendingOpen),
    Serve(AdId),
    Crash(AdId),
    Failover(AdId),
    Sync(AdId),
}

struct HeapEv {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the driver needs min-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Driver<'a> {
    net: &'a mut OrwgNetwork,
    cfg: &'a StressConfig,
    heap: BinaryHeap<HeapEv>,
    seq: u64,
    rng: SmallRng,
    next_free: Vec<SimTime>,
    serve_scheduled: Vec<bool>,
    phases: Vec<PhaseReport>,
    retries: u64,
    failover: Option<FailoverReport>,
    /// `(shed, retry, flow, attempt)` awaiting its serve to complete the
    /// exemplar chain.
    chain_candidate: Option<(EventId, EventId, FlowSpec, u32)>,
    chain: Option<ExemplarChain>,
}

impl<'a> Driver<'a> {
    fn push(&mut self, at: SimTime, ev: Ev) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(HeapEv { at, seq, ev });
    }

    fn service_us(&self, rung: BrownoutRung) -> u64 {
        match rung {
            BrownoutRung::Full => self.cfg.service_full_us,
            BrownoutRung::Cached => self.cfg.service_cached_us,
            BrownoutRung::Stored => self.cfg.service_stored_us,
        }
    }

    /// Client reaction to a shed NACK (or a crash-cancelled open):
    /// schedule a deadline-budgeted retry, or abandon.
    fn on_shed(&mut self, now: SimTime, open: PendingOpen, retry_after_us: u64) {
        self.phases[open.phase].shed += 1;
        let next_attempt = open.attempt + 1;
        let jitter = self.rng.gen_range(0..self.cfg.retry.jitter_us.max(1));
        let wait = self.cfg.retry.wait_us(open.attempt, retry_after_us, jitter);
        let retry_at = now.plus_us(wait);
        if next_attempt >= self.cfg.retry.max_attempts || retry_at >= open.deadline {
            self.phases[open.phase].abandoned += 1;
            self.net.abandon_open(
                &open.flow,
                u64::from(next_attempt),
                open.arrival,
                open.cause,
            );
        } else {
            self.retries += 1;
            let retry_id = self
                .net
                .note_retry(&open.flow, next_attempt, wait, open.cause);
            if self.chain.is_none() && self.chain_candidate.is_none() {
                if let (Some(s), Some(r)) = (open.cause, retry_id) {
                    self.chain_candidate = Some((s, r, open.flow, next_attempt));
                }
            }
            self.push(
                retry_at,
                Ev::Offer(PendingOpen {
                    offered_at: retry_at,
                    attempt: next_attempt,
                    cause: retry_id,
                    ..open
                }),
            );
        }
    }

    fn kick_server(&mut self, now: SimTime, ad: AdId) {
        if !self.serve_scheduled[ad.index()] {
            self.serve_scheduled[ad.index()] = true;
            let at = now.max(self.next_free[ad.index()]);
            self.push(at, Ev::Serve(ad));
        }
    }

    fn on_offer(&mut self, now: SimTime, open: PendingOpen) {
        if open.attempt == 0 {
            self.phases[open.phase].offered += 1;
        }
        let src = open.flow.src;
        match self.net.offer_open(open) {
            AdmissionVerdict::Queued { .. } => self.kick_server(now, src),
            AdmissionVerdict::Shed {
                open,
                retry_after_us,
                event,
            } => {
                let open = PendingOpen {
                    cause: event.or(open.cause),
                    ..open
                };
                self.on_shed(now, open, retry_after_us);
            }
        }
    }

    /// Phase/chain/retry bookkeeping for one serve outcome. Returns the
    /// rung whose service time the slot must charge; `None` for expired
    /// opens (cancellation is free — the deadline check precedes any
    /// synthesis work).
    fn record_outcome(&mut self, now: SimTime, outcome: ServeOutcome) -> Option<BrownoutRung> {
        let rung = match &outcome {
            ServeOutcome::Expired { open } => {
                self.phases[open.phase].abandoned += 1;
                return None;
            }
            ServeOutcome::Served { rung, .. }
            | ServeOutcome::NoRoute { rung, .. }
            | ServeOutcome::Failed { rung, .. } => *rung,
            ServeOutcome::Shed { .. } => BrownoutRung::Stored,
        };
        match outcome {
            ServeOutcome::Served {
                open, rung, admit, ..
            } => {
                let p = &mut self.phases[open.phase];
                p.served += 1;
                match rung {
                    BrownoutRung::Full => p.served_full += 1,
                    BrownoutRung::Cached => p.served_cached += 1,
                    BrownoutRung::Stored => p.served_stored += 1,
                }
                if let Some((shed, retry, flow, attempt)) = self.chain_candidate {
                    if self.chain.is_none() && flow == open.flow && attempt == open.attempt {
                        if let Some(admit) = admit {
                            self.chain = Some(ExemplarChain { shed, retry, admit });
                        }
                        self.chain_candidate = None;
                    }
                }
            }
            ServeOutcome::Shed {
                open,
                retry_after_us,
                event,
            } => {
                let open = PendingOpen {
                    cause: event.or(open.cause),
                    ..open
                };
                self.on_shed(now, open, retry_after_us);
            }
            ServeOutcome::NoRoute { open, .. } => self.phases[open.phase].no_route += 1,
            ServeOutcome::Failed { open, .. } => self.phases[open.phase].failed += 1,
            ServeOutcome::Expired { .. } => unreachable!("handled above"),
        }
        Some(rung)
    }

    fn on_serve(&mut self, now: SimTime, ad: AdId) {
        if let Some(shard) = self.cfg.sharding {
            return self.on_serve_sharded(now, ad, shard);
        }
        loop {
            let Some(outcome) = self.net.serve_next(ad) else {
                self.serve_scheduled[ad.index()] = false;
                return;
            };
            let Some(rung) = self.record_outcome(now, outcome) else {
                // Cancellation is free: keep popping within this slot.
                continue;
            };
            self.next_free[ad.index()] = now.plus_us(self.service_us(rung));
            if self.net.admission(ad).is_empty() {
                self.serve_scheduled[ad.index()] = false;
            } else {
                let at = self.next_free[ad.index()];
                self.push(at, Ev::Serve(ad));
            }
            return;
        }
    }

    /// One sharded service slot: a batch of opens answered at once,
    /// their service times charged back to back, and a drained queue's
    /// idle slot spent refilling cache entries view changes invalidated.
    ///
    /// Cached-rung batch members share multi-destination sweeps, so the
    /// slot pays the cached (one-search) price once per compatibility
    /// class swept and a stored-lookup price for every open fanned out of
    /// those sweeps or answered from stored state — the batch's entire
    /// point is that the fan-out is a table write, not a search. The
    /// charge keys off the shard-*invariant* class count, not the actual
    /// sweep count: a finer shard partition splits sweeps to parallelize
    /// them, and letting that split change simulated time would make the
    /// shard count observable in every downstream admission decision.
    fn on_serve_sharded(&mut self, now: SimTime, ad: AdId, shard: ShardConfig) {
        let classes_before = self.net.server(ad).sweep.classes;
        let outcomes = self.net.serve_batch(ad, shard);
        let classes = self.net.server(ad).sweep.classes - classes_before;
        let mut busy_us = 0;
        let mut cached = 0u64;
        for outcome in outcomes {
            if let Some(rung) = self.record_outcome(now, outcome) {
                if rung == BrownoutRung::Cached {
                    cached += 1;
                } else {
                    busy_us += self.service_us(rung);
                }
            }
        }
        busy_us += classes.min(cached) * self.cfg.service_cached_us
            + cached.saturating_sub(classes) * self.cfg.service_stored_us;
        self.next_free[ad.index()] = now.plus_us(busy_us);
        if self.net.admission(ad).is_empty() {
            self.serve_scheduled[ad.index()] = false;
            self.net.background_refill(ad, shard.refill_budget);
        } else {
            let at = self.next_free[ad.index()];
            self.push(at, Ev::Serve(ad));
        }
    }
}

/// Runs one deterministic load ramp: the storm's arrivals offer opens to
/// their source ADs' admission queues, servers drain them under the
/// brownout ladder with per-rung service occupancy, shed clients retry
/// under the deadline budget, and an optional mid-storm Route Server
/// outage exercises standby failover. The network's clock follows the
/// driver, so every logged event is correctly stamped and chained.
pub fn run_load_ramp(
    net: &mut OrwgNetwork,
    storm: &adroute_sim::OpenStorm,
    phase_durations_us: &[u64],
    cfg: &StressConfig,
) -> StressReport {
    let n_ads = net.topo().num_ads();
    let mut admission = cfg.admission;
    if let Some(s) = cfg.sharding {
        // Batch service changes what a service slot means: up to
        // `max_batch` opens drain at once, so the steady-state head age
        // is `max_batch` times the per-open service time. The age
        // watermark detects a server falling behind its slot cadence;
        // left unscaled it would read healthy batching as overload and
        // pin the ladder at stored-only.
        admission.age_watermark_us = admission
            .age_watermark_us
            .saturating_mul(s.max_batch.max(1) as u64);
    }
    net.set_admission(admission);
    net.prof.enter("load_ramp");
    let mut driver = Driver {
        net,
        cfg,
        heap: BinaryHeap::new(),
        seq: 0,
        rng: SmallRng::seed_from_u64(cfg.seed ^ 0x6f76_6572_6c6f_6164), // "overload"
        next_free: vec![SimTime::ZERO; n_ads],
        serve_scheduled: vec![false; n_ads],
        phases: phase_durations_us
            .iter()
            .map(|&d| PhaseReport {
                duration_us: d,
                ..PhaseReport::default()
            })
            .collect(),
        retries: 0,
        failover: None,
        chain_candidate: None,
        chain: None,
    };
    for a in storm.arrivals() {
        driver.push(
            a.at,
            Ev::Offer(PendingOpen {
                flow: FlowSpec::best_effort(a.src, a.dst),
                offered_at: a.at,
                arrival: a.at,
                deadline: a.at.plus_us(cfg.deadline_us),
                attempt: 0,
                phase: a.phase,
                cause: None,
            }),
        );
    }
    if let Some(outage) = cfg.crash {
        driver.push(outage.down_at, Ev::Crash(outage.ad));
        driver.push(outage.up_at, Ev::Failover(outage.ad));
        if cfg.standby_sync_ms > 0 {
            let step = cfg.standby_sync_ms * 1000;
            let mut t = step;
            while SimTime(t) < outage.down_at {
                driver.push(SimTime(t), Ev::Sync(outage.ad));
                t += step;
            }
        }
    }
    while let Some(HeapEv { at, ev, .. }) = driver.heap.pop() {
        driver.net.set_clock(at);
        match ev {
            Ev::Offer(open) => driver.on_offer(at, open),
            Ev::Serve(ad) => driver.on_serve(at, ad),
            Ev::Sync(ad) => {
                driver.net.standby_sync(ad);
            }
            Ev::Crash(ad) => {
                let (cancelled, crash_id) = driver.net.crash_route_server(ad);
                driver.serve_scheduled[ad.index()] = false;
                driver.failover = Some(FailoverReport {
                    ad,
                    crashed_at: at,
                    takeover_at: at,
                    cancelled: cancelled.len() as u64,
                    warmed: 0,
                });
                let retry_after = cfg.admission.retry_after_us;
                for open in cancelled {
                    let open = PendingOpen {
                        cause: crash_id.or(open.cause),
                        ..open
                    };
                    driver.on_shed(at, open, retry_after);
                }
            }
            Ev::Failover(ad) => {
                let warmed = driver.net.failover_route_server(ad);
                if let Some(f) = &mut driver.failover {
                    f.takeover_at = at;
                    f.warmed = warmed as u64;
                }
            }
        }
    }
    driver.net.prof.exit("load_ramp");
    let phases = driver.phases;
    let total = |f: fn(&PhaseReport) -> u64| phases.iter().map(f).sum::<u64>();
    let (p50, p99) = driver
        .net
        .obs
        .metrics
        .histogram("setup_wait_us")
        .map(|h| (h.quantile(0.5), h.quantile(0.99)))
        .unwrap_or((0, 0));
    StressReport {
        offered: total(|p| p.offered),
        served: total(|p| p.served),
        shed: total(|p| p.shed),
        abandoned: total(|p| p.abandoned),
        no_route: total(|p| p.no_route),
        failed: total(|p| p.failed),
        retries: driver.retries,
        p50_wait_us: p50,
        p99_wait_us: p99,
        failover: driver.failover,
        chain: driver.chain,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_at(us: u64) -> PendingOpen {
        PendingOpen {
            flow: FlowSpec::best_effort(AdId(0), AdId(1)),
            offered_at: SimTime(us),
            arrival: SimTime(us),
            deadline: SimTime(us + 100_000),
            attempt: 0,
            phase: 0,
            cause: None,
        }
    }

    #[test]
    fn admission_sheds_past_capacity() {
        let mut ac = AdmissionController::new(AdmissionConfig {
            queue_capacity: 2,
            ..AdmissionConfig::default()
        });
        assert_eq!(ac.offer(open_at(0)), Ok(1));
        assert_eq!(ac.offer(open_at(1)), Ok(2));
        let cfg = *ac.config();
        assert_eq!(ac.offer(open_at(2)), Err(cfg.retry_after_us));
        assert_eq!(ac.depth(), 2);
        assert_eq!(ac.stats.offered, 3);
        assert_eq!(ac.stats.admitted, 2);
        assert_eq!(ac.stats.shed, 1);
        assert!(ac.pop().is_some());
        assert_eq!(ac.drain().len(), 1);
        assert!(ac.is_empty());
    }

    #[test]
    fn rung_degrades_with_depth_and_age() {
        let cfg = AdmissionConfig {
            queue_capacity: 100,
            full_depth: 2,
            cached_depth: 4,
            age_watermark_us: 1_000,
            retry_after_us: 10_000,
        };
        let mut ac = AdmissionController::new(cfg);
        let now = SimTime(500);
        ac.offer(open_at(0)).unwrap();
        assert_eq!(ac.rung(now), BrownoutRung::Full);
        for i in 1..4 {
            ac.offer(open_at(i)).unwrap();
        }
        assert_eq!(ac.rung(now), BrownoutRung::Cached, "depth 4 > full_depth");
        ac.offer(open_at(4)).unwrap();
        assert_eq!(ac.rung(now), BrownoutRung::Stored, "depth 5 > cached_depth");
        // Head age beyond the watermark degrades one extra rung.
        let mut young = AdmissionController::new(cfg);
        young.offer(open_at(0)).unwrap();
        assert_eq!(young.rung(SimTime(2_000)), BrownoutRung::Cached);
        assert_eq!(young.rung(SimTime(500)), BrownoutRung::Full);
    }

    #[test]
    fn rung_age_degrade_is_proportional() {
        let cfg = AdmissionConfig {
            queue_capacity: 100,
            full_depth: 8,
            cached_depth: 24,
            age_watermark_us: 1_000,
            retry_after_us: 10_000,
        };
        let mut ac = AdmissionController::new(cfg);
        ac.offer(open_at(0)).unwrap(); // head offered at t=0, depth 1 (Full)
                                       // Boundaries are exclusive at each multiple of the watermark.
        assert_eq!(ac.rung(SimTime(1_000)), BrownoutRung::Full, "age == w");
        assert_eq!(
            ac.rung(SimTime(1_001)),
            BrownoutRung::Cached,
            "age in (w, 2w]"
        );
        assert_eq!(ac.rung(SimTime(2_000)), BrownoutRung::Cached, "age == 2w");
        assert_eq!(
            ac.rung(SimTime(2_001)),
            BrownoutRung::Stored,
            "age in (2w, 3w]"
        );
        // Further waiting saturates at the bottom rung.
        assert_eq!(ac.rung(SimTime(999_999)), BrownoutRung::Stored);
        // Proportional degrade composes with the depth-selected rung: a
        // Cached-depth queue reaches Stored after one extra watermark.
        let mut deep = AdmissionController::new(cfg);
        for i in 0..10 {
            deep.offer(open_at(i)).unwrap();
        }
        assert_eq!(deep.rung(SimTime(500)), BrownoutRung::Cached, "depth only");
        assert_eq!(deep.rung(SimTime(1_001)), BrownoutRung::Stored);
        // A zero watermark never divides by zero; it just saturates.
        let mut zero = AdmissionController::new(AdmissionConfig {
            age_watermark_us: 0,
            ..cfg
        });
        zero.offer(open_at(0)).unwrap();
        assert_eq!(zero.rung(SimTime(5)), BrownoutRung::Stored);
    }

    #[test]
    fn retry_backoff_honors_retry_after_and_caps() {
        let rp = RetryPolicy {
            base_backoff_us: 1_000,
            max_backoff_us: 8_000,
            jitter_us: 100,
            max_attempts: 8,
        };
        assert_eq!(rp.wait_us(0, 0, 7), 1_007);
        assert_eq!(rp.wait_us(2, 0, 0), 4_000);
        assert_eq!(rp.wait_us(10, 0, 0), 8_000, "growth must cap");
        assert_eq!(rp.wait_us(0, 50_000, 0), 50_000, "retry-after dominates");
    }

    #[test]
    fn brownout_tags_and_degradation() {
        assert_eq!(BrownoutRung::Full.tag(), "full");
        assert_eq!(BrownoutRung::Full.degrade(), BrownoutRung::Cached);
        assert_eq!(BrownoutRung::Cached.degrade(), BrownoutRung::Stored);
        assert_eq!(BrownoutRung::Stored.degrade(), BrownoutRung::Stored);
    }
}
