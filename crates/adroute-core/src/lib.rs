//! The paper's endorsed architecture (Section 5.4): **link-state source
//! routing with explicit Policy Terms** — the Clark / Open Routing Working
//! Group (ORWG) design that became Inter-Domain Policy Routing (IDPR).
//!
//! The pieces, mapped to the paper's vocabulary:
//!
//! * ADs flood policy-bearing link-state advertisements (the shared
//!   [`adroute_protocols::linkstate`] machinery), giving every AD
//!   "complete knowledge concerning topology and policy".
//! * A **Route Server** per AD ([`synthesis::RouteServer`]) computes
//!   Policy Routes from that view, under one of three synthesis
//!   strategies — pure on-demand, full precomputation, or the hybrid the
//!   paper recommends ("a combination of precomputation and on-demand
//!   computation should be used").
//! * **Policy Gateways** ([`gateway::PolicyGateway`]) validate route
//!   *setup* packets against their AD's local Policy Terms, cache the
//!   result under a **handle**, and then forward data packets that carry
//!   only the handle — "the first packet … acts as a policy route setup
//!   packet"; successive packets avoid both the setup latency and the
//!   source-route header overhead.
//! * [`network::OrwgNetwork`] assembles servers and gateways into a
//!   runnable data plane; [`router::OrwgProtocol`] is the distributed
//!   control plane (flooding) for the simulation engine.
//!
//! What makes this point of the design space attractive — and what the
//! experiments measure — is the division of labour: the **source**
//! controls the entire route (its selection criteria stay private, any
//! legal route is discoverable), while **transit** ADs never compute
//! routes at all; they only validate setups against their own policy.

pub mod dataplane;
pub mod gateway;
pub mod lru;
pub mod mgmt;
pub mod network;
pub mod overload;
pub mod router;
pub mod synthesis;
pub mod traffic;
pub mod vgw;

pub use dataplane::{DataPacket, HandleId, SetupPacket};
pub use gateway::{DataError, PolicyGateway, SetupError};
pub use mgmt::PolicyImpact;
pub use network::{OrwgNetwork, RepairStats, SetupRetryPolicy, ViewMaintenance};
pub use overload::{
    run_load_ramp, AdmissionConfig, AdmissionController, AdmissionStats, AdmissionVerdict,
    BrownoutRung, ExemplarChain, FailoverReport, PendingOpen, PhaseReport, RetryPolicy,
    ServeOutcome, ShardConfig, StressConfig, StressReport,
};
pub use router::OrwgProtocol;
pub use synthesis::{PolicyRoute, RouteServer, Strategy, SynthStats, ViewDelta};
pub use traffic::{run_traffic, TrafficModel, TrafficReport};
pub use vgw::VirtualGateway;
