//! Policy Gateways: per-AD setup validation and handle-based forwarding
//! (paper Section 5.4.1).
//!
//! "The AD's border gateways, referred to as policy gateways (PGs),
//! execute the validation for the AD. In effect, one can view the PGs as
//! containing routing tables that are filled on demand." A setup packet is
//! validated against the AD's *local* Policy Terms; on success the setup
//! state is cached under the packet's handle. Data packets carry only the
//! handle, and the PG performs cheap per-packet validation ("is it coming
//! from the AD specified in the cached PT setup information").
//!
//! The handle cache is bounded ([`PolicyGateway::new`] takes a capacity)
//! with LRU eviction — "policy gateway state management and limitations"
//! is one of the paper's open scaling issues, and experiment E6 sweeps
//! this capacity.

use adroute_policy::{FlowSpec, PtId, TransitPolicy};
use adroute_topology::AdId;

use crate::dataplane::{DataPacket, HandleId, SetupPacket};
use crate::lru::LruCache;

/// Why a setup was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetupError {
    /// The validating AD does not appear (exactly once, as transit) on
    /// the route.
    NotOnRoute,
    /// The AD's policy denies this traversal.
    PolicyDenied {
        /// The AD that refused.
        ad: AdId,
    },
    /// The setup cited a Policy Term that is not the one the AD's policy
    /// actually selects for this traversal (stale or forged claim).
    PtMismatch {
        /// The AD that detected the mismatch.
        ad: AdId,
    },
    /// The AD's gateway is crashed: it can validate nothing until it
    /// restarts. Sources treat this like a denial and route around.
    GatewayDown {
        /// The AD whose gateway is down.
        ad: AdId,
    },
}

/// Why a data packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataError {
    /// No cached state for the handle (never set up, expired, or
    /// evicted): the source must re-run setup.
    UnknownHandle {
        /// Where the miss occurred.
        at: AdId,
    },
    /// The packet's source AD does not match the cached setup.
    SourceMismatch {
        /// Where the check failed.
        at: AdId,
    },
    /// The gateway is crashed: nothing forwards until it restarts.
    GatewayDown {
        /// The crashed gateway's AD.
        at: AdId,
    },
    /// The cached entry predates the gateway's current incarnation —
    /// setup state from before a crash must never forward data.
    StaleHandle {
        /// Where the stale entry was caught.
        at: AdId,
    },
}

/// Cached per-handle forwarding state at one gateway.
#[derive(Clone, Debug)]
pub struct HandleEntry {
    /// The traffic class set up.
    pub flow: FlowSpec,
    /// AD the packets must arrive from.
    pub prev: AdId,
    /// AD the packets are forwarded to.
    pub next: AdId,
    /// The Policy Term that authorized the setup (None = default action).
    pub pt: Option<PtId>,
    /// Gateway incarnation at install time. An entry from an earlier
    /// incarnation is unconditionally stale: the policy state that
    /// validated it died with the crash.
    pub epoch: u64,
}

/// Counters for gateway work (experiment E5/E6 columns).
#[derive(Clone, Copy, Default, Debug)]
pub struct GatewayStats {
    /// Setup validations that succeeded.
    pub setups_ok: u64,
    /// Setup validations that failed.
    pub setups_rejected: u64,
    /// Data packets forwarded from cache.
    pub data_forwarded: u64,
    /// Data packets dropped.
    pub data_dropped: u64,
    /// Data packets that reached a cached entry from a *previous*
    /// incarnation. Crash handling wipes the cache, so this must stay 0 —
    /// it is a tripwire proving no stale handle ever forwards traffic.
    pub stale_forwards: u64,
}

/// One AD's policy gateway.
#[derive(Clone, Debug)]
pub struct PolicyGateway {
    /// The AD this gateway guards.
    pub ad: AdId,
    handles: LruCache<HandleId, HandleEntry>,
    up: bool,
    epoch: u64,
    /// Work counters.
    pub stats: GatewayStats,
}

impl PolicyGateway {
    /// A gateway with a handle cache of the given capacity.
    pub fn new(ad: AdId, capacity: usize) -> PolicyGateway {
        PolicyGateway {
            ad,
            handles: LruCache::new(capacity),
            up: true,
            epoch: 0,
            stats: GatewayStats::default(),
        }
    }

    /// Number of cached handles.
    pub fn cached_handles(&self) -> usize {
        self.handles.len()
    }

    /// Handles evicted so far (state-pressure measure).
    pub fn evictions(&self) -> u64 {
        self.handles.evictions
    }

    /// Whether the gateway is operational.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Current incarnation number (bumps on every crash).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Crashes the gateway: all soft state (the handle cache) is lost and
    /// the incarnation advances, so anything that somehow survived would
    /// be recognizably stale. Setups and data are refused until
    /// [`PolicyGateway::restart`].
    pub fn crash(&mut self) {
        self.up = false;
        self.epoch += 1;
        self.handles.clear();
    }

    /// Restarts a crashed gateway with an empty cache: every flow through
    /// this AD must re-run setup, exactly as after an eviction.
    pub fn restart(&mut self) {
        self.up = true;
    }

    /// Validates a setup packet against this AD's own policy and, on
    /// success, installs the handle.
    ///
    /// The gateway checks three things, per the paper: that it is a
    /// transit AD on the route, that its local policy permits the
    /// traversal for the packet's traffic class, and that the Policy Term
    /// cited by the source matches the term its policy actually selects.
    pub fn validate_setup(
        &mut self,
        policy: &TransitPolicy,
        setup: &SetupPacket,
    ) -> Result<(), SetupError> {
        debug_assert_eq!(policy.ad, self.ad);
        if !self.up {
            self.stats.setups_rejected += 1;
            return Err(SetupError::GatewayDown { ad: self.ad });
        }
        let Some(pos) = setup.route.iter().position(|&a| a == self.ad) else {
            self.stats.setups_rejected += 1;
            return Err(SetupError::NotOnRoute);
        };
        if pos == 0 || pos == setup.route.len() - 1 {
            self.stats.setups_rejected += 1;
            return Err(SetupError::NotOnRoute);
        }
        let prev = setup.route[pos - 1];
        let next = setup.route[pos + 1];
        let (permit, deciding_pt) = policy.evaluate_with_term(&setup.flow, Some(prev), Some(next));
        if permit.is_none() {
            self.stats.setups_rejected += 1;
            return Err(SetupError::PolicyDenied { ad: self.ad });
        }
        let claimed = setup.claimed_pts.get(pos - 1).copied().flatten();
        if claimed != deciding_pt {
            self.stats.setups_rejected += 1;
            return Err(SetupError::PtMismatch { ad: self.ad });
        }
        self.handles.insert(
            setup.handle,
            HandleEntry {
                flow: setup.flow,
                prev,
                next,
                pt: deciding_pt,
                epoch: self.epoch,
            },
        );
        self.stats.setups_ok += 1;
        Ok(())
    }

    /// Installs a handle for `setup` **without** consulting policy — the
    /// forged-ack misbehavior. A rogue gateway acknowledges setups its
    /// own policy should have rejected, admitting traffic its AD never
    /// agreed to carry; the resulting forwarding-plane path then trips
    /// the policy-violation monitor, since the ground-truth audit still
    /// uses the honest policy. Only route position is checked (a gateway
    /// not on the route cannot even name its prev/next hops).
    pub fn force_install(&mut self, setup: &SetupPacket) -> Result<(), SetupError> {
        if !self.up {
            self.stats.setups_rejected += 1;
            return Err(SetupError::GatewayDown { ad: self.ad });
        }
        let Some(pos) = setup.route.iter().position(|&a| a == self.ad) else {
            self.stats.setups_rejected += 1;
            return Err(SetupError::NotOnRoute);
        };
        if pos == 0 || pos == setup.route.len() - 1 {
            self.stats.setups_rejected += 1;
            return Err(SetupError::NotOnRoute);
        }
        self.handles.insert(
            setup.handle,
            HandleEntry {
                flow: setup.flow,
                prev: setup.route[pos - 1],
                next: setup.route[pos + 1],
                pt: setup.claimed_pts.get(pos - 1).copied().flatten(),
                epoch: self.epoch,
            },
        );
        self.stats.setups_ok += 1;
        Ok(())
    }

    /// Forwards a data packet from cached state: returns the next AD.
    ///
    /// `arrived_from` is the AD the packet physically came from; it must
    /// match both the cached previous AD and the packet's claimed source
    /// lineage (the cheap per-packet validation of the paper).
    pub fn forward_data(
        &mut self,
        pkt: &DataPacket,
        arrived_from: AdId,
    ) -> Result<AdId, DataError> {
        if !self.up {
            self.stats.data_dropped += 1;
            return Err(DataError::GatewayDown { at: self.ad });
        }
        let Some(entry) = self.handles.get(&pkt.handle) else {
            self.stats.data_dropped += 1;
            return Err(DataError::UnknownHandle { at: self.ad });
        };
        if entry.epoch != self.epoch {
            self.stats.stale_forwards += 1;
            self.stats.data_dropped += 1;
            return Err(DataError::StaleHandle { at: self.ad });
        }
        if entry.prev != arrived_from || entry.flow.src != pkt.src {
            self.stats.data_dropped += 1;
            return Err(DataError::SourceMismatch { at: self.ad });
        }
        let next = entry.next;
        self.stats.data_forwarded += 1;
        Ok(next)
    }

    /// Tears down one handle (source-initiated teardown).
    pub fn teardown(&mut self, handle: HandleId) {
        self.handles.remove(&handle);
    }

    /// Flushes every handle whose cached next/prev hop uses the failed
    /// adjacency, or whose flow matches the predicate (policy change).
    pub fn invalidate(&mut self, mut doomed: impl FnMut(&HandleEntry) -> bool) {
        self.handles.retain(|_, e| !doomed(e));
    }

    /// Drops every handle installed for `flow`, returning how many were
    /// removed. This is the cancellation path for abandoned opens: a
    /// client that gives up on its setup deadline must not leave
    /// partially-installed state pinning cache slots along the route.
    pub fn purge_flow(&mut self, flow: &FlowSpec) -> usize {
        let before = self.handles.len();
        self.handles.retain(|_, e| e.flow != *flow);
        before - self.handles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{AdSet, PolicyAction, PolicyCondition};

    fn setup_pkt(route: Vec<AdId>, pts: Vec<Option<PtId>>) -> SetupPacket {
        let flow = FlowSpec::best_effort(route[0], *route.last().unwrap());
        SetupPacket {
            flow,
            route,
            claimed_pts: pts,
            handle: HandleId(7),
        }
    }

    #[test]
    fn valid_setup_installs_handle() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        pg.validate_setup(&policy, &s).unwrap();
        assert_eq!(pg.cached_handles(), 1);
        assert_eq!(pg.stats.setups_ok, 1);
        let next = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap();
        assert_eq!(next, AdId(2));
        assert_eq!(pg.stats.data_forwarded, 1);
    }

    #[test]
    fn denial_rejects_setup() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::deny_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        assert_eq!(
            pg.validate_setup(&policy, &s),
            Err(SetupError::PolicyDenied { ad: AdId(1) })
        );
        assert_eq!(pg.cached_handles(), 0);
        assert_eq!(pg.stats.setups_rejected, 1);
    }

    #[test]
    fn pt_claims_are_checked() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let mut policy = TransitPolicy::deny_all(AdId(1));
        let pt = policy.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Permit { cost: 0 },
        );
        // Claiming "default permits" when a specific term decides: reject.
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        assert_eq!(
            pg.validate_setup(&policy, &s),
            Err(SetupError::PtMismatch { ad: AdId(1) })
        );
        // Correct citation: accept.
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![Some(pt)]);
        pg.validate_setup(&policy, &s).unwrap();
    }

    #[test]
    fn endpoints_cannot_validate() {
        let mut pg = PolicyGateway::new(AdId(0), 8);
        let policy = TransitPolicy::permit_all(AdId(0));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        assert_eq!(pg.validate_setup(&policy, &s), Err(SetupError::NotOnRoute));
        let mut pg9 = PolicyGateway::new(AdId(9), 8);
        let policy9 = TransitPolicy::permit_all(AdId(9));
        assert_eq!(
            pg9.validate_setup(&policy9, &s),
            Err(SetupError::NotOnRoute)
        );
    }

    #[test]
    fn per_packet_source_validation() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        pg.validate_setup(&policy, &s).unwrap();
        // Wrong physical previous hop.
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0),
                },
                AdId(2),
            )
            .unwrap_err();
        assert_eq!(err, DataError::SourceMismatch { at: AdId(1) });
        // Wrong claimed source.
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(5),
                },
                AdId(0),
            )
            .unwrap_err();
        assert_eq!(err, DataError::SourceMismatch { at: AdId(1) });
        assert_eq!(pg.stats.data_dropped, 2);
    }

    #[test]
    fn unknown_handle_demands_resetup() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(42),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap_err();
        assert_eq!(err, DataError::UnknownHandle { at: AdId(1) });
    }

    #[test]
    fn bounded_cache_evicts() {
        let mut pg = PolicyGateway::new(AdId(1), 2);
        let policy = TransitPolicy::permit_all(AdId(1));
        for h in 0..4u64 {
            let mut s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
            s.handle = HandleId(h);
            pg.validate_setup(&policy, &s).unwrap();
        }
        assert_eq!(pg.cached_handles(), 2);
        assert_eq!(pg.evictions(), 2);
        // The earliest handle is gone.
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(0),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownHandle { .. }));
    }

    #[test]
    fn crash_refuses_and_wipes_restart_starts_cold() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        pg.validate_setup(&policy, &s).unwrap();
        pg.crash();
        assert!(!pg.is_up());
        assert_eq!(pg.cached_handles(), 0, "crash must lose soft state");
        assert_eq!(
            pg.validate_setup(&policy, &s),
            Err(SetupError::GatewayDown { ad: AdId(1) })
        );
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap_err();
        assert_eq!(err, DataError::GatewayDown { at: AdId(1) });
        pg.restart();
        assert!(pg.is_up());
        assert_eq!(pg.epoch(), 1);
        // The pre-crash handle is gone: the source must re-run setup.
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap_err();
        assert_eq!(err, DataError::UnknownHandle { at: AdId(1) });
        assert_eq!(
            pg.stats.stale_forwards, 0,
            "no stale handle may ever forward"
        );
        // And a fresh setup works at the new epoch.
        pg.validate_setup(&policy, &s).unwrap();
        assert!(pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0)
                },
                AdId(0)
            )
            .is_ok());
    }

    #[test]
    fn epoch_tripwire_catches_surviving_state() {
        // Plant an entry that (hypothetically) survived a crash by bumping
        // the epoch without the wipe: the tripwire must catch it.
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        pg.validate_setup(&policy, &s).unwrap();
        pg.epoch += 1; // simulate buggy crash handling that kept the cache
        let err = pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(7),
                    src: AdId(0),
                },
                AdId(0),
            )
            .unwrap_err();
        assert_eq!(err, DataError::StaleHandle { at: AdId(1) });
        assert_eq!(pg.stats.stale_forwards, 1);
        assert_eq!(pg.stats.data_forwarded, 0);
    }

    #[test]
    fn purge_flow_drops_only_matching_handles() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        let s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
        pg.validate_setup(&policy, &s).unwrap();
        // A second flow through the same gateway under a different handle.
        let mut other = setup_pkt(vec![AdId(3), AdId(1), AdId(2)], vec![None]);
        other.handle = HandleId(9);
        pg.validate_setup(&policy, &other).unwrap();
        assert_eq!(pg.cached_handles(), 2);
        assert_eq!(pg.purge_flow(&s.flow), 1);
        assert_eq!(pg.cached_handles(), 1);
        assert_eq!(pg.purge_flow(&s.flow), 0, "already purged");
        // The other flow still forwards.
        assert!(pg
            .forward_data(
                &DataPacket {
                    handle: HandleId(9),
                    src: AdId(3)
                },
                AdId(3)
            )
            .is_ok());
    }

    #[test]
    fn teardown_and_invalidation() {
        let mut pg = PolicyGateway::new(AdId(1), 8);
        let policy = TransitPolicy::permit_all(AdId(1));
        for h in 0..3u64 {
            let mut s = setup_pkt(vec![AdId(0), AdId(1), AdId(2)], vec![None]);
            s.handle = HandleId(h);
            pg.validate_setup(&policy, &s).unwrap();
        }
        pg.teardown(HandleId(0));
        assert_eq!(pg.cached_handles(), 2);
        // Invalidate everything using next == AD2 (link 1-2 failed).
        pg.invalidate(|e| e.next == AdId(2));
        assert_eq!(pg.cached_handles(), 0);
    }
}
