//! Policy impact prediction — the network-management tool the paper's
//! Section 6 calls for.
//!
//! "Given the interaction between local policies and the policies of other
//! ADs, it will be possible to specify local policies that will result in
//! poor service … Thus, it will be imperative for these administrators to
//! have available network management tools to assist them in predicting
//! the impact of their policies on the service received from the routing
//! architecture."
//!
//! [`PolicyImpact::assess`] evaluates a *candidate* transit policy for one
//! AD against a traffic sample, **without** deploying it: it re-runs the
//! oracle over the hypothetical policy database and reports what the
//! change would do to the assessing AD itself (transit traffic carried,
//! revenue proxy) and to the internet (flows broken, re-routed, or newly
//! enabled; cost shifts; synthesis work).

use adroute_policy::legality::legal_route;
use adroute_policy::{FlowSpec, PolicyDb, TransitPolicy};
use adroute_topology::{AdId, Topology};

/// The predicted effect of deploying one candidate policy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicyImpact {
    /// Flows evaluated.
    pub flows: usize,
    /// Flows routable before and after.
    pub routable_before: usize,
    /// Flows routable after the change.
    pub routable_after: usize,
    /// Flows that lose their only legal route ("broken").
    pub broken: Vec<FlowSpec>,
    /// Flows that become routable ("enabled").
    pub enabled: Vec<FlowSpec>,
    /// Flows whose best route changes path (still routable).
    pub rerouted: usize,
    /// Flows whose best route transits the assessed AD, before.
    pub transit_before: usize,
    /// Flows whose best route transits the assessed AD, after — the AD's
    /// share of traffic (and charging revenue) under the candidate.
    pub transit_after: usize,
    /// Sum of transit charges the AD would collect from the sampled
    /// best routes, before and after (`(before, after)`).
    pub revenue: (u64, u64),
    /// Mean best-route cost over commonly-routable flows, before/after.
    pub mean_cost: (f64, f64),
}

impl PolicyImpact {
    /// Predicts the impact of `candidate` (a policy for `candidate.ad`)
    /// over the sampled `flows`, against the current `db`.
    pub fn assess(
        topo: &Topology,
        db: &PolicyDb,
        candidate: TransitPolicy,
        flows: &[FlowSpec],
    ) -> PolicyImpact {
        let ad = candidate.ad;
        let mut hypothetical = db.clone();
        hypothetical.set_policy(candidate);
        let mut out = PolicyImpact {
            flows: flows.len(),
            ..PolicyImpact::default()
        };
        let mut cost_before = 0u64;
        let mut cost_after = 0u64;
        let mut both = 0usize;
        for f in flows {
            let before = legal_route(topo, db, f);
            let after = legal_route(topo, &hypothetical, f);
            if before.is_some() {
                out.routable_before += 1;
            }
            if after.is_some() {
                out.routable_after += 1;
            }
            match (&before, &after) {
                (Some(b), Some(a)) => {
                    both += 1;
                    cost_before += b.cost;
                    cost_after += a.cost;
                    if b.path != a.path {
                        out.rerouted += 1;
                    }
                }
                (Some(_), None) => out.broken.push(*f),
                (None, Some(_)) => out.enabled.push(*f),
                (None, None) => {}
            }
            // Transit share and revenue proxy.
            if let Some(b) = &before {
                if transit_position(&b.path, ad).is_some() {
                    out.transit_before += 1;
                    out.revenue.0 += transit_charge(db, f, &b.path, ad);
                }
            }
            if let Some(a) = &after {
                if transit_position(&a.path, ad).is_some() {
                    out.transit_after += 1;
                    out.revenue.1 += transit_charge(&hypothetical, f, &a.path, ad);
                }
            }
        }
        if both > 0 {
            out.mean_cost = (
                cost_before as f64 / both as f64,
                cost_after as f64 / both as f64,
            );
        }
        out
    }

    /// True when the candidate breaks no sampled flow.
    pub fn is_safe(&self) -> bool {
        self.broken.is_empty()
    }

    /// Net change in the AD's transit load (positive = more traffic).
    pub fn transit_delta(&self) -> i64 {
        self.transit_after as i64 - self.transit_before as i64
    }
}

fn transit_position(path: &[AdId], ad: AdId) -> Option<usize> {
    if path.len() < 3 {
        return None;
    }
    path[1..path.len() - 1]
        .iter()
        .position(|&a| a == ad)
        .map(|i| i + 1)
}

fn transit_charge(db: &PolicyDb, f: &FlowSpec, path: &[AdId], ad: AdId) -> u64 {
    let Some(i) = transit_position(path, ad) else {
        return 0;
    };
    db.policy(ad)
        .evaluate(f, Some(path[i - 1]), Some(path[i + 1]))
        .map(u64::from)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_policy::{AdSet, PolicyAction, PolicyCondition};
    use adroute_topology::generate::{line, ring};

    #[test]
    fn deny_all_on_a_cut_vertex_breaks_flows() {
        let topo = line(4); // 0-1-2-3: AD1 and AD2 are cut vertices
        let db = PolicyDb::permissive(&topo);
        let flows = [
            FlowSpec::best_effort(AdId(0), AdId(3)),
            FlowSpec::best_effort(AdId(0), AdId(2)),
            FlowSpec::best_effort(AdId(2), AdId(3)),
        ];
        let impact = PolicyImpact::assess(&topo, &db, TransitPolicy::deny_all(AdId(1)), &flows);
        assert!(!impact.is_safe());
        assert_eq!(impact.broken.len(), 2); // 0->3 and 0->2 die
        assert_eq!(impact.routable_before, 3);
        assert_eq!(impact.routable_after, 1);
        assert_eq!(impact.transit_delta(), -2);
        // Nothing was deployed: the live database is untouched.
        assert_eq!(
            db.policy(AdId(1))
                .evaluate(&flows[0], Some(AdId(0)), Some(AdId(2))),
            Some(0)
        );
    }

    #[test]
    fn redundant_topology_reroutes_instead_of_breaking() {
        let topo = ring(6);
        let db = PolicyDb::permissive(&topo);
        let flows = [FlowSpec::best_effort(AdId(0), AdId(3))];
        let impact = PolicyImpact::assess(&topo, &db, TransitPolicy::deny_all(AdId(1)), &flows);
        assert!(impact.is_safe());
        assert_eq!(impact.rerouted, 1);
        assert_eq!(impact.routable_after, 1);
    }

    #[test]
    fn charging_more_loses_traffic_and_revenue_tradeoff_is_visible() {
        let topo = ring(4); // 0->2 via 1 or via 3
        let db = PolicyDb::permissive(&topo);
        let flows = [
            FlowSpec::best_effort(AdId(0), AdId(2)),
            FlowSpec::best_effort(AdId(2), AdId(0)),
        ];
        // AD1 considers charging 10 for transit: traffic shifts to AD3.
        let mut pricey = TransitPolicy::permit_all(AdId(1));
        pricey.default = PolicyAction::Permit { cost: 10 };
        let impact = PolicyImpact::assess(&topo, &db, pricey, &flows);
        assert!(impact.is_safe());
        assert_eq!(
            impact.transit_after, 0,
            "traffic routes around the expensive AD"
        );
        assert!(impact.mean_cost.1 <= impact.mean_cost.0 + 2.0);
        // A modest price keeps (tie-broken) traffic only if competitive;
        // free transit certainly keeps it.
        let free = TransitPolicy::permit_all(AdId(1));
        let impact2 = PolicyImpact::assess(&topo, &db, free, &flows);
        assert!(impact2.transit_after >= impact.transit_after);
    }

    #[test]
    fn relaxing_policy_enables_flows() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.set_policy(TransitPolicy::deny_all(AdId(1)));
        let flows = [FlowSpec::best_effort(AdId(0), AdId(2))];
        let impact = PolicyImpact::assess(&topo, &db, TransitPolicy::permit_all(AdId(1)), &flows);
        assert_eq!(impact.enabled.len(), 1);
        assert_eq!(impact.routable_before, 0);
        assert_eq!(impact.routable_after, 1);
        assert_eq!(impact.transit_delta(), 1);
    }

    #[test]
    fn source_specific_candidate_breaks_only_that_source() {
        let topo = line(4);
        let db = PolicyDb::permissive(&topo);
        let flows = [
            FlowSpec::best_effort(AdId(0), AdId(3)),
            FlowSpec::best_effort(AdId(1), AdId(3)),
        ];
        let mut cand = TransitPolicy::permit_all(AdId(2));
        cand.push_term(
            vec![PolicyCondition::SrcIn(AdSet::only([AdId(0)]))],
            PolicyAction::Deny,
        );
        let impact = PolicyImpact::assess(&topo, &db, cand, &flows);
        assert_eq!(impact.broken, vec![flows[0]]);
        assert_eq!(impact.routable_after, 1);
    }

    #[test]
    fn revenue_accounting_counts_charges() {
        let topo = line(3);
        let mut db = PolicyDb::permissive(&topo);
        db.policy_mut(AdId(1)).default = PolicyAction::Permit { cost: 4 };
        let flows = [FlowSpec::best_effort(AdId(0), AdId(2))];
        let mut cand = TransitPolicy::permit_all(AdId(1));
        cand.default = PolicyAction::Permit { cost: 7 };
        let impact = PolicyImpact::assess(&topo, &db, cand, &flows);
        assert_eq!(
            impact.revenue,
            (4, 7),
            "captive traffic pays the higher charge"
        );
        assert_eq!(impact.mean_cost.0 + 3.0, impact.mean_cost.1);
    }
}
