//! `adroute` — command-line tools for the inter-AD policy-routing
//! workspace: generate Figure-1-style internets and policy workloads,
//! query policy routes against the oracle and the ORWG data plane, audit
//! structural resilience, and predict the impact of a candidate policy
//! before deploying it (the paper's Section-6 management tool).
//!
//! Run `adroute help` for usage.

use std::process::ExitCode;

use adroute_cli::{args, commands};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
