//! A tiny, dependency-free flag parser: `--key value` pairs plus a
//! leading subcommand.

use std::collections::BTreeMap;

/// Parsed command line: subcommand plus positional operands and
/// `--key value` flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// A command-line error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Shorthand error constructor.
pub fn bail<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, CliError> {
        let mut it = argv.into_iter();
        let Some(command) = it.next() else {
            return bail("missing subcommand; try `adroute help`");
        };
        if command.starts_with("--") {
            return bail("the subcommand must come before flags");
        }
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        let mut it = it.peekable();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                // Positional operands may only precede the flags;
                // commands that take none reject them in `known`.
                if !flags.is_empty() {
                    return bail(format!(
                        "positional argument '{tok}' must come before flags"
                    ));
                }
                positionals.push(tok);
                continue;
            };
            // A flag followed by another flag (or nothing) is a boolean
            // switch: `--json` parses as `--json true`.
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            if flags.insert(key.to_string(), value).is_some() {
                return bail(format!("flag --{key} given twice"));
            }
        }
        Ok(Args {
            command,
            positionals,
            flags,
        })
    }

    /// The single positional operand commands like `blame <scenario>`
    /// require.
    pub fn positional_one(&self, what: &str) -> Result<&str, CliError> {
        match self.positionals.as_slice() {
            [one] => Ok(one),
            [] => bail(format!("'{}' needs a {what} operand", self.command)),
            _ => bail(format!("'{}' takes exactly one {what}", self.command)),
        }
    }

    /// Whether any positional operands were given — lets a command pick
    /// between an operand-driven mode and a flag-driven one.
    pub fn has_positionals(&self) -> bool {
        !self.positionals.is_empty()
    }

    /// A required string flag.
    pub fn req(&self, key: &str) -> Result<&str, CliError> {
        match self.flags.get(key) {
            Some(v) => Ok(v),
            None => bail(format!("missing required flag --{key}")),
        }
    }

    /// An optional string flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required parsed flag.
    pub fn req_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        self.req(key)?.parse().map_err(|_| {
            CliError(format!(
                "flag --{key}: cannot parse '{}'",
                self.req(key).unwrap()
            ))
        })
    }

    /// An optional parsed flag with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{key}: cannot parse '{v}'"))),
        }
    }

    /// Flags that were set but never consumed by the command — caller can
    /// check against a known list for typo detection. Also rejects stray
    /// positionals, since most commands take none; commands with operands
    /// use [`Args::known_with_positionals`].
    pub fn known(&self, allowed: &[&str]) -> Result<(), CliError> {
        if let Some(p) = self.positionals.first() {
            return bail(format!("unexpected positional argument '{p}'"));
        }
        self.known_with_positionals(allowed)
    }

    /// [`Args::known`] for commands that accept positional operands.
    pub fn known_with_positionals(&self, allowed: &[&str]) -> Result<(), CliError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return bail(format!(
                    "unknown flag --{k} for '{}'; allowed: {}",
                    self.command,
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(argv("gen-topo --ads 100 --seed 7")).unwrap();
        assert_eq!(a.command, "gen-topo");
        assert_eq!(a.req("ads").unwrap(), "100");
        assert_eq!(a.req_parse::<u64>("seed").unwrap(), 7);
        assert_eq!(a.opt("missing"), None);
        assert_eq!(a.opt_parse("missing", 5u32).unwrap(), 5);
        a.known(&["ads", "seed"]).unwrap();
        assert!(a.known(&["ads"]).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(argv("")).is_err());
        assert!(Args::parse(argv("--ads 5")).is_err());
        assert!(Args::parse(argv("cmd --k 1 stray")).is_err());
        assert!(Args::parse(argv("cmd --k 1 --k 2")).is_err());
        // Positionals parse, but flag-only commands reject them at the
        // `known` check.
        let s = Args::parse(argv("cmd stray")).unwrap();
        assert_eq!(s.positional_one("operand").unwrap(), "stray");
        assert!(s.known(&[]).is_err());
        let a = Args::parse(argv("cmd --k notanum")).unwrap();
        assert!(a.req_parse::<u32>("k").is_err());
        assert!(a.req("absent").is_err());
    }

    #[test]
    fn positional_operands_parse_before_flags() {
        let a = Args::parse(argv("blame quickstart --json")).unwrap();
        assert_eq!(a.positional_one("scenario").unwrap(), "quickstart");
        assert!(a.opt_parse("json", false).unwrap());
        a.known_with_positionals(&["json"]).unwrap();
        let none = Args::parse(argv("blame --json")).unwrap();
        assert!(none.positional_one("scenario").is_err());
        let two = Args::parse(argv("blame a b")).unwrap();
        assert!(two.positional_one("scenario").is_err());
    }

    #[test]
    fn valueless_flag_is_a_boolean_switch() {
        let a = Args::parse(argv("report --json")).unwrap();
        assert!(a.opt_parse("json", false).unwrap());
        let b = Args::parse(argv("report --json --ads 40")).unwrap();
        assert!(b.opt_parse("json", false).unwrap());
        assert_eq!(b.req_parse::<u32>("ads").unwrap(), 40);
        let c = Args::parse(argv("report --json false")).unwrap();
        assert!(!c.opt_parse("json", true).unwrap());
    }
}
