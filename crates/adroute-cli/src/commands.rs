//! The CLI subcommands. Every command is a pure function from parsed
//! arguments (plus file contents) to an output string, so the whole tool
//! is unit-testable without spawning processes.

use std::fmt::Write as _;
use std::fs;

use adroute_core::{OrwgNetwork, PolicyImpact};
use adroute_policy::text::{format_policies, parse_policies, parse_policy};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::{legality, FlowSpec, PolicyDb, QosClass, TimeOfDay, UserClass};
use adroute_topology::{analysis, io as topo_io, AdId, HierarchyConfig, Topology};

use crate::args::{bail, Args, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
adroute — inter-AD policy routing tools (SIGCOMM 1990 design space)

USAGE: adroute <command> [--flag value]...

COMMANDS:
  gen-topo      --ads N [--seed S --lateral P --bypass P --multihome P --out FILE]
                generate a Figure-1-style internet (text format to stdout/FILE)
  gen-policies  --topo FILE [--granularity G --seed S --out FILE]
                generate a policy workload for a topology
  route         --topo FILE --src A --dst B [--policies FILE --qos Q --uci U --time HH:MM]
                find the least-cost policy-legal route (oracle + ORWG setup)
  audit         --topo FILE [--tree true]
                structural resilience report (articulation ADs, degrees,
                optional ASCII hierarchy)
  impact        --topo FILE --policies FILE --candidate FILE [--flows N --seed S]
                predict the effect of a candidate policy before deploying it
  help          this text
";

fn load_topo(path: &str) -> Result<Topology, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read topology '{path}': {e}")))?;
    topo_io::parse(&text).map_err(|e| CliError(format!("topology '{path}': {e}")))
}

fn load_policies(path: Option<&str>, topo: &Topology) -> Result<PolicyDb, CliError> {
    match path {
        None => Ok(PolicyDb::permissive(topo)),
        Some(p) => {
            let text = fs::read_to_string(p)
                .map_err(|e| CliError(format!("cannot read policies '{p}': {e}")))?;
            parse_policies(&text, topo.num_ads())
                .map_err(|e| CliError(format!("policies '{p}': {e}")))
        }
    }
}

fn emit(out: &str, target: Option<&str>) -> Result<String, CliError> {
    match target {
        None => Ok(out.to_string()),
        Some(path) => {
            fs::write(path, out).map_err(|e| CliError(format!("cannot write '{path}': {e}")))?;
            Ok(format!("wrote {} bytes to {path}\n", out.len()))
        }
    }
}

/// `gen-topo`: generate and dump an internet.
pub fn gen_topo(args: &Args) -> Result<String, CliError> {
    args.known(&["ads", "seed", "lateral", "bypass", "multihome", "out"])?;
    let ads: usize = args.req_parse("ads")?;
    let cfg = HierarchyConfig {
        lateral_prob: args.opt_parse("lateral", 0.25)?,
        bypass_prob: args.opt_parse("bypass", 0.1)?,
        multihome_prob: args.opt_parse("multihome", 0.2)?,
        ..HierarchyConfig::with_approx_size(ads, args.opt_parse("seed", 1990)?)
    };
    let topo = cfg.generate();
    emit(&topo_io::dump(&topo), args.opt("out"))
}

/// `gen-policies`: generate a policy workload for an existing topology.
pub fn gen_policies(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "granularity", "seed", "out"])?;
    let topo = load_topo(args.req("topo")?)?;
    let seed = args.opt_parse("seed", 1990)?;
    let g: u8 = args.opt_parse("granularity", 0)?;
    let db = if g == 0 {
        PolicyWorkload::default_mix(seed).generate(&topo)
    } else {
        PolicyWorkload::granularity(g, seed).generate(&topo)
    };
    emit(&format_policies(&db), args.opt("out"))
}

fn parse_hm(s: &str) -> Result<TimeOfDay, CliError> {
    let Some((h, m)) = s.split_once(':') else {
        return bail(format!("expected HH:MM, found '{s}'"));
    };
    match (h.parse::<u16>(), m.parse::<u16>()) {
        (Ok(h), Ok(m)) if h < 24 && m < 60 => Ok(TimeOfDay::hm(h, m)),
        _ => bail(format!("bad time '{s}'")),
    }
}

/// `route`: oracle route plus ORWG setup preview for one flow.
pub fn route(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "policies", "src", "dst", "qos", "uci", "time"])?;
    let topo = load_topo(args.req("topo")?)?;
    let db = load_policies(args.opt("policies"), &topo)?;
    let src = AdId(args.req_parse("src")?);
    let dst = AdId(args.req_parse("dst")?);
    if src.index() >= topo.num_ads() || dst.index() >= topo.num_ads() {
        return bail("src/dst outside the topology");
    }
    let mut flow = FlowSpec::best_effort(src, dst)
        .with_qos(QosClass(args.opt_parse("qos", 0u8)?))
        .with_uci(UserClass(args.opt_parse("uci", 0u8)?));
    if let Some(t) = args.opt("time") {
        flow = flow.at(parse_hm(t)?);
    }
    let mut out = String::new();
    let _ = writeln!(out, "flow: {flow}");
    match legality::legal_route(&topo, &db, &flow) {
        None => {
            let _ = writeln!(out, "no policy-legal route exists");
        }
        Some(r) => {
            let path: Vec<String> = r.path.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(out, "route: {}  (cost {}, {} hops)", path.join(" -> "), r.cost, r.hops());
            let mut net = OrwgNetwork::converged(&topo, &db);
            match net.open(&flow) {
                Ok(setup) => {
                    let _ = writeln!(
                        out,
                        "setup: {} gateway validations, {} header bytes, {} us; data header {} bytes/pkt",
                        setup.validations,
                        setup.header_bytes,
                        setup.latency_us,
                        adroute_core::DataPacket::HEADER_SIZE
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "setup failed: {e:?}");
                }
            }
        }
    }
    Ok(out)
}

/// `audit`: structural resilience report.
pub fn audit(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "tree"])?;
    let topo = load_topo(args.req("topo")?)?;
    let stats = analysis::degree_stats(&topo);
    let arts = analysis::articulation_ads(&topo);
    let (h, l, b) = topo.link_kind_counts();
    let (s, m, t, hy) = topo.role_counts();
    let mut out = String::new();
    let _ = writeln!(out, "ADs: {}  links: {} ({h} hierarchical, {l} lateral, {b} bypass)", topo.num_ads(), topo.num_links());
    let _ = writeln!(out, "roles: {s} stub, {m} multi-homed, {t} transit, {hy} hybrid");
    let _ = writeln!(out, "degree: min {} / mean {:.2} / max {}", stats.min, stats.mean, stats.max);
    let _ = writeln!(out, "connected: {}", adroute_topology::algo::is_connected(&topo));
    let _ = writeln!(out, "articulation ADs ({}):", arts.len());
    for a in &arts {
        let ad = topo.ad(*a);
        let _ = writeln!(out, "  {} ({} {})", a, ad.level, ad.role);
    }
    if args.opt_parse("tree", false)? {
        let _ = writeln!(out, "\nhierarchy:");
        out.push_str(&adroute_topology::render_tree(&topo));
    }
    Ok(out)
}

/// `impact`: assess a candidate policy against a sampled traffic matrix.
pub fn impact(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "policies", "candidate", "flows", "seed"])?;
    let topo = load_topo(args.req("topo")?)?;
    let db = load_policies(args.opt("policies"), &topo)?;
    let cand_path = args.req("candidate")?;
    let cand_text = fs::read_to_string(cand_path)
        .map_err(|e| CliError(format!("cannot read candidate '{cand_path}': {e}")))?;
    let candidate = parse_policy(&cand_text)
        .map_err(|e| CliError(format!("candidate '{cand_path}': {e}")))?;
    if candidate.ad.index() >= topo.num_ads() {
        return bail("candidate policy names an AD outside the topology");
    }
    let flows = adroute_protocols::forwarding::sample_flows(
        &topo,
        args.opt_parse("flows", 200usize)?,
        args.opt_parse("seed", 1990u64)?,
    );
    let i = PolicyImpact::assess(&topo, &db, candidate, &flows);
    let mut out = String::new();
    let _ = writeln!(out, "candidate policy for {} over {} sampled flows:", args.req("candidate")?, i.flows);
    let _ = writeln!(out, "  safe (no flow stranded): {}", i.is_safe());
    let _ = writeln!(out, "  routable: {} -> {}", i.routable_before, i.routable_after);
    let _ = writeln!(out, "  rerouted: {}", i.rerouted);
    let _ = writeln!(out, "  transit share: {} -> {} (delta {:+})", i.transit_before, i.transit_after, i.transit_delta());
    let _ = writeln!(out, "  revenue proxy: {} -> {}", i.revenue.0, i.revenue.1);
    let _ = writeln!(out, "  mean route cost: {:.2} -> {:.2}", i.mean_cost.0, i.mean_cost.1);
    for f in i.broken.iter().take(10) {
        let _ = writeln!(out, "  would strand: {f}");
    }
    if i.broken.len() > 10 {
        let _ = writeln!(out, "  … and {} more", i.broken.len() - 10);
    }
    Ok(out)
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "gen-topo" => gen_topo(args),
        "gen-policies" => gen_policies(args),
        "route" => route(args),
        "audit" => audit(args),
        "impact" => impact(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => bail(format!("unknown command '{other}'; try `adroute help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run(line: &str) -> Result<String, CliError> {
        dispatch(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("adroute-cli-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_pipeline() {
        let topo_file = tmp("pipeline.topo");
        let pol_file = tmp("pipeline.pol");
        // 1. Generate a topology.
        let msg = run(&format!("gen-topo --ads 60 --seed 3 --out {topo_file}")).unwrap();
        assert!(msg.contains("wrote"));
        // 2. Generate policies for it.
        let msg = run(&format!("gen-policies --topo {topo_file} --seed 3 --out {pol_file}")).unwrap();
        assert!(msg.contains("wrote"));
        // 3. Route a flow.
        let out = run(&format!("route --topo {topo_file} --policies {pol_file} --src 3 --dst 40")).unwrap();
        assert!(out.contains("flow: AD3->AD40"), "{out}");
        assert!(out.contains("route:") || out.contains("no policy-legal route"), "{out}");
        // 4. Audit.
        let out = run(&format!("audit --topo {topo_file}")).unwrap();
        assert!(out.contains("articulation ADs"), "{out}");
        assert!(out.contains("connected: true"), "{out}");
        // 5. Impact of shutting down AD2.
        let cand_file = tmp("pipeline.cand");
        fs::write(&cand_file, "policy AD2 { default deny; }").unwrap();
        let out = run(&format!(
            "impact --topo {topo_file} --policies {pol_file} --candidate {cand_file} --flows 50"
        ))
        .unwrap();
        assert!(out.contains("safe (no flow stranded):"), "{out}");
        assert!(out.contains("transit share:"), "{out}");
    }

    #[test]
    fn route_with_class_flags() {
        let topo_file = tmp("classes.topo");
        run(&format!("gen-topo --ads 50 --seed 5 --out {topo_file}")).unwrap();
        let out = run(&format!(
            "route --topo {topo_file} --src 0 --dst 10 --qos 1 --uci 2 --time 23:30"
        ))
        .unwrap();
        assert!(out.contains("qos1 uci2 @23:30"), "{out}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run("frobnicate").unwrap_err().0.contains("unknown command"));
        assert!(run("gen-topo").unwrap_err().0.contains("--ads"));
        assert!(run("gen-topo --ads 50 --bogus 1").unwrap_err().0.contains("unknown flag"));
        assert!(run("route --topo /nonexistent --src 0 --dst 1")
            .unwrap_err()
            .0
            .contains("cannot read"));
        let topo_file = tmp("err.topo");
        run(&format!("gen-topo --ads 50 --seed 5 --out {topo_file}")).unwrap();
        assert!(run(&format!("route --topo {topo_file} --src 0 --dst 9999"))
            .unwrap_err()
            .0
            .contains("outside the topology"));
        assert!(run(&format!("route --topo {topo_file} --src 0 --dst 1 --time 25:00"))
            .unwrap_err()
            .0
            .contains("bad time"));
        assert!(run("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn gen_topo_to_stdout_round_trips() {
        let text = run("gen-topo --ads 50 --seed 9").unwrap();
        let topo = adroute_topology::io::parse(&text).unwrap();
        assert!(topo.num_ads() >= 40);
    }
}
