//! The CLI subcommands. Every command is a pure function from parsed
//! arguments (plus file contents) to an output string, so the whole tool
//! is unit-testable without spawning processes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;

use adroute_core::{
    run_load_ramp, OrwgNetwork, OrwgProtocol, PolicyImpact, RepairStats, SetupRetryPolicy,
    ShardConfig, Strategy, StressConfig, StressReport, ViewMaintenance,
};
use adroute_policy::text::{format_policies, parse_policies, parse_policy};
use adroute_policy::workload::PolicyWorkload;
use adroute_policy::{legality, FlowSpec, PolicyDb, QosClass, TimeOfDay, TransitPolicy, UserClass};
use adroute_protocols::forwarding::{audit_path, forward, DataPlane};
use adroute_protocols::{
    ecma::Ecma, gossip::Gossip, ls_hbh::LsHbh, naive_dv::NaiveDv, path_vector::PathVector,
};
use adroute_sim::{
    Alarm, CausalGraph, ChannelFaults, CrashModel, Engine, EventLog, EventRecord, FailureModel,
    FaultPlan, FaultSpec, MetricsRegistry, MisbehaviorModel, MisbehaviorSpec, MonitorBank,
    MonitorConfig, Observation, OpenStorm, Profiler, Protocol, QuarantineController, RouterOutage,
    SimTime, Stats, StormPhase,
};
use adroute_topology::{analysis, io as topo_io, AdId, HierarchyConfig, LinkId, Topology};

use crate::args::{bail, Args, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
adroute — inter-AD policy routing tools (SIGCOMM 1990 design space)

USAGE: adroute <command> [--flag value]...

COMMANDS:
  gen-topo      --ads N [--seed S --lateral P --bypass P --multihome P --out FILE]
                generate a Figure-1-style internet (text format to stdout/FILE)
  gen-policies  --topo FILE [--granularity G --seed S --out FILE]
                generate a policy workload for a topology
  route         --topo FILE --src A --dst B [--policies FILE --qos Q --uci U --time HH:MM]
                find the least-cost policy-legal route (oracle + ORWG setup)
  audit         <quickstart|e7b> [--json --trace FILE]
                run the byzantine audit lifecycle on a fixed scenario: a
                forged-ack rogue AD is injected, the policy-violation
                tripwire detects it, quarantine tears its transits down,
                and repair reconverges every flow policy-legally
                (--json for machines, --trace exports the event stream);
                or: --topo FILE [--tree true] for the structural
                resilience report (articulation ADs, degrees, hierarchy)
  impact        --topo FILE --policies FILE --candidate FILE [--flows N --seed S]
                predict the effect of a candidate policy before deploying it
  chaos         [--ads N --seed S --duration MS --loss P --flows N
                 --view incremental|flush --byzantine [forged-ack]
                 --trace FILE]
                run the ORWG control and data planes through a seeded fault
                plan (link churn, lossy channels, router crashes) and report
                recovery metrics; --view picks how Route Servers absorb
                re-flooded changes (incremental invalidation vs full flush);
                --byzantine additionally turns one transit AD rogue
                (forged setup acks) and runs detection + quarantine;
                --trace exports the typed event stream as JSON Lines
  report        [--ads N --seed S --flows N --json]
                run every design point (dv, ecma, pv, ls-hbh, orwg) through
                convergence and a trunk failure on one seeded internet and
                report convergence times, message complexity, per-AD load,
                and route-setup latency histograms (--json for machines)
  trace         [--ads N --seed S --duration MS --loss P
                 --proto orwg|dv|ecma|pv|ls-hbh --capacity N --out FILE
                 --analyze]
                export one engine run (convergence, then seeded churn) as a
                typed JSON Lines event stream; --analyze prints the causal
                analysis (critical path + storm report) instead
  blame         <quickstart|e7b> [--json]
                run a fixed scenario and attribute its churn: the critical
                path of causally-linked events that gated convergence, and
                a per-root-cause storm report (--json for machines)
  stress        <quickstart|e9b> [--json --trace FILE --sharded]
                drive an open-request load ramp across the Route Servers'
                saturation point: admission queues defer, the brownout
                ladder degrades synthesis (full -> cached -> stored),
                overflow is shed with NACK + retry-after, clients retry
                under a deadline budget, and a mid-peak Route Server
                crash fails over to its warm standby (--json for
                machines, --trace exports the event stream, --sharded
                serves batches of co-routable opens per slot through
                shared multi-destination sweeps and refills invalidated
                cache entries in idle slots)
  profile       <quickstart|e7b|e13|e14> [--json --folded --workers K
                 --top N --ads N --loss P --out FILE]
                run a fixed scenario with the self-profiler attached and
                render its span tree: monotonic self/total wall time per
                span plus the deterministic work ledger, whose counters
                are byte-identical across repeat runs and worker counts.
                quickstart/e7b profile the ORWG engine lifecycle
                (converge + trunk cut, region-parallel at --workers)
                then a sharded serve ramp; e13 the region-parallel
                gossip flood (--loss attaches an event-keyed faulty
                channel so the faulted dispatch path is what gets
                profiled); e14 full sharded e9b serving (--json for
                machines, --folded for flamegraph.pl, default a top-N
                self-time table)
  bench         [--json --out FILE]
                wall-clock the overload-serving path on the e9b storm
                (no crash), monolithic and sharded, and report opens/sec,
                setup-wait p50/p99, shed rate, and the sharded speedup
                (--json emits the BENCH_serve.json schema); or: --engine [--ads N
                --workers K --rounds R --cost C --seed S] to wall-clock
                the discrete-event core itself on a cheap gossip flood
                at paper scale — events/sec sequential, region-parallel,
                with an observer attached, and a compute-bound pair at
                C iterations of per-delivery work (--json emits the
                BENCH_engine.json schema); or: --obs [--ads N --rounds R
                --seed S] to price the observability sinks on that same
                flood — no sink vs trace observer vs self-profiler, best
                of three interleaved runs each (--json emits the
                BENCH_obs.json schema that CI's obs-overhead gate reads);
                or: --chaos [--ads N --workers K --rounds R --loss P
                --seed S] to wall-clock the same flood under the
                event-keyed chaos machinery (lossy channel + a
                partition/heal cycle), sequential vs region-parallel
                (--json emits the BENCH_chaos.json schema that CI's
                chaos-throughput gate reads)
  help          this text
";

fn load_topo(path: &str) -> Result<Topology, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read topology '{path}': {e}")))?;
    topo_io::parse(&text).map_err(|e| CliError(format!("topology '{path}': {e}")))
}

fn load_policies(path: Option<&str>, topo: &Topology) -> Result<PolicyDb, CliError> {
    match path {
        None => Ok(PolicyDb::permissive(topo)),
        Some(p) => {
            let text = fs::read_to_string(p)
                .map_err(|e| CliError(format!("cannot read policies '{p}': {e}")))?;
            parse_policies(&text, topo.num_ads())
                .map_err(|e| CliError(format!("policies '{p}': {e}")))
        }
    }
}

fn emit(out: &str, target: Option<&str>) -> Result<String, CliError> {
    match target {
        None => Ok(out.to_string()),
        Some(path) => {
            fs::write(path, out).map_err(|e| CliError(format!("cannot write '{path}': {e}")))?;
            Ok(format!("wrote {} bytes to {path}\n", out.len()))
        }
    }
}

/// `gen-topo`: generate and dump an internet.
pub fn gen_topo(args: &Args) -> Result<String, CliError> {
    args.known(&["ads", "seed", "lateral", "bypass", "multihome", "out"])?;
    let ads: usize = args.req_parse("ads")?;
    let cfg = HierarchyConfig {
        lateral_prob: args.opt_parse("lateral", 0.25)?,
        bypass_prob: args.opt_parse("bypass", 0.1)?,
        multihome_prob: args.opt_parse("multihome", 0.2)?,
        ..HierarchyConfig::with_approx_size(ads, args.opt_parse("seed", 1990)?)
    };
    let topo = cfg.generate();
    emit(&topo_io::dump(&topo), args.opt("out"))
}

/// `gen-policies`: generate a policy workload for an existing topology.
pub fn gen_policies(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "granularity", "seed", "out"])?;
    let topo = load_topo(args.req("topo")?)?;
    let seed = args.opt_parse("seed", 1990)?;
    let g: u8 = args.opt_parse("granularity", 0)?;
    let db = if g == 0 {
        PolicyWorkload::default_mix(seed).generate(&topo)
    } else {
        PolicyWorkload::granularity(g, seed).generate(&topo)
    };
    emit(&format_policies(&db), args.opt("out"))
}

fn parse_hm(s: &str) -> Result<TimeOfDay, CliError> {
    let Some((h, m)) = s.split_once(':') else {
        return bail(format!("expected HH:MM, found '{s}'"));
    };
    match (h.parse::<u16>(), m.parse::<u16>()) {
        (Ok(h), Ok(m)) if h < 24 && m < 60 => Ok(TimeOfDay::hm(h, m)),
        _ => bail(format!("bad time '{s}'")),
    }
}

/// `route`: oracle route plus ORWG setup preview for one flow.
pub fn route(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "policies", "src", "dst", "qos", "uci", "time"])?;
    let topo = load_topo(args.req("topo")?)?;
    let db = load_policies(args.opt("policies"), &topo)?;
    let src = AdId(args.req_parse("src")?);
    let dst = AdId(args.req_parse("dst")?);
    if src.index() >= topo.num_ads() || dst.index() >= topo.num_ads() {
        return bail("src/dst outside the topology");
    }
    let mut flow = FlowSpec::best_effort(src, dst)
        .with_qos(QosClass(args.opt_parse("qos", 0u8)?))
        .with_uci(UserClass(args.opt_parse("uci", 0u8)?));
    if let Some(t) = args.opt("time") {
        flow = flow.at(parse_hm(t)?);
    }
    let mut out = String::new();
    let _ = writeln!(out, "flow: {flow}");
    match legality::legal_route(&topo, &db, &flow) {
        None => {
            let _ = writeln!(out, "no policy-legal route exists");
        }
        Some(r) => {
            let path: Vec<String> = r.path.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "route: {}  (cost {}, {} hops)",
                path.join(" -> "),
                r.cost,
                r.hops()
            );
            let mut net = OrwgNetwork::converged(&topo, &db);
            match net.open(&flow) {
                Ok(setup) => {
                    let _ = writeln!(
                        out,
                        "setup: {} gateway validations, {} header bytes, {} us; data header {} bytes/pkt",
                        setup.validations,
                        setup.header_bytes,
                        setup.latency_us,
                        adroute_core::DataPacket::HEADER_SIZE
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "setup failed: {e:?}");
                }
            }
        }
    }
    Ok(out)
}

/// Open flows whose installed route violates some transit AD's *actual*
/// policy — audited against ground truth, not the possibly-stale flooded
/// views, so it sees exactly what a rogue gateway hides.
fn violating_flows(net: &OrwgNetwork) -> usize {
    net.open_flows()
        .filter(|(_, of)| !audit_path(net.topo(), net.policies(), &of.flow, &of.route).compliant())
        .count()
}

/// The transit AD carrying the most open flows — the highest-leverage
/// rogue for a byzantine run (ties break toward the lowest AD id).
fn most_transited(net: &OrwgNetwork) -> Option<AdId> {
    let mut counts: BTreeMap<AdId, usize> = BTreeMap::new();
    for (_, of) in net.open_flows() {
        for ad in of
            .route
            .iter()
            .skip(1)
            .take(of.route.len().saturating_sub(2))
        {
            *counts.entry(*ad).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(ad, n)| (n, std::cmp::Reverse(ad.index())))
        .map(|(ad, _)| ad)
}

/// What one byzantine run produced, for `audit`, `chaos --byzantine`,
/// and `report` to render.
struct ByzReport {
    /// The misbehaving AD.
    rogue: AdId,
    /// The logged `misbehavior-inject` root, if the log is enabled.
    inject: Option<adroute_sim::EventId>,
    /// Open flows violating ground-truth policy right after injection.
    violating_before: usize,
    /// The first confirmed alarm against the rogue, if any fired.
    detection: Option<Alarm>,
    /// The logged `quarantine-enter` event, if the log is enabled.
    enter: Option<adroute_sim::EventId>,
    /// Flows torn down by containment.
    torn: usize,
    /// Repair outcomes for the torn flows.
    repair: RepairStats,
    /// Open flows still violating ground-truth policy after containment.
    violating_after: usize,
    /// The controller, still holding the quarantine (callers may lift it).
    controller: QuarantineController,
}

/// Drives the full byzantine lifecycle against an assembled network:
/// covertly flips the rogue's *actual* policy to deny-all (its flooded
/// view stays stale, so Route Servers keep synthesizing through it),
/// turns its gateway rogue (forged setup acks install what policy
/// forbids), opens the `fresh` flows through the now-lying gateway, then
/// runs the monitor bank tick by tick until the policy-violation
/// tripwire fires, the quarantine controller contains the suspect, and
/// repair reconverges the torn flows policy-legally around it.
fn run_byzantine(net: &mut OrwgNetwork, rogue: AdId, at: SimTime, fresh: &[FlowSpec]) -> ByzReport {
    net.set_covert_policy(TransitPolicy::deny_all(rogue));
    net.set_rogue_gateways([rogue]);
    let inject = net.obs.record_event(
        at,
        None,
        EventRecord::MisbehaviorInject {
            ad: rogue,
            model: MisbehaviorModel::ForgedAck.tag(),
        },
    );
    for f in fresh {
        let _ = net.open_repairable(f);
    }
    let violating_before = violating_flows(net);
    let mut bank = MonitorBank::new(MonitorConfig::default());
    bank.set_injection_roots(&[(rogue, inject)]);
    let mut controller = QuarantineController::new(1);
    let mut detection = None;
    let mut enter = None;
    let mut torn = 0usize;
    let mut repair = RepairStats::default();
    for _ in 0..6 {
        // One monitoring tick: probe every open flow against ground truth.
        let probes: Vec<Observation> = net
            .open_flows()
            .map(|(_, of)| Observation::Delivered {
                src: of.flow.src,
                dst: of.flow.dst,
                violators: audit_path(net.topo(), net.policies(), &of.flow, &of.route).violations,
            })
            .collect();
        for p in probes {
            bank.observe(p);
        }
        let mut contained = false;
        for alarm in bank.end_tick(&mut net.obs, at) {
            if let Some((ad, qev)) = controller.note_alarm(&alarm, &mut net.obs, at) {
                detection.get_or_insert(alarm);
                enter = enter.or(qev);
                let t = net.quarantine_ad(ad, qev);
                net.obs
                    .metrics
                    .record("quarantine_collateral_flows", t as u64);
                torn += t;
                let r = net.repair_pending(3);
                repair.repaired_via_alternate += r.repaired_via_alternate;
                repair.repaired_via_synthesis += r.repaired_via_synthesis;
                repair.failures += r.failures;
                repair.setup_retransmits += r.setup_retransmits;
                contained = true;
            }
        }
        if contained || violating_before == 0 {
            break;
        }
    }
    let violating_after = violating_flows(net);
    ByzReport {
        rogue,
        inject,
        violating_before,
        detection,
        enter,
        torn,
        repair,
        violating_after,
        controller,
    }
}

/// `audit <scenario>`: the byzantine audit lifecycle on a fixed, seeded
/// scenario — inject a forged-ack rogue, detect it with the runtime
/// policy-violation tripwire, quarantine it, and verify policy-legal
/// reconvergence.
fn audit_byzantine(args: &Args) -> Result<String, CliError> {
    args.known_with_positionals(&["json", "trace"])?;
    let json = args.opt_parse("json", false)?;
    let trace_path = args.opt("trace");
    let scenario = args.positional_one("scenario")?.to_string();
    let (topo, seed) = match scenario.as_str() {
        "quickstart" => (HierarchyConfig::figure1().generate(), 1990u64),
        "e7b" => (
            HierarchyConfig {
                lateral_prob: 0.25,
                bypass_prob: 0.1,
                multihome_prob: 0.2,
                ..HierarchyConfig::with_approx_size(120, 23)
            }
            .generate(),
            23,
        ),
        other => {
            return bail(format!(
                "unknown audit scenario '{other}'; scenarios: quickstart, e7b"
            ))
        }
    };
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let mut net = OrwgNetwork::converged(&topo, &db);
    net.enable_obs(1 << 14);
    let mut opened = 0usize;
    for f in &adroute_protocols::forwarding::sample_flows(&topo, 40, seed) {
        if net.open_repairable(f).is_ok() {
            opened += 1;
        }
    }
    let Some(rogue) = most_transited(&net) else {
        return bail(format!("audit {scenario}: no open flow transits any AD"));
    };
    // A fresh wave arrives *after* the rogue turns: its setups through the
    // rogue succeed only because the gateway forges the acks.
    let fresh = adroute_protocols::forwarding::sample_flows(&topo, 10, seed ^ 0x5a);
    let bz = run_byzantine(&mut net, rogue, SimTime::ZERO, &fresh);
    let reconverged = bz.violating_after == 0;
    let mut out = String::new();
    if json {
        let _ = write!(
            out,
            "{{\"audit\":{{\"scenario\":\"{scenario}\",\"ads\":{},\"links\":{},\"seed\":{seed},\
             \"rogue\":\"{}\",\"model\":\"forged-ack\",\"flows_open\":{opened},\
             \"violating_before\":{},",
            topo.num_ads(),
            topo.num_links(),
            bz.rogue,
            bz.violating_before
        );
        match &bz.detection {
            Some(a) => {
                let _ = write!(
                    out,
                    "\"detection\":{{\"detector\":\"{}\",\"tick\":{},\"evidence\":{}}},",
                    a.detector, a.tick, a.evidence
                );
            }
            None => out.push_str("\"detection\":null,"),
        }
        let _ = writeln!(
            out,
            "\"quarantine\":{{\"entered\":1,\"torn\":{},\"repaired_alternate\":{},\
             \"repaired_synthesis\":{},\"unrepairable\":{}}},\"violating_after\":{},\
             \"reconverged_legal\":{reconverged},\"metrics\":{}}}}}",
            bz.torn,
            bz.repair.repaired_via_alternate,
            bz.repair.repaired_via_synthesis,
            bz.repair.failures,
            bz.violating_after,
            net.obs.metrics.to_json()
        );
    } else {
        let _ = writeln!(
            out,
            "audit {scenario}: {} ADs, {} links, seed {seed}",
            topo.num_ads(),
            topo.num_links()
        );
        let _ = writeln!(
            out,
            "inject: {} turns rogue (forged-ack): actual policy deny-all, flooded views stale",
            bz.rogue
        );
        let _ = writeln!(
            out,
            "flows: {opened} open before, {} fresh setups after; {} violating ground-truth policy",
            fresh.len(),
            bz.violating_before
        );
        match &bz.detection {
            Some(a) => {
                let _ = writeln!(
                    out,
                    "detect: {} tripwire fired on tick {} ({} violating observations)",
                    a.detector, a.tick, a.evidence
                );
            }
            None => {
                let _ = writeln!(out, "detect: no alarm fired");
            }
        }
        let _ = writeln!(
            out,
            "contain: quarantined {}; {} transiting flows torn down",
            bz.rogue, bz.torn
        );
        let _ = writeln!(
            out,
            "repair: {} via cached alternate, {} via fresh synthesis, {} unrepairable",
            bz.repair.repaired_via_alternate, bz.repair.repaired_via_synthesis, bz.repair.failures
        );
        let _ = writeln!(
            out,
            "verify: {} flows violating after containment (policy-legal reconvergence: {reconverged})",
            bz.violating_after
        );
        if let (Some(i), Some(a), Some(q)) = (bz.inject, bz.detection.as_ref(), bz.enter) {
            if let Some(ae) = a.event {
                let _ = writeln!(
                    out,
                    "causal chain: misbehavior-inject #{} -> monitor-alarm #{} -> \
                     quarantine-enter #{} -> {} setup-repair descendants",
                    i.0, ae.0, q.0, bz.torn
                );
            }
        }
    }
    if let Some(path) = trace_path {
        let jsonl = net.obs.log.export_jsonl();
        fs::write(path, &jsonl)
            .map_err(|e| CliError(format!("cannot write trace '{path}': {e}")))?;
        let _ = writeln!(out, "trace: wrote {} bytes to {path}", jsonl.len());
    }
    Ok(out)
}

/// `audit`: with a scenario operand, the byzantine audit lifecycle
/// ([`audit_byzantine`]); with `--topo`, the structural resilience
/// report.
pub fn audit(args: &Args) -> Result<String, CliError> {
    if args.has_positionals() {
        return audit_byzantine(args);
    }
    args.known(&["topo", "tree"])?;
    let topo = load_topo(args.req("topo")?)?;
    let stats = analysis::degree_stats(&topo);
    let arts = analysis::articulation_ads(&topo);
    let (h, l, b) = topo.link_kind_counts();
    let (s, m, t, hy) = topo.role_counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ADs: {}  links: {} ({h} hierarchical, {l} lateral, {b} bypass)",
        topo.num_ads(),
        topo.num_links()
    );
    let _ = writeln!(
        out,
        "roles: {s} stub, {m} multi-homed, {t} transit, {hy} hybrid"
    );
    let _ = writeln!(
        out,
        "degree: min {} / mean {:.2} / max {}",
        stats.min, stats.mean, stats.max
    );
    let _ = writeln!(
        out,
        "connected: {}",
        adroute_topology::algo::is_connected(&topo)
    );
    let _ = writeln!(out, "articulation ADs ({}):", arts.len());
    for a in &arts {
        let ad = topo.ad(*a);
        let _ = writeln!(out, "  {} ({} {})", a, ad.level, ad.role);
    }
    if args.opt_parse("tree", false)? {
        let _ = writeln!(out, "\nhierarchy:");
        out.push_str(&adroute_topology::render_tree(&topo));
    }
    Ok(out)
}

/// `impact`: assess a candidate policy against a sampled traffic matrix.
pub fn impact(args: &Args) -> Result<String, CliError> {
    args.known(&["topo", "policies", "candidate", "flows", "seed"])?;
    let topo = load_topo(args.req("topo")?)?;
    let db = load_policies(args.opt("policies"), &topo)?;
    let cand_path = args.req("candidate")?;
    let cand_text = fs::read_to_string(cand_path)
        .map_err(|e| CliError(format!("cannot read candidate '{cand_path}': {e}")))?;
    let candidate =
        parse_policy(&cand_text).map_err(|e| CliError(format!("candidate '{cand_path}': {e}")))?;
    if candidate.ad.index() >= topo.num_ads() {
        return bail("candidate policy names an AD outside the topology");
    }
    let flows = adroute_protocols::forwarding::sample_flows(
        &topo,
        args.opt_parse("flows", 200usize)?,
        args.opt_parse("seed", 1990u64)?,
    );
    let i = PolicyImpact::assess(&topo, &db, candidate, &flows);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "candidate policy for {} over {} sampled flows:",
        args.req("candidate")?,
        i.flows
    );
    let _ = writeln!(out, "  safe (no flow stranded): {}", i.is_safe());
    let _ = writeln!(
        out,
        "  routable: {} -> {}",
        i.routable_before, i.routable_after
    );
    let _ = writeln!(out, "  rerouted: {}", i.rerouted);
    let _ = writeln!(
        out,
        "  transit share: {} -> {} (delta {:+})",
        i.transit_before,
        i.transit_after,
        i.transit_delta()
    );
    let _ = writeln!(out, "  revenue proxy: {} -> {}", i.revenue.0, i.revenue.1);
    let _ = writeln!(
        out,
        "  mean route cost: {:.2} -> {:.2}",
        i.mean_cost.0, i.mean_cost.1
    );
    for f in i.broken.iter().take(10) {
        let _ = writeln!(out, "  would strand: {f}");
    }
    if i.broken.len() > 10 {
        let _ = writeln!(out, "  … and {} more", i.broken.len() - 10);
    }
    Ok(out)
}

/// `chaos`: a full fault-injection sweep over the ORWG architecture.
///
/// Converges the flooding control plane, applies a seeded healed
/// [`FaultPlan`] (link churn + lossy/reordering channels + router
/// crashes), re-runs to quiescence, then drives the data plane through a
/// gateway crash and a link failure with lossy setups, repairing torn
/// flows from cached alternates before fresh synthesis. The link failure
/// is delivered through the control plane — flooded, re-quiesced, and
/// absorbed by each Route Server per `--view` (incremental invalidation
/// by default, full flush as the oracle). All randomness is seeded: the
/// same arguments always print the same report.
pub fn chaos(args: &Args) -> Result<String, CliError> {
    args.known(&[
        "ads",
        "seed",
        "duration",
        "loss",
        "flows",
        "view",
        "byzantine",
        "trace",
        "workers",
        "partition",
    ])?;
    let trace_path = args.opt("trace");
    let ads: usize = args.opt_parse("ads", 40)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let duration_ms: u64 = args.opt_parse("duration", 400)?;
    if duration_ms == 0 {
        return bail("--duration must be a positive number of milliseconds");
    }
    let workers: usize = args.opt_parse("workers", 1)?;
    if workers == 0 {
        return bail("--workers must be positive");
    }
    let partition = args.opt_parse("partition", false)?;
    let loss: f64 = args.opt_parse("loss", 0.05)?;
    if !(0.0..=0.5).contains(&loss) {
        return bail("--loss must be in [0, 0.5]");
    }
    let n_flows: usize = args.opt_parse("flows", 30)?;
    let byz_model = match args.opt("byzantine") {
        None => None,
        Some("true") | Some("forged-ack") => Some(MisbehaviorModel::ForgedAck),
        Some(tag) => match MisbehaviorModel::parse(tag) {
            Some(m) => {
                return bail(format!(
                    "--byzantine: chaos drives the ORWG data plane, which supports forged-ack; \
                     '{}' targets the hop-by-hop engines (see `adroute audit`)",
                    m.tag()
                ))
            }
            None => {
                return bail(format!(
                    "--byzantine: unknown misbehavior model '{tag}'; models: {}",
                    MisbehaviorModel::ALL.map(|m| m.tag()).join(", ")
                ))
            }
        },
    };
    if byz_model.is_some() && n_flows == 0 {
        return bail("--byzantine needs open flows to audit; raise --flows above 0");
    }
    let view = args.opt("view").unwrap_or("incremental");
    let mode = match view {
        "incremental" => ViewMaintenance::Incremental,
        "flush" => ViewMaintenance::Flush,
        other => {
            return bail(format!(
                "--view must be incremental or flush, found '{other}'"
            ))
        }
    };

    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    // Structural policies only (stubs refuse transit): under the
    // customer-cone mix, nearly every topological detour is policy-denied
    // and a hub crash can only demonstrate disconnection. The chaos demo
    // is about recovery, so it runs in the policy regime where recovery
    // is possible; the experiment suite covers the restrictive mixes.
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {} ADs, {} links, seed {seed}",
        topo.num_ads(),
        topo.num_links()
    );

    // Phase 1: control plane under the fault plan.
    let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db.clone()));
    if trace_path.is_some() {
        e.enable_obs(65536);
    }
    e.begin_phase("converge");
    run_quiesce(&mut e, workers);
    let spec = FaultSpec {
        link_model: Some(FailureModel {
            mtbf_ms: duration_ms as f64 / 3.0,
            mttr_ms: duration_ms as f64 / 8.0,
            fallible_fraction: 0.3,
            seed: seed ^ 0x11,
        }),
        crash_model: Some(CrashModel {
            mtbf_ms: duration_ms as f64 / 2.0,
            mttr_ms: duration_ms as f64 / 8.0,
            fallible_fraction: 0.15,
            seed: seed ^ 0x22,
        }),
        channel: Some(ChannelFaults {
            loss,
            corrupt: loss / 4.0,
            duplicate: loss / 4.0,
            reorder: loss / 2.0,
            seed: seed ^ 0x33,
            ..ChannelFaults::default()
        }),
        misbehavior: MisbehaviorSpec::default(),
    };
    let mut plan = FaultPlan::draw(&topo, &spec, e.now(), duration_ms);
    if partition {
        // Split the flooding domain at the AD-index midpoint for the
        // first half of the horizon, then heal and reconcile.
        plan = plan.with_partition(
            &topo,
            (topo.num_ads() / 2) as u32,
            e.now().plus_us(1_000),
            e.now().plus_us(duration_ms * 500),
        );
    }
    let _ = writeln!(
        out,
        "plan: {} link events, {} router outages, channel loss {:.1}% over {duration_ms} ms",
        plan.link_events().events().len(),
        plan.outages().len(),
        loss * 100.0,
    );
    if let Some(p) = plan.partition_spec() {
        let _ = writeln!(
            out,
            "partition: {} cut links split {} | {} ADs, heal at {} us",
            p.cut.len(),
            p.split,
            topo.num_ads() as u32 - p.split,
            p.heal_at.as_us(),
        );
    }
    e.begin_phase("churn");
    plan.apply(&mut e);
    let t = if workers > 1 {
        e.run_to_quiescence_parallel(workers)
    } else {
        e.run_to_quiescence()
    };
    let _ = writeln!(
        out,
        "control plane: quiescent at {} us after {} events",
        t.0, e.stats.events
    );
    let _ = writeln!(
        out,
        "  crashes {}, restarts {}, msgs lost {}, corrupted {}, duplicated {}, reordered {}",
        e.stats.router_crashes,
        e.stats.router_restarts,
        e.stats.msgs_lost,
        e.stats.msgs_corrupted,
        e.stats.msgs_duplicated,
        e.stats.msgs_reordered,
    );
    let _ = writeln!(
        out,
        "  seq jumps {}, resyncs {}",
        e.stats.counter("ls_seq_jump"),
        e.stats.counter("ls_resync"),
    );
    let truth = e.topo().clone();
    let want = truth.links().filter(|l| l.up).count();
    let mut consistent = 0;
    let mut checked = 0;
    for ad in truth.ad_ids() {
        if truth.neighbors(ad).next().is_none() {
            continue; // ended the run isolated: its view is legitimately frozen
        }
        checked += 1;
        let (view, _) = e.router(ad).flooder.db.view();
        if view.links().filter(|l| l.up).count() == want {
            consistent += 1;
        }
    }
    let _ = writeln!(
        out,
        "  views consistent with ground truth: {consistent}/{checked} ADs"
    );

    // Phase 2: data plane — lossy setups, then a gateway crash and a link
    // failure, then repair.
    let mut net = OrwgNetwork::from_engine(
        &e,
        Strategy::Cached { capacity: 1024 },
        OrwgNetwork::DEFAULT_HANDLE_CAPACITY,
    );
    net.set_view_maintenance(mode);
    if trace_path.is_some() {
        net.enable_obs(16384);
    }
    net.set_setup_loss(loss, seed ^ 0x44);
    let rp = SetupRetryPolicy::default();
    let flows = adroute_protocols::forwarding::sample_flows(&topo, n_flows, seed);
    let (mut opened, mut no_route, mut timeouts, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    for f in &flows {
        match net.open_with_retries(f, &rp) {
            Ok(_) => opened += 1,
            Err(adroute_core::network::OpenError::NoRoute) => no_route += 1,
            Err(adroute_core::network::OpenError::SetupTimeout) => timeouts += 1,
            Err(_) => rejected += 1,
        }
    }
    let _ = writeln!(
        out,
        "data plane: {} flows sampled; opened {opened}, no route {no_route}, \
         setup timeouts {timeouts}, rejected {rejected}, retransmits {}",
        flows.len(),
        net.repair_stats.setup_retransmits,
    );

    // Crash the busiest gateway whose transiting flows all keep a
    // policy-legal detour. In a Figure-1-style hierarchy the top hub is
    // usually a de-facto articulation point once policy constraints
    // apply — crashing it only demonstrates disconnection, not repair.
    let mut cands: Vec<AdId> = truth.ad_ids().collect();
    cands.sort_by_key(|&ad| (std::cmp::Reverse(truth.neighbors(ad).count()), ad.index()));
    let survivable = |victim: AdId| {
        let mut ghost = truth.clone();
        let doomed: Vec<_> = ghost
            .links()
            .filter(|l| l.a == victim || l.b == victim)
            .map(|l| l.id)
            .collect();
        for l in doomed {
            ghost.set_link_up(l, false);
        }
        let mut transiting = 0;
        for (_, of) in net.open_flows() {
            if of.route[1..of.route.len() - 1].contains(&victim) {
                transiting += 1;
                if legality::legal_route(&ghost, &db, &of.flow).is_none() {
                    return false;
                }
            }
        }
        transiting > 0
    };
    let victim = cands
        .iter()
        .copied()
        .find(|&c| survivable(c))
        .unwrap_or(cands[0]);
    // Pick the cut the same way: a carrying link away from the victim
    // whose loss (on top of the crash) still leaves every affected flow a
    // policy-legal detour — otherwise the demo cuts the backbone trunk
    // and "repairs" nothing.
    let mut ghost = truth.clone();
    let doomed: Vec<_> = ghost
        .links()
        .filter(|l| l.a == victim || l.b == victim)
        .map(|l| l.id)
        .collect();
    for l in doomed {
        ghost.set_link_up(l, false);
    }
    let uses = |route: &[AdId], a: AdId, b: AdId| {
        route
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
    };
    let cut = truth
        .links()
        .filter(|l| l.up && l.a != victim && l.b != victim)
        .find(|l| {
            ghost.set_link_up(l.id, false);
            let ok = net.open_flows().all(|(_, of)| {
                let affected =
                    of.route[1..of.route.len() - 1].contains(&victim) || uses(&of.route, l.a, l.b);
                !affected || legality::legal_route(&ghost, &db, &of.flow).is_some()
            });
            if !ok {
                ghost.set_link_up(l.id, true);
            }
            ok
        })
        .map(|l| l.id)
        .or_else(|| {
            truth
                .links()
                .find(|l| l.up && l.a != victim && l.b != victim)
                .map(|l| l.id)
        })
        .expect("some link avoids the victim");
    let (ca, cb) = {
        let l = truth.link(cut);
        (l.a, l.b)
    };
    // Oracle ground truth for the report: of the flows about to be torn
    // down, how many still have a policy-legal route at all?
    ghost.set_link_up(cut, false);
    let no_detour = net
        .open_flows()
        .filter(|(_, of)| {
            of.route[1..of.route.len() - 1].contains(&victim) || uses(&of.route, ca, cb)
        })
        .filter(|(_, of)| legality::legal_route(&ghost, &db, &of.flow).is_none())
        .count();
    net.crash_gateway(victim);
    // Deliver the cut through the control plane: the engine floods the
    // link-down, re-quiesces, and the data plane re-syncs each Route
    // Server from its own flooded database — incrementally or by full
    // flush, per --view.
    e.begin_phase("failure-response");
    e.schedule_link_change(cut, false, e.now().plus_us(1));
    run_quiesce(&mut e, workers);
    net.refresh_from_engine(&e);
    let torn = net.pending_repair_count();
    let r = net.repair_pending(4);
    let _ = writeln!(
        out,
        "recovery: crashed {victim} gateway, failed link {ca}-{cb}: {torn} flows torn down \
         ({no_detour} with no policy-legal detour)"
    );
    let _ = writeln!(
        out,
        "  repaired via cached alternate {}, via fresh synthesis {}, unrepairable {}",
        r.repaired_via_alternate, r.repaired_via_synthesis, r.failures,
    );
    let agg = net.aggregate_synth_stats();
    let _ = writeln!(
        out,
        "  view maintenance ({view}): entries invalidated {}, revalidations {} \
         ({} kept in place), setup searches {}, precompute searches {}",
        agg.entries_invalidated,
        agg.revalidations,
        agg.revalidate_hits,
        agg.searches,
        agg.precompute_searches,
    );
    net.restore_gateway(victim);
    let _ = writeln!(
        out,
        "  stale forwards across all gateways: {}",
        net.total_stale_forwards()
    );
    if let Some(model) = byz_model {
        // After the physical faults heal, one transit AD turns rogue.
        let rogue = most_transited(&net).unwrap_or_else(|| {
            MisbehaviorSpec::draw(&truth, model, 1, seed ^ 0x55).assignments()[0].0
        });
        let fresh =
            adroute_protocols::forwarding::sample_flows(&truth, (n_flows / 2).max(5), seed ^ 0x66);
        let bz = run_byzantine(&mut net, rogue, e.now(), &fresh);
        let _ = writeln!(
            out,
            "byzantine: {} at {rogue} (actual policy flipped to deny-all; flooded views stale)",
            model.tag()
        );
        match &bz.detection {
            Some(a) => {
                let _ = writeln!(
                    out,
                    "  detected: {} tripwire on tick {} ({} violating observations)",
                    a.detector, a.tick, a.evidence
                );
            }
            None => {
                let _ = writeln!(out, "  detected: nothing (no open flow transits the rogue)");
            }
        }
        let _ = writeln!(
            out,
            "  quarantine: {} transiting flows torn down; repaired {} via alternate, \
             {} via synthesis, {} unrepairable",
            bz.torn,
            bz.repair.repaired_via_alternate,
            bz.repair.repaired_via_synthesis,
            bz.repair.failures
        );
        let _ = writeln!(
            out,
            "  violating flows after containment: {}",
            bz.violating_after
        );
    }
    if let Some(path) = trace_path {
        // Control-plane stream first, then the data-plane stream — both
        // deterministic, so identically-seeded runs export byte-identical
        // files.
        let mut jsonl = e.obs.log.export_jsonl();
        jsonl.push_str(&net.obs.log.export_jsonl());
        fs::write(path, &jsonl)
            .map_err(|e| CliError(format!("cannot write trace '{path}': {e}")))?;
        let _ = writeln!(out, "trace: wrote {} bytes to {path}", jsonl.len());
    }
    Ok(out)
}

/// One design point's measurements for `report`.
struct PointReport {
    name: &'static str,
    converge_us: u64,
    reconverge_us: u64,
    totals: Stats,
    metrics: MetricsRegistry,
}

/// The trunk to cut in `report`: the operational link whose endpoints
/// carry the most adjacencies (ties broken toward the lowest link id) —
/// the E-series "backbone trunk" failure.
fn pick_trunk(topo: &Topology) -> LinkId {
    topo.links()
        .filter(|l| l.up)
        .max_by_key(|l| {
            (
                topo.neighbors(l.a).count() + topo.neighbors(l.b).count(),
                std::cmp::Reverse(l.id.0),
            )
        })
        .expect("topology has links")
        .id
}

/// Converge, then cut `trunk` and re-converge, under phase scopes.
/// Returns the engine plus (convergence, reconvergence) times in µs.
fn run_phases<P: Protocol>(mut e: Engine<P>, trunk: LinkId) -> (Engine<P>, u64, u64) {
    e.begin_phase("converge");
    let t1 = e.run_to_quiescence();
    e.begin_phase("failure-response");
    e.schedule_link_change(trunk, false, e.now().plus_us(1));
    let t2 = e.run_to_quiescence();
    (e, t1.as_us(), t2.as_us() - t1.as_us())
}

/// Folds the engine's per-AD message counts into its metrics registry as
/// the `"ad_msgs"` load histogram.
fn record_ad_load(metrics: &mut MetricsRegistry, stats: &Stats) {
    for &v in &stats.per_ad_msgs {
        metrics.record("ad_msgs", v);
    }
}

/// Measures one hop-by-hop design point: converge, cut the trunk,
/// re-converge, then drive `flows` through the converged data plane and
/// record each delivered flow's first-packet path latency — the
/// hop-by-hop analogue of ORWG's setup latency.
fn measure_hbh<P: Protocol>(
    name: &'static str,
    e: Engine<P>,
    trunk: LinkId,
    flows: &[FlowSpec],
) -> PointReport
where
    Engine<P>: DataPlane,
{
    let (mut e, converge_us, reconverge_us) = run_phases(e, trunk);
    let topo = e.topo().clone();
    for f in flows {
        let out = forward(&mut e, &topo, f);
        if out.delivered() {
            let lat: u64 = out
                .path()
                .windows(2)
                .map(|w| {
                    let l = topo.link_between(w[0], w[1]).expect("path follows links");
                    topo.link(l).delay_us
                })
                .sum();
            e.obs.metrics.record("setup_latency_us", lat);
            e.obs.metrics.add("flows_delivered", 1);
        } else {
            e.obs.metrics.add("flows_undelivered", 1);
        }
    }
    let mut metrics = std::mem::take(&mut e.obs.metrics);
    record_ad_load(&mut metrics, &e.stats);
    PointReport {
        name,
        converge_us,
        reconverge_us,
        totals: e.stats.clone(),
        metrics,
    }
}

fn point_json(p: &PointReport) -> String {
    let mut s = format!(
        "{{\"name\":\"{}\",\"convergence_us\":{},\"reconvergence_us\":{},\"stats\":{},\"phases\":{{",
        p.name,
        p.converge_us,
        p.reconverge_us,
        p.totals.to_json()
    );
    let mut first = true;
    for name in p.totals.phase_names().collect::<Vec<_>>() {
        if let Some(d) = p.totals.phase_delta(name) {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{name}\":{}", d.to_json());
        }
    }
    let _ = write!(s, "}},\"metrics\":{}}}", p.metrics.to_json());
    s
}

/// `report`: convergence, message-complexity, and latency instrumentation
/// for every design point on one seeded internet.
pub fn report(args: &Args) -> Result<String, CliError> {
    args.known(&["ads", "seed", "flows", "json"])?;
    let ads: usize = args.opt_parse("ads", 60)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let n_flows: usize = args.opt_parse("flows", 40)?;
    let json = args.opt_parse("json", false)?;

    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let trunk = pick_trunk(&topo);
    let flows = adroute_protocols::forwarding::sample_flows(&topo, n_flows, seed);

    let mut points = vec![
        measure_hbh(
            "dv",
            Engine::new(topo.clone(), NaiveDv::egp()),
            trunk,
            &flows,
        ),
        measure_hbh(
            "ecma",
            Engine::new(topo.clone(), Ecma::hierarchical(&topo)),
            trunk,
            &flows,
        ),
        measure_hbh(
            "pv",
            Engine::new(topo.clone(), PathVector::idrp(db.clone())),
            trunk,
            &flows,
        ),
        measure_hbh(
            "ls-hbh",
            Engine::new(topo.clone(), LsHbh::new(&topo, db.clone())),
            trunk,
            &flows,
        ),
    ];

    // ORWG: source routing — setup latency is measured by actually opening
    // each flow through the data plane built from the re-converged engine.
    let (e, converge_us, reconverge_us) = run_phases(
        Engine::new(topo.clone(), OrwgProtocol::new(&topo, db.clone())),
        trunk,
    );
    let mut net = OrwgNetwork::from_engine(
        &e,
        OrwgNetwork::DEFAULT_STRATEGY,
        OrwgNetwork::DEFAULT_HANDLE_CAPACITY,
    );
    for f in &flows {
        match net.open(f) {
            Ok(_) => net.obs.metrics.add("flows_delivered", 1),
            Err(_) => net.obs.metrics.add("flows_undelivered", 1),
        }
    }
    // Byzantine containment drill: its quarantine lifecycle counters land
    // in the orwg point's metrics (pre-touched so every counter reports,
    // even at zero).
    net.obs.metrics.add("quarantine_entered", 0);
    net.obs.metrics.add("quarantine_lifted", 0);
    net.obs.metrics.add("false_positive", 0);
    if let Some(rogue) = most_transited(&net) {
        let mut bz = run_byzantine(&mut net, rogue, SimTime::ZERO, &[]);
        if bz.detection.is_some() && bz.violating_after == 0 {
            // Drill over: the rogue was guilty and contained; lift the
            // quarantine so the lifted counter reflects a full lifecycle.
            bz.controller
                .lift(bz.rogue, true, &mut net.obs, SimTime::ZERO);
            net.lift_quarantine(bz.rogue);
        }
    }
    // Route-Server efficiency counters: sharded-sweep statistics and the
    // AD-set intern pool's hit/miss totals land in the orwg point's
    // metrics block (added even at zero so every run reports them).
    let sweep = net.aggregate_sweep_stats();
    net.obs.metrics.add("sweep_batches", sweep.batches);
    net.obs.metrics.add("sweep_batch_flows", sweep.batch_flows);
    net.obs.metrics.add("sweep_sweeps", sweep.sweeps);
    net.obs.metrics.add("sweep_classes", sweep.classes);
    net.obs.metrics.add("sweep_hot_hits", sweep.hot_hits);
    net.obs.metrics.add("sweep_refills", sweep.refills);
    let (intern_hits, intern_misses) = net.intern_stats();
    net.obs.metrics.add("intern_hits", intern_hits);
    net.obs.metrics.add("intern_misses", intern_misses);
    let mut metrics = std::mem::take(&mut net.obs.metrics);
    record_ad_load(&mut metrics, &e.stats);
    points.push(PointReport {
        name: "orwg",
        converge_us,
        reconverge_us,
        totals: e.stats.clone(),
        metrics,
    });

    if json {
        let mut out = format!(
            "{{\"report\":{{\"ads\":{},\"links\":{},\"seed\":{seed},\"trunk\":\"{}-{}\",\
             \"flows\":{},\"design_points\":[",
            topo.num_ads(),
            topo.num_links(),
            topo.link(trunk).a,
            topo.link(trunk).b,
            flows.len()
        );
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&point_json(p));
        }
        out.push_str("]}}\n");
        return Ok(out);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "report: {} ADs, {} links, seed {seed}; trunk cut {}-{}; {} flows",
        topo.num_ads(),
        topo.num_links(),
        topo.link(trunk).a,
        topo.link(trunk).b,
        flows.len()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>14} {:>10} {:>12} {:>10} {:>14}",
        "design", "converge_us", "reconverge_us", "msgs", "bytes", "max_ad", "setup_p50_us"
    );
    for p in &points {
        let setup = p
            .metrics
            .histogram("setup_latency_us")
            .map(|h| h.quantile(0.5).to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>14} {:>10} {:>12} {:>10} {:>14}",
            p.name,
            p.converge_us,
            p.reconverge_us,
            p.totals.msgs_sent,
            p.totals.bytes_sent,
            p.totals.max_per_ad_msgs(),
            setup
        );
    }
    for p in &points {
        for name in p.totals.phase_names().collect::<Vec<_>>() {
            if let Some(d) = p.totals.phase_delta(name) {
                let _ = writeln!(
                    out,
                    "  {}/{}: msgs {}, bytes {}, quiesced at {} us",
                    p.name,
                    name,
                    d.msgs_sent,
                    d.bytes_sent,
                    d.last_activity.as_us()
                );
            }
        }
    }
    Ok(out)
}

/// Renders the causal analysis of one or more event logs: the critical
/// path (the longest chain of causally-dependent events — what gated
/// convergence) and the storm report (per-root-cause blast radius).
/// Shared by `trace --analyze` and `blame`.
fn causal_analysis_text(logs: &[&EventLog]) -> String {
    let g = CausalGraph::build(logs);
    let path = g.critical_path();
    let storms = g.storm_report();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} events in {} span trees (acyclic: {})",
        g.len(),
        storms.len(),
        g.is_acyclic_by_id()
    );
    let _ = writeln!(out, "critical path: {} causally-linked events", path.len());
    for ev in &path {
        let cause = match ev.cause {
            Some(c) => format!("<- #{}", c.0),
            None => "root".to_string(),
        };
        let _ = writeln!(
            out,
            "  #{} @{}us [{cause}] {}",
            ev.id.0,
            ev.at.as_us(),
            ev.rec
        );
    }
    let shown = storms.len().min(12);
    let _ = writeln!(
        out,
        "storm report: top {shown} of {} root causes (their event counts partition {}):",
        storms.len(),
        g.len()
    );
    for s in &storms[..shown] {
        let _ = writeln!(
            out,
            "  root #{} {} @{}us: events {}, messages {}, ads {}, span {}us, depth {}",
            s.root.0,
            s.root_kind,
            s.at.as_us(),
            s.events,
            s.messages,
            s.ads,
            s.span_us,
            s.max_depth
        );
    }
    if storms.len() > shown {
        let rest: u64 = storms[shown..].iter().map(|s| s.events).sum();
        let _ = writeln!(
            out,
            "  ... {} more roots covering {} events",
            storms.len() - shown,
            rest
        );
    }
    out
}

/// `blame` output over the scenario's logs — the text analysis or one
/// machine-readable JSON object.
fn render_blame(scenario: &str, logs: &[&EventLog], json: bool) -> String {
    if !json {
        return format!(
            "blame {scenario}: attributing churn to root causes\n{}",
            causal_analysis_text(logs)
        );
    }
    let g = CausalGraph::build(logs);
    let path = g.critical_path();
    let storms = g.storm_report();
    let mut s = format!(
        "{{\"blame\":{{\"scenario\":\"{scenario}\",\"events\":{},\"roots\":{},\"critical_path\":[",
        g.len(),
        storms.len()
    );
    for (i, ev) in path.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&ev.to_json());
    }
    s.push_str("],\"storms\":[");
    for (i, st) in storms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&st.to_json());
    }
    s.push_str("]}}\n");
    s
}

/// `blame <scenario>`: run a fixed, seeded scenario and attribute its
/// churn. The scenarios mirror the golden-trace fixtures, so the output
/// explains the committed `tests/golden/*.jsonl` artifacts.
pub fn blame(args: &Args) -> Result<String, CliError> {
    args.known_with_positionals(&["json"])?;
    let json = args.opt_parse("json", false)?;
    match args.positional_one("scenario")? {
        // Figure-1 internet: ORWG control plane converges, then absorbs
        // one trunk failure (the quickstart golden trace).
        "quickstart" => {
            let topo = HierarchyConfig::figure1().generate();
            let db = PolicyDb::permissive(&topo);
            let mut e = Engine::new(topo.clone(), OrwgProtocol::new(&topo, db));
            e.enable_obs(1 << 16);
            e.begin_phase("converge");
            e.run_to_quiescence();
            e.begin_phase("failure-response");
            e.schedule_link_change(pick_trunk(&topo), false, e.now().plus_us(1));
            e.run_to_quiescence();
            Ok(render_blame("quickstart", &[&e.obs.log], json))
        }
        // E7b-style data plane: repairable opens on an E-series internet,
        // a trunk failure with incremental view invalidation, and
        // source-side repair (the e7b golden trace).
        "e7b" => {
            let topo = HierarchyConfig {
                lateral_prob: 0.25,
                bypass_prob: 0.1,
                multihome_prob: 0.2,
                ..HierarchyConfig::with_approx_size(120, 23)
            }
            .generate();
            let db = PolicyWorkload::structural(23).generate(&topo);
            let mut net = OrwgNetwork::converged(&topo, &db);
            net.enable_obs(1 << 14);
            for f in &adroute_protocols::forwarding::sample_flows(&topo, 40, 23) {
                let _ = net.open_repairable(f);
            }
            net.fail_link(pick_trunk(&topo));
            net.repair_pending(3);
            Ok(render_blame("e7b", &[&net.obs.log], json))
        }
        other => bail(format!(
            "unknown blame scenario '{other}'; scenarios: quickstart, e7b"
        )),
    }
}

/// Converges, applies a seeded churn plan, re-converges, and exports the
/// typed event stream — shared by `trace` across all design points.
fn trace_engine<P: Protocol>(
    mut e: Engine<P>,
    duration_ms: u64,
    loss: f64,
    seed: u64,
    capacity: usize,
    analyze: bool,
) -> String {
    e.enable_obs(capacity);
    e.begin_phase("converge");
    e.run_to_quiescence();
    e.begin_phase("churn");
    let spec = FaultSpec {
        link_model: Some(FailureModel {
            mtbf_ms: duration_ms as f64 / 3.0,
            mttr_ms: duration_ms as f64 / 8.0,
            fallible_fraction: 0.3,
            seed: seed ^ 0x11,
        }),
        crash_model: None,
        channel: (loss > 0.0).then(|| ChannelFaults {
            loss,
            corrupt: loss / 4.0,
            duplicate: loss / 4.0,
            reorder: loss / 2.0,
            seed: seed ^ 0x33,
            ..ChannelFaults::default()
        }),
        misbehavior: MisbehaviorSpec::default(),
    };
    let plan = FaultPlan::draw(e.topo(), &spec, e.now(), duration_ms);
    plan.apply(&mut e);
    e.run_to_quiescence();
    if analyze {
        format!("trace analysis: {}", causal_analysis_text(&[&e.obs.log]))
    } else {
        e.obs.log.export_jsonl()
    }
}

/// `trace`: export one engine run as a typed JSON Lines event stream.
pub fn trace(args: &Args) -> Result<String, CliError> {
    args.known(&[
        "ads", "seed", "duration", "loss", "proto", "capacity", "out", "analyze",
    ])?;
    let ads: usize = args.opt_parse("ads", 30)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let duration_ms: u64 = args.opt_parse("duration", 200)?;
    let loss: f64 = args.opt_parse("loss", 0.0)?;
    if !(0.0..=0.5).contains(&loss) {
        return bail("--loss must be in [0, 0.5]");
    }
    let capacity: usize = args.opt_parse("capacity", 1 << 20)?;
    let analyze = args.opt_parse("analyze", false)?;
    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    let db = PolicyWorkload::structural(seed).generate(&topo);
    let proto = args.opt("proto").unwrap_or("orwg");
    let jsonl = match proto {
        "orwg" => trace_engine(
            Engine::new(topo.clone(), OrwgProtocol::new(&topo, db)),
            duration_ms,
            loss,
            seed,
            capacity,
            analyze,
        ),
        "dv" => trace_engine(
            Engine::new(topo.clone(), NaiveDv::egp()),
            duration_ms,
            loss,
            seed,
            capacity,
            analyze,
        ),
        "ecma" => trace_engine(
            Engine::new(topo.clone(), Ecma::hierarchical(&topo)),
            duration_ms,
            loss,
            seed,
            capacity,
            analyze,
        ),
        "pv" => trace_engine(
            Engine::new(topo.clone(), PathVector::idrp(db)),
            duration_ms,
            loss,
            seed,
            capacity,
            analyze,
        ),
        "ls-hbh" => trace_engine(
            Engine::new(topo.clone(), LsHbh::new(&topo, db)),
            duration_ms,
            loss,
            seed,
            capacity,
            analyze,
        ),
        other => {
            return bail(format!(
                "--proto must be orwg, dv, ecma, pv, or ls-hbh, found '{other}'"
            ))
        }
    };
    emit(&jsonl, args.opt("out"))
}

/// One `stress` scenario: a topology, the storm seed, and the ramp's
/// phase schedule. Service costs are fixed by [`stress_run`], so the
/// schedule is what positions each phase relative to saturation.
struct StressScenario {
    topo: Topology,
    seed: u64,
    phases: Vec<StormPhase>,
}

/// Resolves a `stress` scenario name.
///
/// Both ramps cross the Route Servers' full-rung saturation point
/// (~166 opens/s per AD under [`stress_run`]'s service costs) in their
/// second phase and the stored-rung ceiling (~1666 opens/s per AD) in
/// their last, so the report shows the whole brownout ladder plus
/// shedding.
fn stress_scenario(name: &str) -> Result<StressScenario, CliError> {
    fn ramp(duration_ms: u64, rates: [u64; 4]) -> Vec<StormPhase> {
        rates
            .iter()
            .map(|&opens_per_sec| StormPhase {
                duration_ms,
                opens_per_sec,
            })
            .collect()
    }
    match name {
        "quickstart" => Ok(StressScenario {
            topo: HierarchyConfig::figure1().generate(),
            seed: 1990,
            phases: ramp(50, [2_000, 8_000, 20_000, 64_000]),
        }),
        "e9b" => Ok(StressScenario {
            topo: HierarchyConfig {
                lateral_prob: 0.25,
                bypass_prob: 0.1,
                multihome_prob: 0.2,
                ..HierarchyConfig::with_approx_size(120, 23)
            }
            .generate(),
            seed: 23,
            phases: ramp(100, [6_000, 25_000, 70_000, 200_000]),
        }),
        other => bail(format!(
            "unknown stress scenario '{other}'; scenarios: quickstart, e9b"
        )),
    }
}

/// The AD whose Route Server the stress crash targets: the storm's
/// busiest source (ties to the lowest id), so the outage lands where the
/// admission queue is deepest.
fn busiest_src(storm: &OpenStorm, n_ads: usize) -> AdId {
    let mut counts = vec![0u64; n_ads];
    for a in storm.arrivals() {
        counts[a.src.index()] += 1;
    }
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    AdId(best as u32)
}

/// Draws a scenario's storm and runs the load ramp, returning the
/// network (for its event log and metrics) with the report.
///
/// Service costs are inflated relative to the event-loop defaults so the
/// schedules above straddle saturation on a ~30-AD internet: full
/// synthesis 6 ms, a cached answer 1.2 ms, a stored-only answer 0.6 ms.
/// With `crash`, the busiest source AD's Route Server goes down a
/// quarter into the peak phase and its warm standby takes over 20 ms
/// later.
fn stress_run(
    sc: &StressScenario,
    crash: bool,
    sharding: Option<ShardConfig>,
) -> (OrwgNetwork, StressReport) {
    let db = PolicyWorkload::structural(sc.seed).generate(&sc.topo);
    let mut net = OrwgNetwork::converged(&sc.topo, &db);
    net.enable_obs(1 << 18);
    let storm = OpenStorm::draw(&sc.topo, &sc.phases, SimTime::ZERO, sc.seed);
    let durations_us: Vec<u64> = sc.phases.iter().map(|p| p.duration_ms * 1000).collect();
    let cfg = StressConfig {
        seed: sc.seed,
        sharding,
        service_full_us: 6_000,
        service_cached_us: 1_200,
        service_stored_us: 600,
        crash: crash.then(|| {
            let peak_start: u64 = durations_us[..durations_us.len() - 1].iter().sum();
            let down_at = SimTime(peak_start + durations_us[durations_us.len() - 1] / 4);
            RouterOutage {
                ad: busiest_src(&storm, sc.topo.num_ads()),
                down_at,
                up_at: down_at.plus_us(20_000),
            }
        }),
        ..StressConfig::default()
    };
    let report = run_load_ramp(&mut net, &storm, &durations_us, &cfg);
    (net, report)
}

/// `stress`: the E9b overload load ramp — admission control, the
/// brownout ladder, NACK + retry-after shedding, deadline-budgeted
/// client retries, and warm-standby Route Server failover, all on one
/// deterministic seeded storm.
pub fn stress(args: &Args) -> Result<String, CliError> {
    args.known_with_positionals(&["json", "trace", "sharded"])?;
    let json = args.opt_parse("json", false)?;
    let trace_path = args.opt("trace");
    let sharded = args.opt_parse("sharded", false)?;
    let scenario = args.positional_one("scenario")?.to_string();
    let sc = stress_scenario(&scenario)?;
    let (net, r) = stress_run(&sc, true, sharded.then(ShardConfig::default));
    let mut out = String::new();
    if json {
        let _ = write!(
            out,
            "{{\"stress\":{{\"scenario\":\"{scenario}\",\"ads\":{},\"links\":{},\"seed\":{},\
             \"sharded\":{sharded},\"phases\":[",
            sc.topo.num_ads(),
            sc.topo.num_links(),
            sc.seed
        );
        for (i, p) in r.phases.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"offered\":{},\"served\":{},\"served_full\":{},\"served_cached\":{},\
                 \"served_stored\":{},\"shed\":{},\"abandoned\":{},\"no_route\":{},\
                 \"failed\":{},\"duration_us\":{},\"goodput_per_sec\":{}}}",
                if i == 0 { "" } else { "," },
                p.offered,
                p.served,
                p.served_full,
                p.served_cached,
                p.served_stored,
                p.shed,
                p.abandoned,
                p.no_route,
                p.failed,
                p.duration_us,
                p.goodput_per_sec()
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"offered\":{},\"served\":{},\"shed\":{},\"abandoned\":{},\
             \"no_route\":{},\"failed\":{},\"retries\":{}}},\
             \"latency\":{{\"p50_wait_us\":{},\"p99_wait_us\":{}}},",
            r.offered,
            r.served,
            r.shed,
            r.abandoned,
            r.no_route,
            r.failed,
            r.retries,
            r.p50_wait_us,
            r.p99_wait_us
        );
        match &r.failover {
            Some(f) => {
                let _ = write!(
                    out,
                    "\"failover\":{{\"ad\":\"{}\",\"crashed_at_us\":{},\"takeover_at_us\":{},\
                     \"cancelled\":{},\"warmed\":{}}},",
                    f.ad,
                    f.crashed_at.as_us(),
                    f.takeover_at.as_us(),
                    f.cancelled,
                    f.warmed
                );
            }
            None => out.push_str("\"failover\":null,"),
        }
        match &r.chain {
            Some(c) => {
                let _ = write!(
                    out,
                    "\"chain\":{{\"shed\":{},\"retry\":{},\"admit\":{}}},",
                    c.shed.0, c.retry.0, c.admit.0
                );
            }
            None => out.push_str("\"chain\":null,"),
        }
        let _ = writeln!(out, "\"metrics\":{}}}}}", net.obs.metrics.to_json());
    } else {
        let _ = writeln!(
            out,
            "stress {scenario}: {} ADs, {} links, seed {}{}",
            sc.topo.num_ads(),
            sc.topo.num_links(),
            sc.seed,
            if sharded {
                " (sharded batch service)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "phase  offered/s   offered   served     full   cached   stored     shed    aband \
             no-route  goodput/s"
        );
        for (i, p) in r.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>5}  {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}  {:>9}",
                i + 1,
                sc.phases[i].opens_per_sec,
                p.offered,
                p.served,
                p.served_full,
                p.served_cached,
                p.served_stored,
                p.shed,
                p.abandoned,
                p.no_route,
                p.goodput_per_sec()
            );
        }
        let _ = writeln!(
            out,
            "totals: {} offered, {} served, {} shed NACKs (retry-after honored), \
             {} abandoned, {} no-route, {} setup-failed, {} retries",
            r.offered, r.served, r.shed, r.abandoned, r.no_route, r.failed, r.retries
        );
        let _ = writeln!(
            out,
            "latency: setup wait p50 {} us, p99 {} us",
            r.p50_wait_us, r.p99_wait_us
        );
        if let Some(f) = &r.failover {
            let _ = writeln!(
                out,
                "failover: {} Route Server crashed @{} us, warm standby took over @{} us: \
                 {} queued opens cancelled (NACKed), {} cache entries warmed",
                f.ad,
                f.crashed_at.as_us(),
                f.takeover_at.as_us(),
                f.cancelled,
                f.warmed
            );
        }
        if let Some(c) = &r.chain {
            let _ = writeln!(
                out,
                "causal chain: setup-shed #{} -> setup-retry #{} -> setup-admit #{} \
                 (defer -> retry -> serve across the storm)",
                c.shed.0, c.retry.0, c.admit.0
            );
        }
    }
    if let Some(path) = trace_path {
        let jsonl = net.obs.log.export_jsonl();
        fs::write(path, &jsonl)
            .map_err(|e| CliError(format!("cannot write trace '{path}': {e}")))?;
        let _ = writeln!(out, "trace: wrote {} bytes to {path}", jsonl.len());
    }
    Ok(out)
}

/// Runs one quiescence under `workers` lanes (sequential when 1); the
/// profiler attributes the work either way, so the ledger is identical.
fn run_quiesce<P: Protocol + Sync>(e: &mut Engine<P>, workers: usize)
where
    P::Router: Send,
    P::Msg: Send,
{
    if workers > 1 {
        e.run_to_quiescence_parallel(workers);
    } else {
        e.run_to_quiescence();
    }
}

/// Drives a serve ramp with the self-profiler attached and *no* event
/// log — the always-on light path — using the same service costs as
/// `stress_run`. Returns the network for its profiler.
fn profile_ramp(
    topo: &Topology,
    db: &PolicyDb,
    seed: u64,
    phases: &[StormPhase],
    sharding: Option<ShardConfig>,
) -> OrwgNetwork {
    let mut net = OrwgNetwork::converged(topo, db);
    net.enable_prof();
    let storm = OpenStorm::draw(topo, phases, SimTime::ZERO, seed);
    let durations_us: Vec<u64> = phases.iter().map(|p| p.duration_ms * 1000).collect();
    let cfg = StressConfig {
        seed,
        sharding,
        service_full_us: 6_000,
        service_cached_us: 1_200,
        service_stored_us: 600,
        ..StressConfig::default()
    };
    let _ = run_load_ramp(&mut net, &storm, &durations_us, &cfg);
    net
}

/// `profile`: run a fixed scenario with the self-profiler attached and
/// render the span tree. Self/total wall times vary run to run and are
/// never part of any golden; the `work` ledger is deterministic —
/// byte-identical across repeat runs and worker counts, which
/// `tests/profile_determinism.rs` enforces (the PR-7 determinism
/// contract extended to observability).
pub fn profile(args: &Args) -> Result<String, CliError> {
    args.known_with_positionals(&["json", "folded", "workers", "top", "ads", "loss", "out"])?;
    let json = args.opt_parse("json", false)?;
    let folded = args.opt_parse("folded", false)?;
    let workers: usize = args.opt_parse("workers", 2)?;
    let top: usize = args.opt_parse("top", 16)?;
    let scenario = args.positional_one("scenario")?.to_string();
    if workers == 0 {
        return bail("--workers must be positive");
    }
    let mut prof = Profiler::new();
    let (ads, links);
    match scenario.as_str() {
        // Engine lifecycle (converge, cut the trunk, re-converge) plus a
        // sharded serve ramp on the same seeded internet. e7b reuses the
        // e9b ramp schedule at a quarter of each phase's duration: the
        // same saturation ladder, a fraction of the arrivals.
        "quickstart" | "e7b" => {
            let (sc, phases) = if scenario == "quickstart" {
                let sc = stress_scenario("quickstart")?;
                let phases = sc.phases.clone();
                (sc, phases)
            } else {
                let sc = stress_scenario("e9b")?;
                let phases = sc
                    .phases
                    .iter()
                    .map(|p| StormPhase {
                        duration_ms: (p.duration_ms / 4).max(1),
                        opens_per_sec: p.opens_per_sec,
                    })
                    .collect();
                (sc, phases)
            };
            ads = sc.topo.num_ads();
            links = sc.topo.num_links();
            let db = PolicyWorkload::structural(sc.seed).generate(&sc.topo);
            let trunk = pick_trunk(&sc.topo);
            let mut e = Engine::new(sc.topo.clone(), OrwgProtocol::new(&sc.topo, db.clone()));
            e.enable_prof();
            e.begin_phase("converge");
            run_quiesce(&mut e, workers);
            e.begin_phase("failure-response");
            e.schedule_link_change(trunk, false, e.now().plus_us(1));
            run_quiesce(&mut e, workers);
            prof.merge_from(&e.prof);
            let net = profile_ramp(
                &sc.topo,
                &db,
                sc.seed,
                &phases,
                Some(ShardConfig::default()),
            );
            prof.merge_from(&net.prof);
        }
        // The region-parallel gossip flood: the engine-dispatch /
        // window / fanout / commit span stack with per-lane metrics.
        // `--loss p` attaches an event-keyed lossy channel (corrupt,
        // duplicate, and reorder scaled off `p`) so the profiled
        // dispatch path is the faulted one.
        "e13" => {
            let n: usize = args.opt_parse("ads", 2_000)?;
            if n == 0 {
                return bail("--ads must be positive");
            }
            let loss: f64 = args.opt_parse("loss", 0.0)?;
            if !(0.0..=1.0).contains(&loss) {
                return bail("--loss must be a probability in [0, 1]");
            }
            let topo = HierarchyConfig::with_approx_size(n, 1990).generate();
            ads = topo.num_ads();
            links = topo.num_links();
            let mut e = Engine::new(
                topo,
                Gossip {
                    origins: 8,
                    rounds: 4,
                    period_us: 50_000,
                    work: 0,
                },
            );
            if loss > 0.0 {
                e.set_channel_faults(Some(ChannelFaults {
                    loss,
                    corrupt: loss / 4.0,
                    duplicate: loss / 4.0,
                    reorder: loss / 2.0,
                    jitter_us: 500,
                    seed: 1990,
                    ..ChannelFaults::default()
                }));
            }
            e.enable_prof();
            run_quiesce(&mut e, workers);
            prof.merge_from(&e.prof);
        }
        // Full sharded e9b serving: the serve_batch rungs, shared
        // sweeps, and background refill under the whole brownout ramp.
        "e14" => {
            let sc = stress_scenario("e9b")?;
            ads = sc.topo.num_ads();
            links = sc.topo.num_links();
            let db = PolicyWorkload::structural(sc.seed).generate(&sc.topo);
            let net = profile_ramp(
                &sc.topo,
                &db,
                sc.seed,
                &sc.phases,
                Some(ShardConfig::default()),
            );
            prof.merge_from(&net.prof);
        }
        other => {
            return bail(format!(
                "unknown profile scenario '{other}'; scenarios: quickstart, e7b, e13, e14"
            ))
        }
    }
    let mut out = String::new();
    if json {
        let body = prof.to_json();
        let inner = &body[1..body.len() - 1];
        let _ = writeln!(
            out,
            "{{\"profile\":{{\"scenario\":\"{scenario}\",\"ads\":{ads},\"links\":{links},\
             \"workers\":{workers},{inner}}}}}"
        );
    } else if folded {
        out.push_str(&prof.fold());
    } else {
        let _ = writeln!(
            out,
            "profile {scenario}: {ads} ADs, {links} links, workers {workers}"
        );
        out.push_str(&prof.table(top));
    }
    emit(&out, args.opt("out"))
}

/// One timed serve-path run for `bench`: wall-clock figures plus the
/// (deterministic) simulated outcome.
struct ServeBench {
    attempts: u64,
    wall_ms: f64,
    opens_per_sec: u64,
    shed_rate: f64,
    report: StressReport,
}

fn serve_bench(sc: &StressScenario, sharding: Option<ShardConfig>) -> ServeBench {
    let t0 = std::time::Instant::now();
    let (_net, report) = stress_run(sc, false, sharding);
    let wall = t0.elapsed();
    let attempts = report.offered + report.retries;
    ServeBench {
        attempts,
        wall_ms: wall.as_secs_f64() * 1000.0,
        opens_per_sec: (attempts as f64 / wall.as_secs_f64().max(1e-9)) as u64,
        shed_rate: if attempts == 0 {
            0.0
        } else {
            report.shed as f64 / attempts as f64
        },
        report,
    }
}

/// `bench`: wall-clock throughput of the overload-serving path on the
/// e9b storm (no crash, so the numbers measure serving, not failover),
/// once through the monolithic one-open-per-slot path and once through
/// sharded batch service. The simulated results are deterministic; only
/// the wall-clock figures vary run to run.
pub fn bench(args: &Args) -> Result<String, CliError> {
    args.known(&[
        "json", "out", "engine", "obs", "chaos", "ads", "workers", "rounds", "cost", "seed", "loss",
    ])?;
    if args.opt_parse("engine", false)? {
        return bench_engine(args);
    }
    if args.opt_parse("obs", false)? {
        return bench_obs(args);
    }
    if args.opt_parse("chaos", false)? {
        return bench_chaos(args);
    }
    let json = args.opt_parse("json", false)?;
    let sc = stress_scenario("e9b")?;
    let mono = serve_bench(&sc, None);
    let shard = serve_bench(&sc, Some(ShardConfig::default()));
    let speedup = shard.opens_per_sec as f64 / mono.opens_per_sec.max(1) as f64;
    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"bench\":{{\"workload\":\"e9b\",\"opens\":{},\"attempts\":{},\
             \"served\":{},\"shed\":{},\"abandoned\":{},\"wall_ms\":{:.3},\
             \"opens_per_sec\":{},\"p50_setup_wait_us\":{},\
             \"p99_setup_wait_us\":{},\"shed_rate\":{:.4},\
             \"attempts_sharded\":{},\"served_sharded\":{},\"shed_sharded\":{},\
             \"wall_ms_sharded\":{:.3},\"opens_per_sec_sharded\":{},\
             \"p50_setup_wait_us_sharded\":{},\"p99_setup_wait_us_sharded\":{},\
             \"shed_rate_sharded\":{:.4},\"speedup\":{:.3}}}}}",
            mono.report.offered,
            mono.attempts,
            mono.report.served,
            mono.report.shed,
            mono.report.abandoned,
            mono.wall_ms,
            mono.opens_per_sec,
            mono.report.p50_wait_us,
            mono.report.p99_wait_us,
            mono.shed_rate,
            shard.attempts,
            shard.report.served,
            shard.report.shed,
            shard.wall_ms,
            shard.opens_per_sec,
            shard.report.p50_wait_us,
            shard.report.p99_wait_us,
            shard.shed_rate,
            speedup
        );
    } else {
        let _ = writeln!(
            out,
            "bench e9b: {} opens ({} attempts monolithic, {} sharded)",
            mono.report.offered, mono.attempts, shard.attempts
        );
        let _ = writeln!(
            out,
            "monolithic: wall {:.3} ms ({} opens/s); setup wait p50 {} us, p99 {} us; \
             shed rate {:.4}",
            mono.wall_ms,
            mono.opens_per_sec,
            mono.report.p50_wait_us,
            mono.report.p99_wait_us,
            mono.shed_rate
        );
        let _ = writeln!(
            out,
            "sharded:    wall {:.3} ms ({} opens/s); setup wait p50 {} us, p99 {} us; \
             shed rate {:.4}",
            shard.wall_ms,
            shard.opens_per_sec,
            shard.report.p50_wait_us,
            shard.report.p99_wait_us,
            shard.shed_rate
        );
        let _ = writeln!(out, "speedup: {speedup:.3}x (sharded vs monolithic)");
    }
    emit(&out, args.opt("out"))
}

/// `bench --engine`: wall-clock throughput of the discrete-event core on
/// the cheap gossip flood ([`adroute_protocols::gossip`]), whose handlers
/// are a few array reads — so the figure measures the engine's dispatch,
/// queue, and delivery machinery, not protocol computation. Five timed
/// runs over the same deterministic event population: sequential with no
/// observer (the zero-allocation dispatch path), region-parallel at
/// `--workers`, sequential with the trace observer attached (pricing the
/// emit path the no-observer run skips), and a sequential/parallel pair
/// with `--cost` iterations of synthetic per-delivery compute — the
/// compute-bound regime where region-parallel execution pays, since its
/// journaling and sequential commit replay cost roughly constant time
/// per event regardless of handler weight.
fn bench_engine(args: &Args) -> Result<String, CliError> {
    let ads: usize = args.opt_parse("ads", 10_000)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let workers: usize = args.opt_parse("workers", 8)?;
    let rounds: u32 = args.opt_parse("rounds", 4)?;
    let cost: u32 = args.opt_parse("cost", 2_000)?;
    let json = args.opt_parse("json", false)?;
    if ads == 0 || workers == 0 || rounds == 0 {
        return bail("--ads, --workers, and --rounds must be positive");
    }
    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    let gossip = Gossip {
        origins: 8,
        rounds,
        period_us: 50_000,
        work: 0,
    };
    let costly = Gossip {
        work: cost,
        ..gossip
    };
    let (num_ads, links) = (topo.num_ads(), topo.num_links());
    // Recorded so the speedup figures are interpretable: on a 1-CPU host
    // the parallel lanes time-slice and the best possible "speedup" is
    // the overhead ratio, not a gain.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let run = |g: Gossip, regions: Option<usize>, trace_cap: usize| {
        let mut e = Engine::new(topo.clone(), g);
        if trace_cap > 0 {
            e.enable_trace(trace_cap);
        }
        let t0 = std::time::Instant::now();
        let quiesced = match regions {
            None => e.run_to_quiescence(),
            Some(r) => e.run_to_quiescence_parallel(r),
        };
        (e.stats.events, t0.elapsed(), quiesced)
    };
    let rate = |events: u64, wall: std::time::Duration| {
        (events as f64 / wall.as_secs_f64().max(1e-9)) as u64
    };

    let (ev_seq, wall_seq, quiesced) = run(gossip, None, 0);
    let (ev_par, wall_par, q_par) = run(gossip, Some(workers), 0);
    let (ev_obs, wall_obs, _) = run(gossip, None, 1 << 16);
    let (_, wall_cseq, _) = run(costly, None, 0);
    let (_, wall_cpar, _) = run(costly, Some(workers), 0);
    debug_assert_eq!((ev_seq, quiesced), (ev_par, q_par));
    let (seq_rate, par_rate, obs_rate, cseq_rate, cpar_rate) = (
        rate(ev_seq, wall_seq),
        rate(ev_par, wall_par),
        rate(ev_obs, wall_obs),
        rate(ev_seq, wall_cseq),
        rate(ev_seq, wall_cpar),
    );
    let speedup = wall_seq.as_secs_f64() / wall_par.as_secs_f64().max(1e-9);
    let cspeedup = wall_cseq.as_secs_f64() / wall_cpar.as_secs_f64().max(1e-9);

    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"bench\":{{\"workload\":\"engine-gossip\",\"ads\":{num_ads},\
             \"links\":{links},\"workers\":{workers},\"host_cpus\":{host_cpus},\
             \"events\":{ev_seq},\
             \"quiesced_at_us\":{},\"wall_ms_seq\":{:.3},\
             \"events_per_sec_seq\":{seq_rate},\"wall_ms_par\":{:.3},\
             \"events_per_sec_par\":{par_rate},\"speedup\":{speedup:.3},\
             \"wall_ms_observed\":{:.3},\"events_per_sec_observed\":{obs_rate},\
             \"cost\":{cost},\"wall_ms_seq_costly\":{:.3},\
             \"events_per_sec_seq_costly\":{cseq_rate},\
             \"wall_ms_par_costly\":{:.3},\
             \"events_per_sec_par_costly\":{cpar_rate},\
             \"speedup_costly\":{cspeedup:.3}}}}}",
            quiesced.as_us(),
            wall_seq.as_secs_f64() * 1000.0,
            wall_par.as_secs_f64() * 1000.0,
            wall_obs.as_secs_f64() * 1000.0,
            wall_cseq.as_secs_f64() * 1000.0,
            wall_cpar.as_secs_f64() * 1000.0,
        );
    } else {
        let _ = writeln!(
            out,
            "bench engine-gossip: {num_ads} ADs, {links} links, {ev_seq} events \
             (quiesced @{} us, host has {host_cpus} CPUs)",
            quiesced.as_us()
        );
        let _ = writeln!(
            out,
            "sequential:       {:.3} ms ({seq_rate} events/s, no observer)",
            wall_seq.as_secs_f64() * 1000.0
        );
        let _ = writeln!(
            out,
            "parallel x{workers}:      {:.3} ms ({par_rate} events/s, speedup {speedup:.2})",
            wall_par.as_secs_f64() * 1000.0
        );
        let _ = writeln!(
            out,
            "observer attached: {:.3} ms ({obs_rate} events/s, emit path priced in)",
            wall_obs.as_secs_f64() * 1000.0
        );
        let _ = writeln!(
            out,
            "compute-bound (cost {cost}): seq {:.3} ms, parallel x{workers} {:.3} ms \
             (speedup {cspeedup:.2})",
            wall_cseq.as_secs_f64() * 1000.0,
            wall_cpar.as_secs_f64() * 1000.0
        );
    }
    emit(&out, args.opt("out"))
}

/// `bench --chaos`: wall-clock throughput of the discrete-event core on
/// the gossip flood with the chaos machinery engaged — an event-keyed
/// lossy / corrupting / duplicating / reordering channel plus a
/// partition/heal cycle across the AD-index midpoint — sequential and
/// region-parallel at `--workers`. The simulated outcome is identical in
/// every run (each channel verdict is a pure function of event identity),
/// so the asserted counters double as a determinism check; only the
/// wall-clock figures vary. CI's chaos-throughput gate reads the JSON.
fn bench_chaos(args: &Args) -> Result<String, CliError> {
    let ads: usize = args.opt_parse("ads", 10_000)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let workers: usize = args.opt_parse("workers", 8)?;
    let rounds: u32 = args.opt_parse("rounds", 4)?;
    let loss: f64 = args.opt_parse("loss", 0.05)?;
    let json = args.opt_parse("json", false)?;
    if ads == 0 || workers == 0 || rounds == 0 {
        return bail("--ads, --workers, and --rounds must be positive");
    }
    if !(0.0..=0.5).contains(&loss) {
        return bail("--loss must be in [0, 0.5]");
    }
    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    let gossip = Gossip {
        origins: 8,
        rounds,
        period_us: 50_000,
        work: 0,
    };
    let faults = ChannelFaults {
        loss,
        corrupt: loss / 4.0,
        duplicate: loss / 4.0,
        reorder: loss / 2.0,
        jitter_us: 500,
        seed: seed ^ 0x33,
        ..ChannelFaults::default()
    };
    // The flood spans rounds * 50 ms; cut at 10 ms, heal at the midpoint.
    let split = (topo.num_ads() / 2) as u32;
    let heal_at = SimTime::from_ms(u64::from(rounds) * 50 / 2).plus_us(1);
    let (num_ads, links) = (topo.num_ads(), topo.num_links());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let run = |regions: Option<usize>| {
        let mut e = Engine::new(topo.clone(), gossip);
        e.set_channel_faults(Some(faults.clone()));
        if let Some(plan) = FaultPlan::partition(&topo, split, SimTime::from_ms(10), heal_at) {
            plan.apply(&mut e);
        }
        let t0 = std::time::Instant::now();
        let quiesced = match regions {
            None => e.run_to_quiescence(),
            Some(r) => e.run_to_quiescence_parallel(r),
        };
        let chaos_events = e.stats.msgs_lost
            + e.stats.msgs_corrupted
            + e.stats.msgs_duplicated
            + e.stats.msgs_reordered;
        (e.stats.events, chaos_events, t0.elapsed(), quiesced)
    };
    let rate = |events: u64, wall: std::time::Duration| {
        (events as f64 / wall.as_secs_f64().max(1e-9)) as u64
    };

    let (ev_seq, chaos_seq, wall_seq, quiesced) = run(None);
    let (ev_par, chaos_par, wall_par, q_par) = run(Some(workers));
    assert_eq!(
        (ev_seq, chaos_seq, quiesced),
        (ev_par, chaos_par, q_par),
        "faulted parallel run diverged from sequential"
    );
    let (seq_rate, par_rate) = (rate(ev_seq, wall_seq), rate(ev_par, wall_par));
    let speedup = wall_seq.as_secs_f64() / wall_par.as_secs_f64().max(1e-9);

    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"bench\":{{\"workload\":\"engine-chaos\",\"ads\":{num_ads},\
             \"links\":{links},\"workers\":{workers},\"host_cpus\":{host_cpus},\
             \"loss\":{loss},\"events\":{ev_seq},\"chaos_events\":{chaos_seq},\
             \"quiesced_at_us\":{},\"wall_ms_seq\":{:.3},\
             \"events_per_sec_seq\":{seq_rate},\"wall_ms_par\":{:.3},\
             \"events_per_sec_par\":{par_rate},\"speedup\":{speedup:.3}}}}}",
            quiesced.as_us(),
            wall_seq.as_secs_f64() * 1000.0,
            wall_par.as_secs_f64() * 1000.0,
        );
    } else {
        let _ = writeln!(
            out,
            "bench engine-chaos: {num_ads} ADs, {links} links, {ev_seq} events \
             ({chaos_seq} channel faults, quiesced @{} us, host has {host_cpus} CPUs)",
            quiesced.as_us()
        );
        let _ = writeln!(
            out,
            "sequential:  {:.3} ms ({seq_rate} events/s)",
            wall_seq.as_secs_f64() * 1000.0
        );
        let _ = writeln!(
            out,
            "parallel x{workers}: {:.3} ms ({par_rate} events/s, speedup {speedup:.2})",
            wall_par.as_secs_f64() * 1000.0
        );
    }
    emit(&out, args.opt("out"))
}

/// `bench --obs`: price the observability sinks on the engine bench's
/// gossip flood — the same deterministic event population run with no
/// sink, with the trace observer attached, and with the self-profiler
/// on. Each mode is timed three times, interleaved so clock drift hits
/// all modes alike, and the best run kept, which cancels scheduler
/// noise out of the overhead ratios. `prof_overhead` is the CI-gated
/// budget: the profiler's instrumentation is per-run/per-window, not
/// per-event, so it must stay within 5% of the no-sink path — and the
/// no-sink path itself must not regress against the committed baseline.
fn bench_obs(args: &Args) -> Result<String, CliError> {
    let ads: usize = args.opt_parse("ads", 10_000)?;
    let seed: u64 = args.opt_parse("seed", 1990)?;
    let rounds: u32 = args.opt_parse("rounds", 4)?;
    let json = args.opt_parse("json", false)?;
    if ads == 0 || rounds == 0 {
        return bail("--ads and --rounds must be positive");
    }
    let topo = HierarchyConfig::with_approx_size(ads, seed).generate();
    let gossip = Gossip {
        origins: 8,
        rounds,
        period_us: 50_000,
        work: 0,
    };
    let (num_ads, links) = (topo.num_ads(), topo.num_links());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Modes: 0 = no sink, 1 = trace observer, 2 = self-profiler.
    let run = |mode: usize| {
        let mut e = Engine::new(topo.clone(), gossip);
        match mode {
            1 => e.enable_trace(1 << 16),
            2 => e.enable_prof(),
            _ => {}
        }
        let t0 = std::time::Instant::now();
        e.run_to_quiescence();
        (e.stats.events, t0.elapsed())
    };
    let mut best = [std::time::Duration::MAX; 3];
    let mut events = 0u64;
    for _ in 0..3 {
        for (mode, b) in best.iter_mut().enumerate() {
            let (ev, wall) = run(mode);
            events = ev;
            *b = (*b).min(wall);
        }
    }
    let ms = |w: std::time::Duration| w.as_secs_f64() * 1000.0;
    let rate = |w: std::time::Duration| (events as f64 / w.as_secs_f64().max(1e-9)) as u64;
    let ratio = |w: std::time::Duration| w.as_secs_f64() / best[0].as_secs_f64().max(1e-9);

    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"bench\":{{\"workload\":\"engine-obs\",\"ads\":{num_ads},\"links\":{links},\
             \"host_cpus\":{host_cpus},\"events\":{events},\
             \"wall_ms_nosink\":{:.3},\"events_per_sec_nosink\":{},\
             \"wall_ms_log\":{:.3},\"events_per_sec_log\":{},\"log_overhead\":{:.4},\
             \"wall_ms_prof\":{:.3},\"events_per_sec_prof\":{},\"prof_overhead\":{:.4}}}}}",
            ms(best[0]),
            rate(best[0]),
            ms(best[1]),
            rate(best[1]),
            ratio(best[1]),
            ms(best[2]),
            rate(best[2]),
            ratio(best[2]),
        );
    } else {
        let _ = writeln!(
            out,
            "bench engine-obs: {num_ads} ADs, {links} links, {events} events \
             (best of 3 interleaved runs per mode, host has {host_cpus} CPUs)"
        );
        let _ = writeln!(
            out,
            "no sink:        {:.3} ms ({} events/s)",
            ms(best[0]),
            rate(best[0])
        );
        let _ = writeln!(
            out,
            "trace observer: {:.3} ms ({} events/s, overhead {:.3}x)",
            ms(best[1]),
            rate(best[1]),
            ratio(best[1])
        );
        let _ = writeln!(
            out,
            "self-profiler:  {:.3} ms ({} events/s, overhead {:.3}x, budget 1.05x)",
            ms(best[2]),
            rate(best[2]),
            ratio(best[2])
        );
    }
    emit(&out, args.opt("out"))
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "gen-topo" => gen_topo(args),
        "gen-policies" => gen_policies(args),
        "route" => route(args),
        "audit" => audit(args),
        "impact" => impact(args),
        "chaos" => chaos(args),
        "report" => report(args),
        "trace" => trace(args),
        "blame" => blame(args),
        "stress" => stress(args),
        "profile" => profile(args),
        "bench" => bench(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => bail(format!("unknown command '{other}'; try `adroute help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run(line: &str) -> Result<String, CliError> {
        dispatch(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("adroute-cli-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_pipeline() {
        let topo_file = tmp("pipeline.topo");
        let pol_file = tmp("pipeline.pol");
        // 1. Generate a topology.
        let msg = run(&format!("gen-topo --ads 60 --seed 3 --out {topo_file}")).unwrap();
        assert!(msg.contains("wrote"));
        // 2. Generate policies for it.
        let msg = run(&format!(
            "gen-policies --topo {topo_file} --seed 3 --out {pol_file}"
        ))
        .unwrap();
        assert!(msg.contains("wrote"));
        // 3. Route a flow.
        let out = run(&format!(
            "route --topo {topo_file} --policies {pol_file} --src 3 --dst 40"
        ))
        .unwrap();
        assert!(out.contains("flow: AD3->AD40"), "{out}");
        assert!(
            out.contains("route:") || out.contains("no policy-legal route"),
            "{out}"
        );
        // 4. Audit.
        let out = run(&format!("audit --topo {topo_file}")).unwrap();
        assert!(out.contains("articulation ADs"), "{out}");
        assert!(out.contains("connected: true"), "{out}");
        // 5. Impact of shutting down AD2.
        let cand_file = tmp("pipeline.cand");
        fs::write(&cand_file, "policy AD2 { default deny; }").unwrap();
        let out = run(&format!(
            "impact --topo {topo_file} --policies {pol_file} --candidate {cand_file} --flows 50"
        ))
        .unwrap();
        assert!(out.contains("safe (no flow stranded):"), "{out}");
        assert!(out.contains("transit share:"), "{out}");
    }

    #[test]
    fn route_with_class_flags() {
        let topo_file = tmp("classes.topo");
        run(&format!("gen-topo --ads 50 --seed 5 --out {topo_file}")).unwrap();
        let out = run(&format!(
            "route --topo {topo_file} --src 0 --dst 10 --qos 1 --uci 2 --time 23:30"
        ))
        .unwrap();
        assert!(out.contains("qos1 uci2 @23:30"), "{out}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run("frobnicate").unwrap_err().0.contains("unknown command"));
        assert!(run("gen-topo").unwrap_err().0.contains("--ads"));
        assert!(run("gen-topo --ads 50 --bogus 1")
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(run("route --topo /nonexistent --src 0 --dst 1")
            .unwrap_err()
            .0
            .contains("cannot read"));
        let topo_file = tmp("err.topo");
        run(&format!("gen-topo --ads 50 --seed 5 --out {topo_file}")).unwrap();
        assert!(run(&format!("route --topo {topo_file} --src 0 --dst 9999"))
            .unwrap_err()
            .0
            .contains("outside the topology"));
        assert!(run(&format!(
            "route --topo {topo_file} --src 0 --dst 1 --time 25:00"
        ))
        .unwrap_err()
        .0
        .contains("bad time"));
        assert!(run("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn chaos_reports_recovery_and_is_deterministic() {
        let line = "chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20";
        let a = run(line).unwrap();
        assert!(a.contains("chaos: "), "{a}");
        assert!(a.contains("router outages"), "{a}");
        assert!(a.contains("views consistent with ground truth"), "{a}");
        assert!(a.contains("stale forwards across all gateways: 0"), "{a}");
        // Full reconvergence: the consistent count equals the checked count.
        let line_views = a.lines().find(|l| l.contains("views consistent")).unwrap();
        let frac = line_views.rsplit(' ').nth(1).unwrap();
        let (num, den) = frac.split_once('/').unwrap();
        assert_eq!(num, den, "not all views reconverged: {a}");
        // Every torn-down flow with a legal detour must be repaired: the
        // unrepairable count equals the oracle's no-detour count.
        let line_torn = a.lines().find(|l| l.contains("flows torn down")).unwrap();
        let no_detour: u64 = line_torn
            .split('(')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let line_rep = a.lines().find(|l| l.contains("unrepairable")).unwrap();
        let unrepairable: u64 = line_rep.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(unrepairable, no_detour, "repair missed a legal detour: {a}");
        // Identical seeds produce a byte-identical report.
        let b = run(line).unwrap();
        assert_eq!(a, b);
        // A different seed produces a different plan.
        let c = run("chaos --ads 30 --seed 12 --duration 250 --loss 0.05 --flows 20").unwrap();
        assert_ne!(a, c);
        // Loss outside range is refused.
        assert!(run("chaos --loss 0.9").unwrap_err().0.contains("--loss"));
    }

    #[test]
    fn chaos_view_modes_agree_on_recovery() {
        let inc = run("chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20").unwrap();
        assert!(inc.contains("view maintenance (incremental)"), "{inc}");
        let flush =
            run("chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20 --view flush")
                .unwrap();
        assert!(flush.contains("view maintenance (flush)"), "{flush}");
        // The maintenance mode changes the invalidation accounting, never
        // the recovery outcome: every line except the counters matches.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("view maintenance"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&inc), strip(&flush));
        // Bad values are refused.
        assert!(run("chaos --view bogus").unwrap_err().0.contains("--view"));
    }

    #[test]
    fn audit_scenarios_run_the_byzantine_lifecycle() {
        for scenario in ["quickstart", "e7b"] {
            let a = run(&format!("audit {scenario}")).unwrap();
            assert!(a.starts_with(&format!("audit {scenario}:")), "{a}");
            assert!(a.contains("turns rogue (forged-ack)"), "{a}");
            // The tripwire fires on the very first monitoring tick: the
            // covert policy flip makes existing transits violations.
            assert!(
                a.contains("detect: policy-violation tripwire fired on tick 1"),
                "{a}"
            );
            assert!(a.contains("contain: quarantined AD"), "{a}");
            // Containment is complete: nothing violates afterwards.
            assert!(
                a.contains(
                    "0 flows violating after containment (policy-legal reconvergence: true)"
                ),
                "{a}"
            );
            // The full causal chain is visible with real event ids.
            assert!(a.contains("causal chain: misbehavior-inject #"), "{a}");
            assert!(a.contains("-> monitor-alarm #"), "{a}");
            assert!(a.contains("-> quarantine-enter #"), "{a}");
            // Deterministic.
            assert_eq!(a, run(&format!("audit {scenario}")).unwrap());
        }
    }

    #[test]
    fn audit_json_reports_the_full_lifecycle() {
        let line = "audit quickstart --json";
        let a = run(line).unwrap();
        assert!(
            a.starts_with("{\"audit\":{\"scenario\":\"quickstart\""),
            "{a}"
        );
        for field in [
            "\"rogue\":\"AD",
            "\"model\":\"forged-ack\"",
            "\"violating_before\":",
            "\"detection\":{\"detector\":\"policy-violation\",\"tick\":1,",
            "\"quarantine\":{\"entered\":1,",
            "\"violating_after\":0",
            "\"reconverged_legal\":true",
            "\"quarantine_entered\":1",
            "\"detection_latency_ticks\":",
        ] {
            assert!(a.contains(field), "missing {field}: {a}");
        }
        assert_eq!(a, run(line).unwrap());
    }

    #[test]
    fn audit_rejects_contradictory_and_malformed_usage() {
        // Bare `audit` falls into structural mode, which needs --topo.
        assert!(run("audit").unwrap_err().0.contains("--topo"));
        assert!(run("audit bogus")
            .unwrap_err()
            .0
            .contains("unknown audit scenario"));
        assert!(run("audit a b").unwrap_err().0.contains("exactly one"));
        // Structural flags contradict scenario mode.
        assert!(run("audit quickstart --topo x")
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(run("audit quickstart --tree true")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn audit_trace_exports_are_byte_identical_across_runs() {
        let f1 = tmp("audit-a.jsonl");
        let f2 = tmp("audit-b.jsonl");
        run(&format!("audit quickstart --trace {f1}")).unwrap();
        run(&format!("audit quickstart --trace {f2}")).unwrap();
        let ta = fs::read(&f1).unwrap();
        let tb = fs::read(&f2).unwrap();
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "identically-seeded audit traces must match");
        let text = String::from_utf8(ta).unwrap();
        assert!(text.contains("\"kind\":\"misbehavior-inject\""), "{text}");
        assert!(text.contains("\"kind\":\"monitor-alarm\""), "{text}");
        assert!(text.contains("\"kind\":\"quarantine-enter\""), "{text}");
        assert!(text.contains("\"kind\":\"setup-repair\""), "{text}");
    }

    #[test]
    fn chaos_byzantine_detects_and_contains_the_rogue() {
        let line = "chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20 --byzantine";
        let a = run(line).unwrap();
        assert!(a.contains("byzantine: forged-ack at AD"), "{a}");
        assert!(a.contains("detected: policy-violation tripwire"), "{a}");
        assert!(a.contains("violating flows after containment: 0"), "{a}");
        assert_eq!(a, run(line).unwrap());
        // The byzantine phase rides on top of an unchanged fault sweep.
        let plain = run("chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20").unwrap();
        for l in plain.lines() {
            assert!(a.contains(l), "byzantine run lost line: {l}");
        }
    }

    #[test]
    fn chaos_rejects_contradictory_flag_combinations() {
        assert!(run("chaos --byzantine route-leak")
            .unwrap_err()
            .0
            .contains("forged-ack"));
        assert!(run("chaos --byzantine bogus")
            .unwrap_err()
            .0
            .contains("unknown misbehavior model"));
        assert!(run("chaos --duration 0")
            .unwrap_err()
            .0
            .contains("--duration"));
        assert!(run("chaos --flows 0 --byzantine")
            .unwrap_err()
            .0
            .contains("--flows"));
        assert!(run("chaos --bogus 1")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn report_covers_every_design_point() {
        let line = "report --ads 40 --seed 7 --flows 20";
        let txt = run(line).unwrap();
        for name in ["dv", "ecma", "pv", "ls-hbh", "orwg"] {
            assert!(txt.contains(name), "missing {name}: {txt}");
        }
        assert!(txt.contains("converge_us"), "{txt}");
        assert!(txt.contains("/failure-response:"), "{txt}");
        // JSON mode: convergence time, message complexity, and setup
        // latency histograms for every design point, deterministically.
        let a = run(&format!("{line} --json")).unwrap();
        for field in [
            "\"name\":\"orwg\"",
            "\"name\":\"dv\"",
            "\"name\":\"ecma\"",
            "\"name\":\"pv\"",
            "\"name\":\"ls-hbh\"",
            "\"convergence_us\":",
            "\"reconvergence_us\":",
            "\"msgs_sent\":",
            "\"setup_latency_us\":",
            "\"ad_msgs\":",
            "\"converge\":",
            "\"failure-response\":",
            // The orwg point runs a byzantine containment drill: its
            // quarantine lifecycle counters report even when zero.
            "\"quarantine_entered\":",
            "\"quarantine_lifted\":",
            "\"false_positive\":",
            "\"detection_latency_ticks\":",
            // Route-Server efficiency counters (sharded sweeps + AD-set
            // intern pool) report on the orwg point even when zero.
            "\"sweep_batches\":",
            "\"sweep_classes\":",
            "\"intern_hits\":",
            "\"intern_misses\":",
        ] {
            assert!(a.contains(field), "missing {field}: {a}");
        }
        let b = run(&format!("{line} --json")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_exports_typed_jsonl() {
        let line = "trace --ads 25 --seed 5 --duration 150 --loss 0.05 --proto orwg";
        let a = run(line).unwrap();
        let b = run(line).unwrap();
        assert_eq!(a, b, "trace export must be deterministic");
        assert!(a.starts_with("{\"us\":"), "{}", &a[..a.len().min(200)]);
        assert!(a.lines().last().unwrap().contains("\"trace-summary\""));
        assert!(a.contains("\"kind\":\"phase\""), "phase markers missing");
        assert!(a.contains("\"kind\":\"fault-plan\""));
        // Every design point can export a trace.
        for proto in ["dv", "ecma", "pv", "ls-hbh"] {
            let t = run(&format!("trace --ads 20 --seed 3 --proto {proto}")).unwrap();
            assert!(t.contains("\"trace-summary\""), "{proto}: {t}");
        }
        assert!(run("trace --proto bogus")
            .unwrap_err()
            .0
            .contains("--proto"));
    }

    /// Parses a `blame` text report and checks the acceptance
    /// invariants: the critical path is a real causal chain, and the
    /// storm rows (plus the truncation remainder) partition the events.
    fn check_blame_text(out: &str) -> usize {
        // "N events in R span trees (acyclic: true)"
        let header = out
            .lines()
            .find(|l| l.contains("span trees"))
            .unwrap_or_else(|| panic!("no span-tree header: {out}"));
        assert!(header.contains("acyclic: true"), "{out}");
        let total: u64 = header.split_whitespace().next().unwrap().parse().unwrap();
        // "critical path: N causally-linked events"
        let path_len: usize = out
            .lines()
            .find(|l| l.starts_with("critical path:"))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .parse()
            .unwrap();
        let path_lines: Vec<&str> = out.lines().filter(|l| l.starts_with("  #")).collect();
        assert_eq!(path_lines.len(), path_len, "{out}");
        // Every non-root path step names the step before it as its cause.
        assert!(path_lines[0].contains("[root]"), "{out}");
        for w in path_lines.windows(2) {
            let prev_id = w[0]
                .trim_start()
                .trim_start_matches('#')
                .split_whitespace()
                .next()
                .unwrap();
            assert!(w[1].contains(&format!("[<- #{prev_id}]")), "{out}");
        }
        // Storm rows + remainder partition the total.
        let mut sum: u64 = 0;
        for l in out.lines().filter(|l| l.trim_start().starts_with("root #")) {
            let events: u64 = l
                .split("events ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            sum += events;
        }
        if let Some(l) = out.lines().find(|l| l.contains("more roots covering")) {
            let rest: u64 = l
                .split("covering ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            sum += rest;
        }
        assert_eq!(sum, total, "storm report is not a partition: {out}");
        path_len
    }

    #[test]
    fn blame_quickstart_prints_causal_chain_and_partitioning_storms() {
        let a = run("blame quickstart").unwrap();
        assert!(a.starts_with("blame quickstart:"), "{a}");
        let path_len = check_blame_text(&a);
        assert!(path_len >= 3, "critical path too short ({path_len}): {a}");
        // Deterministic.
        assert_eq!(a, run("blame quickstart").unwrap());
        // JSON form carries the same analysis, machine-readably.
        let j = run("blame quickstart --json").unwrap();
        assert!(
            j.starts_with("{\"blame\":{\"scenario\":\"quickstart\""),
            "{j}"
        );
        assert!(j.contains("\"critical_path\":[{\"us\":"), "{j}");
        assert!(j.contains("\"storms\":[{\"root\":"), "{j}");
        assert!(j.contains("\"cause\":"), "{j}");
        // Errors.
        assert!(run("blame bogus").unwrap_err().0.contains("scenario"));
        assert!(run("blame").unwrap_err().0.contains("scenario"));
        assert!(run("blame a b").unwrap_err().0.contains("exactly one"));
    }

    #[test]
    fn blame_e7b_attributes_data_plane_churn() {
        let out = run("blame e7b").unwrap();
        let path_len = check_blame_text(&out);
        assert!(path_len >= 3, "critical path too short ({path_len}): {out}");
        // The data-plane storms are rooted in setups and view deltas.
        assert!(
            out.contains("setup-open") || out.contains("view-delta"),
            "{out}"
        );
    }

    #[test]
    fn trace_analyze_prints_causal_analysis() {
        let out = run("trace --ads 25 --seed 5 --duration 150 --loss 0.05 --analyze").unwrap();
        assert!(out.starts_with("trace analysis:"), "{out}");
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("storm report:"), "{out}");
        assert!(out.contains("acyclic: true"), "{out}");
        // The analysis replaces the JSONL stream.
        assert!(!out.contains("\"kind\":"), "{out}");
        assert_eq!(
            out,
            run("trace --ads 25 --seed 5 --duration 150 --loss 0.05 --analyze").unwrap()
        );
    }

    #[test]
    fn chaos_trace_exports_are_byte_identical_across_runs() {
        let f1 = tmp("chaos-a.jsonl");
        let f2 = tmp("chaos-b.jsonl");
        let base = "chaos --ads 30 --seed 11 --duration 250 --loss 0.05 --flows 20";
        let a = run(&format!("{base} --trace {f1}")).unwrap();
        let b = run(&format!("{base} --trace {f2}")).unwrap();
        // Enabling the trace must not perturb the simulation itself.
        let plain = run(base).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("trace:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), plain.trim_end());
        assert_eq!(strip(&b), plain.trim_end());
        let ta = fs::read(&f1).unwrap();
        let tb = fs::read(&f2).unwrap();
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "identically-seeded chaos traces must match");
        let text = String::from_utf8(ta).unwrap();
        assert!(text.contains("\"kind\":\"setup-open\""), "{text}");
        assert!(text.contains("\"kind\":\"view-delta\""));
        assert!(text.contains("\"kind\":\"setup-repair\""));
    }

    #[test]
    fn gen_topo_to_stdout_round_trips() {
        let text = run("gen-topo --ads 50 --seed 9").unwrap();
        let topo = adroute_topology::io::parse(&text).unwrap();
        assert!(topo.num_ads() >= 40);
    }

    #[test]
    fn stress_quickstart_shows_the_ladder_sheds_and_fails_over() {
        let line = "stress quickstart";
        let a = run(line).unwrap();
        assert!(a.contains("stress quickstart: "), "{a}");
        // Shed opens get NACKs with retry-after, never silent drops.
        assert!(a.contains("shed NACKs (retry-after honored)"), "{a}");
        // The mid-peak crash recovers via warm-standby takeover.
        assert!(a.contains("warm standby took over"), "{a}");
        assert!(a.contains("cache entries warmed"), "{a}");
        // A complete defer -> retry -> serve span survived the storm.
        assert!(a.contains("causal chain: setup-shed #"), "{a}");
        // Goodput is monotone non-collapsing past saturation: the last
        // phase's goodput stays within 70% of the best earlier phase.
        let goodputs: Vec<u64> = a
            .lines()
            .skip(2)
            .take(4)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(goodputs.len(), 4, "{a}");
        let best_early = *goodputs[..3].iter().max().unwrap();
        assert!(
            goodputs[3] * 10 >= best_early * 7,
            "goodput collapsed past saturation: {goodputs:?}\n{a}"
        );
        // Later phases lean on cheaper rungs: some opens serve stored.
        let last = a.lines().nth(5).unwrap();
        let cols: Vec<u64> = last
            .split_whitespace()
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(cols[6] > 0, "peak phase never reached the stored rung: {a}");
        // Identical seeds produce a byte-identical report.
        assert_eq!(a, run(line).unwrap());
    }

    #[test]
    fn stress_json_reports_phases_failover_and_chain() {
        let line = "stress quickstart --json";
        let a = run(line).unwrap();
        for key in [
            "\"stress\":{",
            "\"phases\":[",
            "\"goodput_per_sec\":",
            "\"totals\":{",
            "\"retries\":",
            "\"failover\":{\"ad\":\"AD",
            "\"warmed\":",
            "\"chain\":{\"shed\":",
            "\"metrics\":{",
        ] {
            assert!(a.contains(key), "missing {key}: {a}");
        }
        assert_eq!(a, run(line).unwrap());
    }

    #[test]
    fn stress_rejects_unknown_scenarios_and_flags() {
        assert!(run("stress bogus")
            .unwrap_err()
            .0
            .contains("unknown stress scenario"));
        assert!(run("stress").unwrap_err().0.contains("scenario"));
        assert!(run("stress quickstart --out x")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn stress_trace_exports_are_byte_identical_across_runs() {
        let f1 = tmp("stress-a.jsonl");
        let f2 = tmp("stress-b.jsonl");
        run(&format!("stress quickstart --trace {f1}")).unwrap();
        run(&format!("stress quickstart --trace {f2}")).unwrap();
        let ta = fs::read(&f1).unwrap();
        let tb = fs::read(&f2).unwrap();
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "identically-seeded stress traces must match");
        let text = String::from_utf8(ta).unwrap();
        // The overload lifecycle is visible in the typed stream: defers,
        // NACKs carrying retry-after, client retries, admits, and the
        // Route Server crash/failover pair.
        assert!(text.contains("\"kind\":\"setup-defer\""), "{text}");
        assert!(text.contains("\"kind\":\"setup-shed\""));
        assert!(text.contains("\"retry_after_us\":"));
        assert!(text.contains("\"kind\":\"setup-retry\""));
        assert!(text.contains("\"kind\":\"setup-admit\""));
        assert!(text.contains("\"kind\":\"rs-crash\""));
        assert!(text.contains("\"kind\":\"rs-failover\""));
    }

    #[test]
    fn bench_emits_the_serve_schema() {
        let f = tmp("bench-serve.json");
        let msg = run(&format!("bench --json --out {f}")).unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let j = fs::read_to_string(&f).unwrap();
        for key in [
            "\"bench\":{",
            "\"opens\":",
            "\"opens_per_sec\":",
            "\"p50_setup_wait_us\":",
            "\"p99_setup_wait_us\":",
            "\"shed_rate\":",
            "\"opens_per_sec_sharded\":",
            "\"p50_setup_wait_us_sharded\":",
            "\"p99_setup_wait_us_sharded\":",
            "\"shed_rate_sharded\":",
            "\"speedup\":",
        ] {
            assert!(j.contains(key), "missing {key}: {j}");
        }
        let text = run("bench").unwrap();
        assert!(text.contains("monolithic: wall"), "{text}");
        assert!(text.contains("sharded:    wall"), "{text}");
        assert!(text.contains("speedup:"), "{text}");
        assert!(run("bench --trace x")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn bench_engine_emits_the_engine_schema() {
        let f = tmp("bench-engine.json");
        // Small scale so the debug-mode test stays fast; the committed
        // baseline uses the release-mode defaults (10^4 ADs).
        let msg = run(&format!(
            "bench --engine --ads 200 --workers 2 --rounds 2 --cost 10 --json --out {f}"
        ))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let j = fs::read_to_string(&f).unwrap();
        for key in [
            "\"workload\":\"engine-gossip\"",
            "\"ads\":",
            "\"events\":",
            "\"events_per_sec_seq\":",
            "\"events_per_sec_par\":",
            "\"events_per_sec_observed\":",
            "\"speedup\":",
            "\"speedup_costly\":",
        ] {
            assert!(j.contains(key), "missing {key}: {j}");
        }
        let text = run("bench --engine --ads 200 --workers 2 --rounds 2 --cost 10").unwrap();
        assert!(text.contains("events/s, no observer"), "{text}");
        assert!(text.contains("speedup"), "{text}");
        assert!(run("bench --engine --ads 0")
            .unwrap_err()
            .0
            .contains("positive"));
    }

    #[test]
    fn bench_obs_emits_the_obs_schema() {
        let f = tmp("bench-obs.json");
        // Small scale so the debug-mode test stays fast; the committed
        // baseline uses the release-mode defaults (10^4 ADs).
        let msg = run(&format!(
            "bench --obs --ads 200 --rounds 2 --json --out {f}"
        ))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let j = fs::read_to_string(&f).unwrap();
        for key in [
            "\"workload\":\"engine-obs\"",
            "\"events\":",
            "\"events_per_sec_nosink\":",
            "\"events_per_sec_log\":",
            "\"log_overhead\":",
            "\"events_per_sec_prof\":",
            "\"prof_overhead\":",
        ] {
            assert!(j.contains(key), "missing {key}: {j}");
        }
        let text = run("bench --obs --ads 200 --rounds 2").unwrap();
        assert!(text.contains("no sink:"), "{text}");
        assert!(text.contains("self-profiler:"), "{text}");
        assert!(run("bench --obs --rounds 0")
            .unwrap_err()
            .0
            .contains("positive"));
    }

    /// Extracts the deterministic `"work":{...}` object from a profile's
    /// JSON output (the only part the determinism contract covers).
    fn work_object(json: &str) -> &str {
        let start = json.find("\"work\":{").expect("profile has a work object");
        let end = json[start..].find('}').expect("work object closes") + start;
        &json[start..=end]
    }

    #[test]
    fn profile_e13_work_ledger_is_worker_invariant() {
        let a = run("profile e13 --ads 300 --workers 2 --json").unwrap();
        assert!(a.starts_with("{\"profile\":{\"scenario\":\"e13\""), "{a}");
        for key in [
            "\"workers\":2",
            "\"work\":{",
            "\"engine/events\":",
            "\"engine/msgs_delivered\":",
            "\"spans\":[",
        ] {
            assert!(a.contains(key), "missing {key}: {a}");
        }
        // The ledger side is byte-identical across worker counts even
        // though the span tree (and its wall times) legitimately differ.
        let b = run("profile e13 --ads 300 --workers 4 --json").unwrap();
        assert_eq!(work_object(&a), work_object(&b));
        let seq = run("profile e13 --ads 300 --workers 1 --json").unwrap();
        assert_eq!(work_object(&a), work_object(&seq));
    }

    #[test]
    fn profile_quickstart_covers_engine_and_serve_spans() {
        let table = run("profile quickstart --workers 2").unwrap();
        for span in ["serve_batch", "synth", "load_ramp"] {
            assert!(table.contains(span), "missing span {span}: {table}");
        }
        assert!(table.contains("work ledger (deterministic):"), "{table}");
        assert!(table.contains("serve/opens_popped"), "{table}");
        let folded = run("profile quickstart --workers 2 --folded").unwrap();
        assert!(
            folded
                .lines()
                .any(|l| l.starts_with("load_ramp;serve_batch")),
            "{folded}"
        );
        // Every folded line is `path self_us`.
        for line in folded.lines() {
            let mut parts = line.rsplitn(2, ' ');
            let n = parts.next().unwrap();
            assert!(n.parse::<u64>().is_ok(), "bad folded line: {line}");
        }
    }

    #[test]
    fn profile_rejects_unknown_scenarios_and_flags() {
        assert!(run("profile nope").unwrap_err().0.contains("unknown"));
        assert!(run("profile e13 --workers 0")
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(run("profile e13 --bogus 1")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }
}
