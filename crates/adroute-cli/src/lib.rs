//! The `adroute` command-line tools as a library: argument parsing and
//! the pure command implementations, exposed so workspace integration
//! tests (notably `tests/profile_determinism.rs`) can drive complete
//! command lines in-process instead of spawning the binary.

pub mod args;
pub mod commands;
