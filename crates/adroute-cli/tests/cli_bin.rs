//! End-to-end tests of the installed `adroute` binary: real process, real
//! argv, real files.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_adroute"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("adroute-bin-tests");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("gen-topo"));
}

#[test]
fn missing_args_fail_with_nonzero_and_message() {
    let (ok, _, stderr) = run(&["gen-topo"]);
    assert!(!ok);
    assert!(stderr.contains("--ads"), "{stderr}");
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("subcommand"), "{stderr}");
    let (ok, _, stderr) = run(&["nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn full_pipeline_through_the_binary() {
    let topo = tmp("bin.topo");
    let pol = tmp("bin.pol");
    let cand = tmp("bin.cand");

    let (ok, stdout, stderr) = run(&["gen-topo", "--ads", "60", "--seed", "11", "--out", &topo]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"));

    let (ok, _, stderr) = run(&["gen-policies", "--topo", &topo, "--out", &pol]);
    assert!(ok, "{stderr}");

    let (ok, stdout, stderr) = run(&[
        "route",
        "--topo",
        &topo,
        "--policies",
        &pol,
        "--src",
        "2",
        "--dst",
        "30",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("flow: AD2->AD30"), "{stdout}");

    let (ok, stdout, _) = run(&["audit", "--topo", &topo]);
    assert!(ok);
    assert!(stdout.contains("connected: true"), "{stdout}");

    std::fs::write(&cand, "policy AD3 { default deny; }\n").unwrap();
    let (ok, stdout, stderr) = run(&[
        "impact",
        "--topo",
        &topo,
        "--policies",
        &pol,
        "--candidate",
        &cand,
        "--flows",
        "40",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("transit share:"), "{stdout}");
}

#[test]
fn gen_topo_stdout_is_parseable_and_deterministic() {
    let (ok, a, _) = run(&["gen-topo", "--ads", "50", "--seed", "4"]);
    let (_, b, _) = run(&["gen-topo", "--ads", "50", "--seed", "4"]);
    assert!(ok);
    assert_eq!(a, b, "same seed must emit identical topologies");
    assert!(adroute_topology::io::parse(&a).is_ok());
}
