//! A persistent scoped worker pool for the parallel engine.
//!
//! [`crate::parallel`] used to spawn fresh OS threads for every parallel
//! window via `std::thread::scope`; at paper scale a storm run opens
//! thousands of short windows, so thread creation dominated the lanes'
//! actual work. This pool keeps the workers alive across windows and
//! re-lends them to each window's borrowed lane closures.
//!
//! Lending threads to non-`'static` closures is exactly what
//! `std::thread::scope` guarantees; a persistent pool must re-create the
//! guarantee itself: [`WorkerPool::scoped`] erases each job's borrow
//! lifetime to hand it across the channel, then **blocks until every job
//! has run** before returning, so no borrow inside a job can outlive the
//! call that lent it. That erasure is the one `unsafe` in the crate, and
//! its soundness argument lives next to it.
//!
//! Determinism is unaffected: jobs write results into caller-owned
//! per-lane slots, so worker scheduling cannot reorder anything the
//! caller observes — the sequential commit replays lane journals in
//! skeleton order regardless of which worker ran which lane.

// The one place in the workspace allowed to use unsafe: the lifetime
// erasure in `scoped` below, whose soundness argument sits on it.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A type-erased, lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared completion state: outstanding job count plus a panic flag,
/// plus lifetime execution counters the profiler reads (wall-clock side
/// only — job timing is worker-schedule-dependent and never enters any
/// deterministic ledger).
struct Latch {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    jobs_run: AtomicU64,
    busy_ns: AtomicU64,
}

/// A fixed crew of OS threads that repeatedly runs batches of borrowed
/// closures, blocking the caller until each batch completes.
pub struct WorkerPool {
    workers: Vec<JoinHandle<()>>,
    /// `None` only during drop (closing the channel stops the workers).
    tx: Option<Sender<Job>>,
    rx: Arc<Mutex<Receiver<Job>>>,
    latch: Arc<Latch>,
}

impl WorkerPool {
    /// A pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = channel::<Job>();
        let mut pool = WorkerPool {
            workers: Vec::new(),
            tx: Some(tx),
            rx: Arc::new(Mutex::new(rx)),
            latch: Arc::new(Latch {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
                jobs_run: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
            }),
        };
        pool.ensure(workers.max(1));
        pool
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime count of jobs the crew has completed.
    pub fn jobs_run(&self) -> u64 {
        self.latch.jobs_run.load(Ordering::Relaxed)
    }

    /// Lifetime wall time workers spent running jobs, nanoseconds.
    /// Schedule-dependent: profiler/metrics material, never golden.
    pub fn busy_ns(&self) -> u64 {
        self.latch.busy_ns.load(Ordering::Relaxed)
    }

    /// Grows the crew to at least `workers` threads (never shrinks — a
    /// sweep over region counts reuses the largest crew seen).
    pub fn ensure(&mut self, workers: usize) {
        while self.workers.len() < workers {
            let rx = Arc::clone(&self.rx);
            let latch = Arc::clone(&self.latch);
            self.workers.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only while drawing the next job,
                // never while running it.
                let job = match rx.lock().expect("pool receiver poisoned").recv() {
                    Ok(job) => job,
                    Err(_) => return, // channel closed: pool dropped
                };
                let started = Instant::now();
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    latch.panicked.store(true, Ordering::SeqCst);
                }
                latch
                    .busy_ns
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                latch.jobs_run.fetch_add(1, Ordering::Relaxed);
                let mut pending = latch.pending.lock().expect("pool latch poisoned");
                *pending -= 1;
                if *pending == 0 {
                    latch.done.notify_all();
                }
            }));
        }
    }

    /// Runs every job on the crew and blocks until all have finished.
    ///
    /// Panics (after the whole batch settles) if any job panicked,
    /// mirroring `std::thread::scope`'s join behavior.
    pub fn scoped<'env>(&mut self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        self.ensure(jobs.len().min(available_workers()));
        *self.latch.pending.lock().expect("pool latch poisoned") = jobs.len();
        let tx = self.tx.as_ref().expect("pool alive");
        for job in jobs {
            // SAFETY: the loop below blocks this call until `pending`
            // returns to zero, i.e. until every job sent here has run to
            // completion on a worker. The borrows captured for `'env`
            // therefore strictly outlive every use of the erased job, so
            // widening the lifetime to 'static for the channel crossing
            // cannot let a worker touch freed state. (This is the
            // scoped-threadpool construction; `std::thread::scope` makes
            // the same argument with a guard object.)
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            tx.send(job).expect("workers alive while pool is alive");
        }
        let mut pending = self.latch.pending.lock().expect("pool latch poisoned");
        while *pending > 0 {
            pending = self.latch.done.wait(pending).expect("pool latch poisoned");
        }
        drop(pending);
        if self.latch.panicked.swap(false, Ordering::SeqCst) {
            panic!("lane thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's recv loop.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Upper bound on useful crew size for this host.
fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_borrowed_jobs_to_completion() {
        let mut pool = WorkerPool::new(3);
        let mut out = vec![0u64; 8];
        let base: u64 = 7; // borrowed immutably by every job
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let base = &base;
                Box::new(move || *slot = *base + i as u64) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped(jobs);
        assert_eq!(out, vec![7, 8, 9, 10, 11, 12, 13, 14]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let mut pool = WorkerPool::new(2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut parts = [0u64; 4];
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = parts
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    Box::new(move || *p = round * 4 + i as u64) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scoped(jobs);
            total += parts.iter().sum::<u64>();
        }
        assert_eq!(total, (0..200u64).sum::<u64>());
        assert!(pool.workers() >= 2);
    }

    #[test]
    fn execution_counters_advance() {
        let mut pool = WorkerPool::new(2);
        assert_eq!(pool.jobs_run(), 0);
        let mut out = [0u8; 5];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .iter_mut()
            .map(|s| Box::new(move || *s = 1) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.scoped(jobs);
        assert_eq!(pool.jobs_run(), 5, "one count per completed job");
        // busy_ns is schedule-dependent; only monotonicity is testable.
        let before = pool.busy_ns();
        let mut more = [0u8; 3];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = more
            .iter_mut()
            .map(|s| {
                Box::new(move || {
                    *s = (0..1000u32).sum::<u32>() as u8;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scoped(jobs);
        assert_eq!(pool.jobs_run(), 8);
        assert!(pool.busy_ns() >= before);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut pool = WorkerPool::new(1);
        pool.scoped(Vec::new());
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_job_propagates_after_batch_settles() {
        let mut pool = WorkerPool::new(2);
        let mut ok = [false; 3];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ok
                .iter_mut()
                .map(|slot| Box::new(move || *slot = true) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            jobs.push(Box::new(|| panic!("boom")));
            pool.scoped(jobs);
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        assert_eq!(ok, [true; 3], "other jobs still ran to completion");
        // The pool stays usable after a panicked batch.
        let mut again = [0u8; 2];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = again
            .iter_mut()
            .map(|slot| Box::new(move || *slot = 1) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.scoped(jobs);
        assert_eq!(again, [1, 1]);
    }
}
