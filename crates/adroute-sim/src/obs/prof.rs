//! `obs::prof` — the deterministic self-profiler.
//!
//! A [`Profiler`] records two strictly separated kinds of evidence:
//!
//! * **Timing spans** — a hierarchical tree of named spans
//!   ([`Profiler::enter`] / [`Profiler::exit`]) with monotonic-clock
//!   total/self time and call counts, exportable as a top-N table or a
//!   flamegraph-ready folded-stack dump. Wall-clock numbers are *never*
//!   part of any golden: they vary run to run and across hosts.
//! * **A work ledger** — flat named counters ([`Profiler::work`]) fed
//!   only from quantities the determinism contract already guarantees
//!   (event counts, message totals, sweep/cache statistics). The ledger
//!   side of a profile must be byte-identical across double runs and
//!   across worker counts, which is what `tests/profile_determinism.rs`
//!   enforces.
//!
//! The split is the point: lane wall-time, lookahead stalls and pool
//! busy-time are real measurements that *cannot* be deterministic, so
//! they live exclusively on the span/metrics side, while everything a
//! regression test compares lives in the ledger. Span names and ledger
//! keys are `&'static str` so that an enabled profiler costs two `Vec`
//! pushes and one `Instant::now` per span, and a disabled one costs a
//! single branch.
//!
//! Spans must be well-nested: [`Profiler::exit`] panics unless its name
//! matches the innermost open span. That turns instrumentation bugs
//! (a forgotten exit on an early-return path) into loud test failures
//! instead of silently corrupted attributions.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One node of the span tree: a named scope aggregated over every
/// `enter`/`exit` pair that reached it through the same ancestor path.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's name (e.g. `"dispatch"`, `"lane_run"`).
    pub name: &'static str,
    /// Index of the parent node, `None` for roots.
    pub parent: Option<usize>,
    /// Child node indices, in first-entered order.
    pub children: Vec<usize>,
    /// Number of completed `enter`/`exit` pairs.
    pub calls: u64,
    /// Total wall time spent inside the span, nanoseconds.
    pub wall_ns: u64,
    /// Wall time attributed to child spans, nanoseconds.
    pub child_ns: u64,
}

impl SpanNode {
    /// Wall time spent in this span but not in any child span.
    pub fn self_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.child_ns)
    }
}

/// An open span on the profiler stack.
#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    node: usize,
    started: Instant,
}

/// The self-profiler: a span-tree arena plus the deterministic work
/// ledger. Disabled by default (every call is then a single branch);
/// see the [module docs](self) for the determinism contract.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    enabled: bool,
    spans: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<OpenSpan>,
    work: BTreeMap<&'static str, u64>,
}

impl Profiler {
    /// A disabled profiler (the default state of every engine/network).
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// An enabled profiler.
    pub fn enabled() -> Profiler {
        Profiler {
            enabled: true,
            ..Profiler::default()
        }
    }

    /// Whether spans and ledger entries are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Opens a span named `name` under the innermost open span (or as a
    /// root). No-op when disabled.
    pub fn enter(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        let parent = self.stack.last().map(|o| o.node);
        let siblings = match parent {
            Some(p) => &self.spans[p].children,
            None => &self.roots,
        };
        let node = match siblings.iter().find(|&&c| self.spans[c].name == name) {
            Some(&c) => c,
            None => {
                let idx = self.spans.len();
                self.spans.push(SpanNode {
                    name,
                    parent,
                    children: Vec::new(),
                    calls: 0,
                    wall_ns: 0,
                    child_ns: 0,
                });
                match parent {
                    Some(p) => self.spans[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        self.stack.push(OpenSpan {
            node,
            started: Instant::now(),
        });
    }

    /// Closes the innermost open span, which must be named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not the innermost open span (or nothing is
    /// open) — mis-nested instrumentation is a bug, not a condition to
    /// tolerate.
    pub fn exit(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        let open = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("prof: exit('{name}') with no open span"));
        let actual = self.spans[open.node].name;
        assert_eq!(
            actual, name,
            "prof: exit('{name}') but innermost open span is '{actual}'"
        );
        let elapsed = open.started.elapsed().as_nanos() as u64;
        let node = &mut self.spans[open.node];
        node.calls += 1;
        node.wall_ns += elapsed;
        if let Some(p) = node.parent {
            self.spans[p].child_ns += elapsed;
        }
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Name of the innermost open span, if any.
    pub fn current(&self) -> Option<&'static str> {
        self.stack.last().map(|o| self.spans[o.node].name)
    }

    /// Adds `n` to the deterministic work ledger under `key`
    /// (conventionally `area/counter`, e.g. `"engine.dispatch/events"`).
    /// Only feed this from worker-count-invariant quantities. No-op when
    /// disabled.
    pub fn work(&mut self, key: &'static str, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        *self.work.entry(key).or_insert(0) += n;
    }

    /// Reads a ledger entry (0 when absent).
    pub fn work_value(&self, key: &str) -> u64 {
        self.work.get(key).copied().unwrap_or(0)
    }

    /// Iterates the ledger in key order.
    pub fn work_entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.work.iter().map(|(&k, &v)| (k, v))
    }

    /// The span nodes, indexable by the ids in [`SpanNode::children`].
    pub fn spans(&self) -> &[SpanNode] {
        &self.spans
    }

    /// Folds `other` into `self`: ledgers add, span trees graft by name
    /// path (calls/wall/child times sum). Used to combine the engine's
    /// and the ORWG network's profilers into one report. Panics if
    /// `other` still has open spans.
    pub fn merge_from(&mut self, other: &Profiler) {
        assert!(
            other.stack.is_empty(),
            "prof: merge_from a profiler with open spans"
        );
        if other.enabled {
            self.enabled = true;
        }
        for (&k, &v) in &other.work {
            *self.work.entry(k).or_insert(0) += v;
        }
        for &r in &other.roots {
            self.graft(None, other, r);
        }
    }

    fn graft(&mut self, parent: Option<usize>, other: &Profiler, src: usize) {
        let s = &other.spans[src];
        let siblings = match parent {
            Some(p) => &self.spans[p].children,
            None => &self.roots,
        };
        let dst = match siblings.iter().find(|&&c| self.spans[c].name == s.name) {
            Some(&c) => c,
            None => {
                let idx = self.spans.len();
                self.spans.push(SpanNode {
                    name: s.name,
                    parent,
                    children: Vec::new(),
                    calls: 0,
                    wall_ns: 0,
                    child_ns: 0,
                });
                match parent {
                    Some(p) => self.spans[p].children.push(idx),
                    None => self.roots.push(idx),
                }
                idx
            }
        };
        {
            let d = &mut self.spans[dst];
            d.calls += s.calls;
            d.wall_ns += s.wall_ns;
            d.child_ns += s.child_ns;
        }
        for &c in &s.children.clone() {
            self.graft(Some(dst), other, c);
        }
    }

    /// Depth-first walk over `(path, node index)` pairs, children in
    /// first-entered order; `path` joins span names with `;` (the folded
    /// stack separator).
    fn walk(&self) -> Vec<(String, usize)> {
        fn rec(p: &Profiler, prefix: &str, idx: usize, out: &mut Vec<(String, usize)>) {
            let path = if prefix.is_empty() {
                p.spans[idx].name.to_string()
            } else {
                format!("{prefix};{}", p.spans[idx].name)
            };
            out.push((path.clone(), idx));
            for &c in &p.spans[idx].children {
                rec(p, &path, c, out);
            }
        }
        let mut out = Vec::new();
        for &r in &self.roots {
            rec(self, "", r, &mut out);
        }
        out
    }

    /// Flamegraph-ready folded-stack dump: one `path self_us` line per
    /// span (semicolon-separated path, self time in microseconds),
    /// depth-first in first-entered order. Feed straight into
    /// `flamegraph.pl`.
    pub fn fold(&self) -> String {
        let mut out = String::new();
        for (path, idx) in self.walk() {
            let _ = writeln!(out, "{path} {}", self.spans[idx].self_ns() / 1_000);
        }
        out
    }

    /// The profile as one deterministic-shaped JSON object:
    /// `{"work":{..},"spans":[{"path","calls","total_ns","self_ns"},..]}`.
    /// The `work` map is byte-identical across runs; the `spans` array
    /// has deterministic *structure* (paths, order, calls) but
    /// run-varying times.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"work\":{");
        let mut first = true;
        for (k, v) in &self.work {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push_str("},\"spans\":[");
        first = true;
        for (path, idx) in self.walk() {
            let node = &self.spans[idx];
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "{{\"path\":\"{path}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{}}}",
                node.calls,
                node.wall_ns,
                node.self_ns()
            );
        }
        s.push_str("]}");
        s
    }

    /// A human-readable top-`n` table of spans by self time, plus the
    /// full work ledger.
    pub fn table(&self, n: usize) -> String {
        let mut rows = self.walk();
        rows.sort_by(|a, b| {
            let (sa, sb) = (self.spans[a.1].self_ns(), self.spans[b.1].self_ns());
            sb.cmp(&sa).then(a.0.cmp(&b.0))
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>10}  span",
            "self_ms", "total_ms", "calls"
        );
        for (path, idx) in rows.iter().take(n) {
            let node = &self.spans[*idx];
            let _ = writeln!(
                out,
                "{:>12.3} {:>12.3} {:>10}  {path}",
                node.self_ns() as f64 / 1e6,
                node.wall_ns as f64 / 1e6,
                node.calls
            );
        }
        if !self.work.is_empty() {
            let _ = writeln!(out, "work ledger (deterministic):");
            for (k, v) in &self.work {
                let _ = writeln!(out, "{v:>14}  {k}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new();
        p.enter("a");
        p.work("k", 5);
        p.exit("a");
        assert!(!p.is_enabled());
        assert_eq!(p.depth(), 0);
        assert!(p.spans().is_empty());
        assert_eq!(p.work_value("k"), 0);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            p.enter("run");
            p.enter("dispatch");
            p.exit("dispatch");
            p.enter("commit");
            p.exit("commit");
            p.exit("run");
        }
        assert_eq!(p.depth(), 0);
        let paths: Vec<String> = p.walk().into_iter().map(|(s, _)| s).collect();
        assert_eq!(paths, vec!["run", "run;dispatch", "run;commit"]);
        let run = &p.spans()[p.walk()[0].1];
        assert_eq!(run.calls, 3);
        let json = p.to_json();
        assert!(json.contains("\"path\":\"run;dispatch\",\"calls\":3"));
        assert!(p.fold().lines().count() == 3);
        assert!(p.table(10).contains("run;commit"));
    }

    #[test]
    #[should_panic(expected = "innermost open span")]
    fn mismatched_exit_panics() {
        let mut p = Profiler::enabled();
        p.enter("a");
        p.enter("b");
        p.exit("a");
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn exit_without_enter_panics() {
        let mut p = Profiler::enabled();
        p.exit("a");
    }

    #[test]
    fn work_ledger_is_sorted_and_additive() {
        let mut p = Profiler::enabled();
        p.work("b/y", 2);
        p.work("a/x", 1);
        p.work("b/y", 3);
        p.work("zero", 0);
        let entries: Vec<_> = p.work_entries().collect();
        assert_eq!(entries, vec![("a/x", 1), ("b/y", 5)]);
        assert_eq!(p.work_value("b/y"), 5);
        assert_eq!(p.work_value("zero"), 0, "zero adds create no entry");
    }

    #[test]
    fn merge_grafts_by_path_and_adds_ledgers() {
        let mut a = Profiler::enabled();
        a.enter("run");
        a.enter("x");
        a.exit("x");
        a.exit("run");
        a.work("k", 1);
        let mut b = Profiler::enabled();
        b.enter("run");
        b.enter("y");
        b.exit("y");
        b.exit("run");
        b.work("k", 2);
        b.work("only_b", 7);
        a.merge_from(&b);
        let paths: Vec<String> = a.walk().into_iter().map(|(s, _)| s).collect();
        assert_eq!(paths, vec!["run", "run;x", "run;y"]);
        assert_eq!(a.work_value("k"), 3);
        assert_eq!(a.work_value("only_b"), 7);
        // `run` aggregated both sides' calls.
        assert!(a.to_json().contains("\"path\":\"run\",\"calls\":2"));
    }

    #[test]
    #[should_panic(expected = "open spans")]
    fn merge_rejects_open_spans() {
        let mut a = Profiler::enabled();
        let mut b = Profiler::enabled();
        b.enter("open");
        a.merge_from(&b);
    }
}
