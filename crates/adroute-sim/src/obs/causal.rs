//! Causal analysis over the provenance-linked event stream.
//!
//! Every [`LoggedEvent`](super::LoggedEvent) carries an id and an
//! optional cause id, so an [`EventLog`](super::EventLog) (or several
//! merged — the engine's control plane plus the ORWG data plane) is a
//! forest of span trees: a scheduled link failure is a root, the
//! link-down it produces is its child, each LSA reflood hop hangs off
//! the delivery that triggered it, and so on down to the last routing
//! change. [`CausalGraph`] materializes that forest and answers the
//! questions the paper's convergence experiments need:
//!
//! - [`critical_path`](CausalGraph::critical_path): the longest causal
//!   chain — the sequence of dependent events that gated convergence.
//! - [`storm_report`](CausalGraph::storm_report): per-root fan-out
//!   attribution (events, messages, distinct ADs touched, time span),
//!   i.e. *which* root cause amplified into *how much* churn.
//! - [`ad_timeline`](CausalGraph::ad_timeline): every event involving
//!   one AD, in stream order, for per-AD debugging.
//!
//! Causes always have smaller ids than their effects, so the graph is
//! acyclic by construction; a cause whose record was evicted from the
//! ring buffer (or lives in a stream that was not merged in) degrades
//! the event to a root, which keeps the storm report a true partition
//! of the retained events.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use adroute_topology::AdId;

use super::{EventId, EventLog, LoggedEvent};
use crate::event::SimTime;

/// The causality forest over one or more event logs' retained records.
pub struct CausalGraph<'a> {
    /// All events, sorted by id (parents always precede children).
    nodes: Vec<&'a LoggedEvent>,
    /// Index of each node's resolved parent, if its cause was retained.
    parent: Vec<Option<usize>>,
    /// Causal depth: 0 for roots, parent depth + 1 otherwise.
    depth: Vec<u64>,
    /// Index of the root of each node's span tree (itself for roots).
    root: Vec<usize>,
}

impl<'a> CausalGraph<'a> {
    /// Builds the graph over the retained records of `logs`. Multiple
    /// logs are merged by id, which is why streams exported together use
    /// disjoint id bases (see
    /// [`DATA_STREAM_ID_BASE`](super::DATA_STREAM_ID_BASE)).
    pub fn build(logs: &[&'a EventLog]) -> CausalGraph<'a> {
        let mut nodes: Vec<&LoggedEvent> = logs.iter().flat_map(|l| l.iter()).collect();
        nodes.sort_by_key(|ev| ev.id);
        let mut index_of: BTreeMap<EventId, usize> = BTreeMap::new();
        for (i, ev) in nodes.iter().enumerate() {
            index_of.insert(ev.id, i);
        }
        let mut parent = vec![None; nodes.len()];
        let mut depth = vec![0u64; nodes.len()];
        let mut root: Vec<usize> = (0..nodes.len()).collect();
        for i in 0..nodes.len() {
            if let Some(c) = nodes[i].cause {
                // An unresolvable cause (evicted, or in an unmerged
                // stream) leaves the event a root of its own tree.
                if let Some(&p) = index_of.get(&c) {
                    if p < i {
                        parent[i] = Some(p);
                        depth[i] = depth[p] + 1;
                        root[i] = root[p];
                    }
                }
            }
        }
        CausalGraph {
            nodes,
            parent,
            depth,
            root,
        }
    }

    /// Number of events in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The events, sorted by id.
    pub fn events(&self) -> &[&'a LoggedEvent] {
        &self.nodes
    }

    /// The resolved parent of node `i`, if its cause was retained.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Causal depth of node `i` (0 for roots).
    pub fn depth_of(&self, i: usize) -> u64 {
        self.depth[i]
    }

    /// Index of the span-tree root node `i` belongs to.
    pub fn root_of(&self, i: usize) -> usize {
        self.root[i]
    }

    /// Whether every recorded cause id is strictly smaller than its
    /// event's id — the structural acyclicity invariant.
    pub fn is_acyclic_by_id(&self) -> bool {
        self.nodes
            .iter()
            .all(|ev| ev.cause.is_none_or(|c| c < ev.id))
    }

    /// The longest causal chain, root first. Ties are broken toward the
    /// latest (then highest-id) endpoint, so the result is deterministic
    /// and ends at the last routing change the slowest chain caused.
    pub fn critical_path(&self) -> Vec<&'a LoggedEvent> {
        let Some(end) = (0..self.nodes.len())
            .max_by_key(|&i| (self.depth[i], self.nodes[i].at, self.nodes[i].id))
        else {
            return Vec::new();
        };
        let mut path = Vec::with_capacity(self.depth[end] as usize + 1);
        let mut cur = Some(end);
        while let Some(i) = cur {
            path.push(self.nodes[i]);
            cur = self.parent[i];
        }
        path.reverse();
        path
    }

    /// Fan-out attribution per root cause, sorted by descending event
    /// count (root id breaking ties). Every retained event belongs to
    /// exactly one entry, so the per-root `events` counts partition
    /// [`len`](CausalGraph::len).
    pub fn storm_report(&self) -> Vec<StormEntry> {
        let mut acc: BTreeMap<usize, StormAcc> = BTreeMap::new();
        for i in 0..self.nodes.len() {
            let ev = self.nodes[i];
            let a = acc.entry(self.root[i]).or_default();
            a.events += 1;
            if ev.rec.is_message() {
                a.messages += 1;
            }
            for ad in ev.rec.ads().into_iter().flatten() {
                a.ads.insert(ad);
            }
            a.last_at = a.last_at.max(ev.at);
            a.max_depth = a.max_depth.max(self.depth[i]);
        }
        let mut out: Vec<StormEntry> = acc
            .into_iter()
            .map(|(r, a)| {
                let root = self.nodes[r];
                StormEntry {
                    root: root.id,
                    root_kind: root.rec.kind(),
                    at: root.at,
                    events: a.events,
                    messages: a.messages,
                    ads: a.ads.len() as u64,
                    span_us: a.last_at.as_us() - root.at.as_us(),
                    max_depth: a.max_depth,
                }
            })
            .collect();
        out.sort_by_key(|e| (std::cmp::Reverse(e.events), e.root));
        out
    }

    /// Every event involving `ad`, in stream (id) order.
    pub fn ad_timeline(&self, ad: AdId) -> Vec<&'a LoggedEvent> {
        self.nodes
            .iter()
            .filter(|ev| ev.rec.ads().into_iter().flatten().any(|a| a == ad))
            .copied()
            .collect()
    }
}

/// Per-root accumulator used while building the storm report.
#[derive(Default)]
struct StormAcc {
    events: u64,
    messages: u64,
    ads: BTreeSet<AdId>,
    last_at: SimTime,
    max_depth: u64,
}

/// One storm-report row: the blast radius of a single root cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormEntry {
    /// Id of the root event.
    pub root: EventId,
    /// The root's kind tag (`"link-down"`, `"fault-plan"`, …).
    pub root_kind: &'static str,
    /// When the root fired.
    pub at: SimTime,
    /// Events in the root's span tree (including the root).
    pub events: u64,
    /// Wire messages among them.
    pub messages: u64,
    /// Distinct ADs those events involve.
    pub ads: u64,
    /// Microseconds from the root to the last event it caused.
    pub span_us: u64,
    /// Longest chain below the root.
    pub max_depth: u64,
}

impl StormEntry {
    /// One deterministic JSON object (fixed field order).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"root\":{},\"kind\":\"{}\",\"us\":{}",
            self.root.0,
            super::json_escape(self.root_kind),
            self.at.as_us()
        );
        let _ = write!(
            s,
            ",\"events\":{},\"messages\":{},\"ads\":{},\"span_us\":{},\"depth\":{}}}",
            self.events, self.messages, self.ads, self.span_us, self.max_depth
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::super::EventRecord;
    use super::*;
    use adroute_topology::LinkId;

    /// Two span trees: a link-down cascade (depth 2) and a lone timer.
    fn sample_log() -> EventLog {
        let mut log = EventLog::new(16);
        let down = log.push(SimTime(10), None, EventRecord::LinkDown { link: LinkId(0) });
        let send = log.push(
            SimTime(10),
            down,
            EventRecord::MsgSend {
                from: AdId(0),
                to: AdId(1),
                link: LinkId(1),
                bytes: 8,
            },
        );
        log.push(
            SimTime(20),
            send,
            EventRecord::MsgDeliver {
                from: AdId(0),
                to: AdId(1),
                link: LinkId(1),
            },
        );
        log.push(
            SimTime(30),
            None,
            EventRecord::TimerFire {
                ad: AdId(7),
                token: 1,
            },
        );
        log
    }

    #[test]
    fn builds_span_trees_and_critical_path() {
        let log = sample_log();
        let g = CausalGraph::build(&[&log]);
        assert_eq!(g.len(), 4);
        assert!(g.is_acyclic_by_id());
        assert_eq!(g.depth_of(0), 0);
        assert_eq!(g.depth_of(2), 2);
        assert_eq!(g.root_of(2), 0);
        assert_eq!(g.root_of(3), 3);
        let path = g.critical_path();
        let kinds: Vec<&str> = path.iter().map(|ev| ev.rec.kind()).collect();
        assert_eq!(kinds, vec!["link-down", "send", "deliver"]);
    }

    #[test]
    fn storm_report_partitions_events() {
        let log = sample_log();
        let g = CausalGraph::build(&[&log]);
        let report = g.storm_report();
        assert_eq!(report.len(), 2);
        let total: u64 = report.iter().map(|e| e.events).sum();
        assert_eq!(total, g.len() as u64);
        // Biggest storm first: the link-down cascade.
        assert_eq!(report[0].root_kind, "link-down");
        assert_eq!(report[0].events, 3);
        assert_eq!(report[0].messages, 1);
        assert_eq!(report[0].ads, 2);
        assert_eq!(report[0].span_us, 10);
        assert_eq!(report[0].max_depth, 2);
        assert_eq!(report[1].root_kind, "timer");
        assert!(report[0]
            .to_json()
            .starts_with("{\"root\":0,\"kind\":\"link-down\""));
    }

    #[test]
    fn unresolved_causes_become_roots() {
        // Capacity 2: the first event is evicted, orphaning its child.
        let mut log = EventLog::new(2);
        let a = log.push(SimTime(1), None, EventRecord::Start { ad: AdId(0) });
        let b = log.push(SimTime(2), a, EventRecord::Crash { ad: AdId(0) });
        log.push(SimTime(3), b, EventRecord::Restart { ad: AdId(0) });
        let g = CausalGraph::build(&[&log]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.depth_of(0), 0, "orphaned event degrades to a root");
        assert_eq!(g.depth_of(1), 1);
        let total: u64 = g.storm_report().iter().map(|e| e.events).sum();
        assert_eq!(total, 2, "partition holds despite the orphan");
    }

    #[test]
    fn merged_streams_and_ad_timelines() {
        let log = sample_log();
        let mut data = EventLog::with_id_base(8, super::super::DATA_STREAM_ID_BASE);
        let open = data.push(
            SimTime(40),
            None,
            EventRecord::RouteSetupOpen {
                src: AdId(1),
                dst: AdId(7),
            },
        );
        data.push(
            SimTime(45),
            open,
            EventRecord::RouteSetupAck {
                src: AdId(1),
                dst: AdId(7),
                hops: 2,
                latency_us: 5,
            },
        );
        let g = CausalGraph::build(&[&log, &data]);
        assert_eq!(g.len(), 6);
        assert!(g.is_acyclic_by_id());
        let t1 = g.ad_timeline(AdId(1));
        let kinds: Vec<&str> = t1.iter().map(|ev| ev.rec.kind()).collect();
        assert_eq!(kinds, vec!["send", "deliver", "setup-open", "setup-ack"]);
        assert!(g.ad_timeline(AdId(99)).is_empty());
    }
}
