//! Bounded event tracing for debugging protocol runs.
//!
//! A [`Trace`] is a ring buffer of rendered event records that a protocol
//! (or the experiment driving it) appends to via [`Trace::log`]. Because
//! the engine is deterministic, a trace is a *golden artifact*: two runs
//! of the same configuration produce byte-identical traces, which makes
//! `assert_eq!(trace_a.render(), trace_b.render())` a powerful regression
//! test (see the determinism tests), and a diff of two traces pinpoints
//! the first divergent event when something breaks.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::event::SimTime;

/// One rendered trace record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Free-form, deterministic description.
    pub what: String,
}

/// A bounded, in-order event log.
#[derive(Clone, Debug)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    /// Records discarded because the buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// A trace retaining at most `capacity` most-recent records.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn log(&mut self, at: SimTime, what: impl Into<String>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            what: what.into(),
        });
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Renders the trace as one line per record (`time<TAB>what`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{}\t{}", r.at, r.what);
        }
        out
    }

    /// First record whose description differs from `other`'s at the same
    /// position — the point of divergence between two runs.
    pub fn first_divergence<'a>(
        &'a self,
        other: &'a Trace,
    ) -> Option<(usize, Option<&'a TraceRecord>, Option<&'a TraceRecord>)> {
        let mut i = 0;
        let mut a = self.records.iter();
        let mut b = other.records.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return None,
                (x, y) if x.map(|r| (&r.at, &r.what)) == y.map(|r| (&r.at, &r.what)) => {}
                (x, y) => return Some((i, x, y)),
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_renders_in_order() {
        let mut t = Trace::new(8);
        t.log(SimTime(1000), "a");
        t.log(SimTime(2000), "b");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.render();
        assert_eq!(s, "1.000ms\ta\n2.000ms\tb\n");
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        t.log(SimTime(1), "a");
        t.log(SimTime(2), "b");
        t.log(SimTime(3), "c");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 1);
        let kinds: Vec<&str> = t.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(kinds, vec!["b", "c"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = Trace::new(0);
        t.log(SimTime(1), "a");
        assert!(t.is_empty());
        assert_eq!(t.dropped, 1);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn divergence_detection() {
        let mut a = Trace::new(8);
        let mut b = Trace::new(8);
        for t in [1u64, 2, 3] {
            a.log(SimTime(t), format!("e{t}"));
            b.log(SimTime(t), format!("e{t}"));
        }
        assert!(a.first_divergence(&b).is_none());
        b.log(SimTime(4), "extra");
        let (i, x, y) = a.first_divergence(&b).unwrap();
        assert_eq!(i, 3);
        assert!(x.is_none());
        assert_eq!(y.unwrap().what, "extra");
        a.log(SimTime(4), "different");
        let (i, x, _) = a.first_divergence(&b).unwrap();
        assert_eq!(i, 3);
        assert_eq!(x.unwrap().what, "different");
    }
}
