//! Deterministically parallel region execution.
//!
//! The engine's sequential semantics — a single total order of events by
//! `(time, seq)` — is the contract every golden trace in this repo depends
//! on. This module runs the same simulation on multiple threads *without
//! changing one byte of that contract*, using conservative synchronization
//! (Chandy/Misra-style lookahead) plus a journal/commit replay:
//!
//! 1. ADs are partitioned into contiguous regions
//!    ([`RegionMap`](adroute_topology::RegionMap)). The **lookahead** is
//!    the minimum propagation delay of any link crossing a region
//!    boundary: no message sent inside a window of that length can arrive
//!    in another region before the window ends.
//! 2. A window `[t0, wend)` is chosen with
//!    `wend = min(t0 + lookahead, next control event, until + 1)`.
//!    Control events (link/router state changes) mutate shared topology
//!    state, so they bound every window and run sequentially between
//!    windows. Channel faults do *not* force sequential execution:
//!    every fault verdict is a pure function of the message's identity
//!    (config seed, sending AD, per-AD send ordinal — see
//!    [`ChannelFaults::judge`]), so a lane draws exactly the verdict the
//!    sequential engine would, with no shared RNG to race on. Fault
//!    jitter only ever *adds* delay, so delayed and duplicated copies
//!    still respect the lookahead bound (they escape the window rather
//!    than crossing a region early).
//! 3. Each region's lane processes its in-window events on its own thread
//!    against a *shared immutable* topology and a private slice of the
//!    router arena, recording a **journal**: per processed event, the
//!    records it emitted and the events it pushed, with *symbolic* causes
//!    ([`CauseRef`]) because real [`EventId`]s cannot be assigned
//!    concurrently.
//! 4. A sequential **commit** replays the skeleton of the window — a heap
//!    of `(time, seq)` stubs — in exactly the order the sequential engine
//!    would have used, assigning global sequence numbers and event ids,
//!    resolving symbolic causes, and feeding escaped events (arrivals at
//!    or past `wend`) back into the engine queue.
//!
//! Two invariants make the replay exact:
//!
//! * **Lane-local order is sequential order restricted to the lane.**
//!   Within a lane, temporary sequence numbers are assigned in push order
//!   and all exceed the window's initial (real) sequence numbers; at
//!   commit, real numbers are assigned in the same relative order, so
//!   `(time, temp)` and `(time, real)` induce the same lane-local order.
//! * **In-window arrivals are always lane-local.** A delivery to another
//!   region crosses a boundary link, whose delay is at least the
//!   lookahead, so it arrives at or after `wend` and escapes the window.
//!
//! Consequently traces, typed event logs, stats, and final router state
//! are byte-identical to a sequential run at *any* region count.

use std::collections::BinaryHeap;
use std::time::Instant;

use adroute_topology::{min_cross_region_delay, AdId, RegionMap, Topology};

use crate::engine::{Ctx, Engine, Protocol, Scratch};
use crate::event::{Event, EventKind, SimTime};
use crate::faults::{ChannelFaults, ChannelVerdict};
use crate::obs::{EventId, EventRecord, MetricsRegistry};
use crate::stats::Stats;

/// A cause that may not have a real id yet: either a known id from before
/// the window (or `None`), or the `k`-th record this lane emitted during
/// the window, resolved against the lane's symbol table at commit.
#[derive(Clone, Copy, Debug)]
enum CauseRef {
    Known(Option<EventId>),
    Local(u32),
}

/// A lane-queued event. `seq` is real for events drained from the engine
/// queue and temporary (>= the window's sequence base) for in-window
/// pushes; the two ranges never overlap, so the lane heap's `(time, seq)`
/// order matches the sequential order restricted to the lane.
struct LaneEv<M> {
    time: SimTime,
    seq: u64,
    cause: CauseRef,
    kind: EventKind<M>,
}

impl<M> PartialEq for LaneEv<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for LaneEv<M> {}
impl<M> PartialOrd for LaneEv<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for LaneEv<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest first out of the max-heap.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// One record emitted during the window, with its symbolic cause.
struct JRecord {
    cause: CauseRef,
    rec: EventRecord,
}

/// One event pushed during the window. `payload: None` marks an in-window
/// push the lane processed itself (commit only mints its sequence number
/// and skeleton stub); `Some` marks an escaped event commit feeds back
/// into the engine queue.
struct JPush<M> {
    time: SimTime,
    cause: CauseRef,
    payload: Option<EventKind<M>>,
}

/// The journal of one processed event, consumed by commit in pop order.
/// Records and pushes live in the lane's flat arenas ([`LaneResult`]);
/// an entry holds only `[start, end)` ranges into them. One arena append
/// per effect replaces the two per-event `Vec` allocations the journal
/// used to make, which dominated the faulted hot path's allocator
/// traffic (every fault verdict emits an extra record).
struct JEntry {
    time: SimTime,
    records: (u32, u32),
    pushes: (u32, u32),
}

/// Everything a lane hands back to the committing thread.
struct LaneResult<M> {
    journal: Vec<JEntry>,
    /// Flat record arena; `JEntry::records` ranges index into it.
    rec_arena: Vec<JRecord>,
    /// Flat push arena; `JEntry::pushes` ranges index into it.
    push_arena: Vec<JPush<M>>,
    stats: Stats,
    /// Messages sent per AD of this region, indexed relative to the
    /// region base (keeps per-lane allocation proportional to the region,
    /// not the whole arena).
    per_ad: Vec<u64>,
    /// Wall time the lane job spent running, nanoseconds.
    /// Schedule-dependent: profiler material, never part of any golden.
    wall_ns: u64,
    /// Per-lane metric snapshot (populated only when the profiler is on),
    /// merged into the engine registry via [`MetricsRegistry::merge`].
    metrics: MetricsRegistry,
}

impl<M> LaneResult<M> {
    fn empty() -> LaneResult<M> {
        LaneResult {
            journal: Vec::new(),
            rec_arena: Vec::new(),
            push_arena: Vec::new(),
            stats: Stats::new(0),
            per_ad: Vec::new(),
            wall_ns: 0,
            metrics: MetricsRegistry::new(),
        }
    }
}

/// A skeleton stub: the `(time, seq)` identity of one processed event and
/// the lane whose journal holds its effects.
#[derive(Clone, Copy)]
struct Stub {
    time: SimTime,
    seq: u64,
    lane: u32,
}

impl PartialEq for Stub {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Stub {}
impl PartialOrd for Stub {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Stub {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The per-region execution context: a private slice of the router arena,
/// shared read-only views of everything control events own, and the
/// journaling machinery.
struct Lane<'a, P: Protocol> {
    protocol: &'a P,
    topo: &'a Topology,
    router_up: &'a [bool],
    incarnations: &'a [u32],
    routers: &'a mut [P::Router],
    region: std::ops::Range<usize>,
    wend: SimTime,
    observing: bool,
    max_events: u64,
    now: SimTime,
    /// Next temporary sequence number for in-window pushes.
    temp_seq: u64,
    /// Next symbolic record index ([`CauseRef::Local`]).
    symct: u32,
    heap: BinaryHeap<LaneEv<P::Msg>>,
    journal: Vec<JEntry>,
    rec_arena: Vec<JRecord>,
    push_arena: Vec<JPush<P::Msg>>,
    stats: Stats,
    per_ad: Vec<u64>,
    /// Channel-fault configuration shared with the engine (None = clean).
    faults: Option<&'a ChannelFaults>,
    /// `stats.per_ad_msgs` snapshot at window fan-out. A sender's draw
    /// ordinal is `per_ad_base[ad] + per_ad[ad - region.start]` — the
    /// same cumulative count the sequential engine would hold, because
    /// all of an AD's dispatches happen in its one lane in
    /// sequential-restricted order.
    per_ad_base: &'a [u64],
    scratch: Scratch<P::Msg>,
    emitted: Vec<CauseRef>,
}

impl<'a, P: Protocol> Lane<'a, P> {
    /// Processes every queued event (initial events are seeded by the
    /// caller; in-window pushes feed back into the heap).
    fn run(&mut self) {
        while let Some(ev) = self.heap.pop() {
            assert!(
                (self.journal.len() as u64) <= self.max_events,
                "event budget exceeded inside a parallel window at {}",
                ev.time
            );
            self.process(ev);
        }
    }

    /// Mirrors [`Engine::step`]'s targeted-event arms (start / deliver /
    /// timer); control events never reach a lane.
    fn process(&mut self, ev: LaneEv<P::Msg>) {
        debug_assert!(ev.time >= self.now && ev.time < self.wend);
        self.now = ev.time;
        self.stats.events += 1;
        let rec_mark = self.rec_arena.len() as u32;
        let push_mark = self.push_arena.len() as u32;
        let cause = ev.cause;
        match ev.kind {
            EventKind::Start { ad } => {
                let id = self.jemit(cause, EventRecord::Start { ad });
                self.dispatch(ad, id, |p, r, ctx| p.on_start(r, ctx));
            }
            EventKind::Deliver {
                to,
                from,
                link,
                msg,
            } => {
                if self.topo.link(link).up && self.router_up[to.index()] {
                    self.stats.msgs_delivered += 1;
                    self.stats.last_activity = self.now;
                    let id = self.jemit(cause, EventRecord::MsgDeliver { from, to, link });
                    self.dispatch(to, id, |p, r, ctx| p.on_message(r, ctx, from, link, msg));
                } else {
                    self.stats.msgs_lost += 1;
                    self.jemit(cause, EventRecord::MsgLost { from, to, link });
                }
            }
            EventKind::Timer {
                ad,
                token,
                incarnation,
            } => {
                if self.router_up[ad.index()] && incarnation == self.incarnations[ad.index()] {
                    let id = self.jemit(cause, EventRecord::TimerFire { ad, token });
                    self.dispatch(ad, id, |p, r, ctx| p.on_timer(r, ctx, token));
                } else {
                    self.jemit(cause, EventRecord::StaleTimer { ad, token });
                }
            }
            EventKind::LinkEvent { .. } | EventKind::RouterEvent { .. } => {
                unreachable!("control events are never routed to a lane")
            }
        }
        self.journal.push(JEntry {
            time: self.now,
            records: (rec_mark, self.rec_arena.len() as u32),
            pushes: (push_mark, self.push_arena.len() as u32),
        });
    }

    /// The lane counterpart of [`Engine::emit`] composed with the
    /// `.or(cause)` every sequential call site applies: journals the
    /// record (when observing) and returns the symbolic composite id that
    /// downstream pushes and records should cite as their cause. When no
    /// sink is attached the sequential emit returns `None` and the
    /// composite collapses to `cause`, so nothing is journaled.
    fn jemit(&mut self, cause: CauseRef, rec: EventRecord) -> CauseRef {
        if !self.observing {
            return cause;
        }
        self.rec_arena.push(JRecord { cause, rec });
        let r = CauseRef::Local(self.symct);
        self.symct += 1;
        r
    }

    /// Journals one pushed event. In-window arrivals (guaranteed
    /// lane-local by the lookahead) also enter the lane heap under a
    /// temporary sequence number; escaped arrivals carry their payload to
    /// commit.
    fn jpush(&mut self, time: SimTime, cause: CauseRef, kind: EventKind<P::Msg>) {
        if time < self.wend {
            let target = kind.target_ad().expect("lanes only push targeted events");
            debug_assert!(
                self.region.contains(&target.index()),
                "in-window push crossed a region boundary: lookahead violated"
            );
            let seq = self.temp_seq;
            self.temp_seq += 1;
            self.push_arena.push(JPush {
                time,
                cause,
                payload: None,
            });
            self.heap.push(LaneEv {
                time,
                seq,
                cause,
                kind,
            });
        } else {
            self.push_arena.push(JPush {
                time,
                cause,
                payload: Some(kind),
            });
        }
    }

    /// Mirrors [`Engine::dispatch`] with journaled effects, including the
    /// channel-fault verdict branch: each verdict is keyed on (seed,
    /// sender, per-AD send ordinal), so the lane draws exactly what the
    /// sequential engine would — same records, same push order (duplicate
    /// copy before the primary copy), same stat counters.
    fn dispatch<F>(&mut self, ad: AdId, cause: CauseRef, f: F)
    where
        F: FnOnce(&P, &mut P::Router, &mut Ctx<'_, P::Msg>),
    {
        let mut ctx = Ctx {
            me: ad,
            now: self.now,
            topo: self.topo,
            stats: &mut self.stats,
            outbox: std::mem::take(&mut self.scratch.outbox),
            timers: std::mem::take(&mut self.scratch.timers),
            events: std::mem::take(&mut self.scratch.events),
            anchor: None,
            observing: self.observing,
        };
        f(
            self.protocol,
            &mut self.routers[ad.index() - self.region.start],
            &mut ctx,
        );
        let Ctx {
            mut outbox,
            mut timers,
            mut events,
            ..
        } = ctx;
        let mut emitted = std::mem::take(&mut self.emitted);
        for rec in events.drain(..) {
            let id = self.jemit(cause, rec);
            emitted.push(id);
        }
        let resolve =
            |anchor: Option<usize>| -> CauseRef { anchor.map(|i| emitted[i]).unwrap_or(cause) };
        for (to, link, msg, anchor) in outbox.drain(..) {
            let msg_cause = resolve(anchor);
            let delay = self.topo.link(link).delay_us;
            self.stats.msgs_sent += 1;
            self.per_ad[ad.index() - self.region.start] += 1;
            let bytes = self.protocol.msg_size(&msg) as u64;
            self.stats.bytes_sent += bytes;
            let hop_cause = self.jemit(
                msg_cause,
                EventRecord::MsgSend {
                    from: ad,
                    to,
                    link,
                    bytes,
                },
            );
            let mut delay = delay;
            let mut dup_at = None;
            let verdict = match self.faults {
                Some(cfg) if cfg.active_at(self.now) => {
                    let ordinal =
                        self.per_ad_base[ad.index()] + self.per_ad[ad.index() - self.region.start];
                    Some(cfg.judge(ad, ordinal, delay))
                }
                _ => None,
            };
            if let Some(verdict) = verdict {
                match verdict {
                    ChannelVerdict::Lost => {
                        self.stats.msgs_lost += 1;
                        self.jemit(hop_cause, EventRecord::ChanLoss { from: ad, to, link });
                        continue;
                    }
                    ChannelVerdict::Corrupted => {
                        self.stats.msgs_corrupted += 1;
                        self.jemit(hop_cause, EventRecord::ChanCorrupt { from: ad, to, link });
                        continue;
                    }
                    ChannelVerdict::Pass {
                        delay_us,
                        duplicate_at_us,
                        reordered,
                    } => {
                        if reordered {
                            self.stats.msgs_reordered += 1;
                            self.jemit(hop_cause, EventRecord::ChanReorder { from: ad, to, link });
                        }
                        if let Some(d) = duplicate_at_us {
                            self.stats.msgs_duplicated += 1;
                            self.jemit(hop_cause, EventRecord::ChanDup { from: ad, to, link });
                            dup_at = Some(self.now.plus_us(d));
                        }
                        delay = delay_us;
                    }
                }
            }
            if let Some(at) = dup_at {
                self.jpush(
                    at,
                    hop_cause,
                    EventKind::Deliver {
                        to,
                        from: ad,
                        link,
                        msg: msg.clone(),
                    },
                );
            }
            let at = self.now.plus_us(delay);
            self.jpush(
                at,
                hop_cause,
                EventKind::Deliver {
                    to,
                    from: ad,
                    link,
                    msg,
                },
            );
        }
        let incarnation = self.incarnations[ad.index()];
        for (delay_us, token, anchor) in timers.drain(..) {
            let at = self.now.plus_us(delay_us);
            self.jpush(
                at,
                resolve(anchor),
                EventKind::Timer {
                    ad,
                    token,
                    incarnation,
                },
            );
        }
        emitted.clear();
        self.scratch.outbox = outbox;
        self.scratch.timers = timers;
        self.scratch.events = events;
        self.emitted = emitted;
    }

    fn finish(self) -> LaneResult<P::Msg> {
        LaneResult {
            journal: self.journal,
            rec_arena: self.rec_arena,
            push_arena: self.push_arena,
            stats: self.stats,
            per_ad: self.per_ad,
            wall_ns: 0,
            metrics: MetricsRegistry::new(),
        }
    }
}

impl<P: Protocol> Engine<P>
where
    P: Sync,
    P::Router: Send,
    P::Msg: Send,
{
    /// [`Engine::run_to_quiescence`] on `num_regions` worker lanes.
    /// Produces byte-identical traces, logs, stats, and router state.
    ///
    /// # Panics
    /// Panics if more than `max_events` events are processed, as the
    /// sequential runner does.
    pub fn run_to_quiescence_parallel(&mut self, num_regions: usize) -> SimTime {
        self.run_parallel_inner(None, num_regions);
        self.stats.last_activity
    }

    /// [`Engine::run_until`] on `num_regions` worker lanes.
    pub fn run_until_parallel(&mut self, until: SimTime, num_regions: usize) {
        self.run_parallel_inner(Some(until), num_regions);
        if self.now < until {
            self.now = until;
        }
    }

    /// The shared scheduler: alternates sequential islands (control
    /// events, zero-lookahead points) with parallel windows, preserving
    /// the sequential total order throughout. Channel faults run inside
    /// the windows — verdicts are event-keyed, so lanes draw them
    /// independently (see the module docs).
    fn run_parallel_inner(&mut self, until: Option<SimTime>, num_regions: usize) {
        let start_events = self.stats.events;
        let budget_check = |e: &Engine<P>| {
            assert!(
                e.stats.events - start_events <= e.max_events,
                "protocol did not quiesce within {} events (time {})",
                e.max_events,
                e.now
            );
        };
        // The only remaining sequential path: a single region (or a
        // degenerate topology) has no parallelism to exploit. Faulted
        // configurations run parallel like everything else.
        if num_regions <= 1 || self.topo.num_ads() < 2 {
            match until {
                Some(u) => self.run_until(u),
                None => {
                    self.run_to_quiescence();
                }
            }
            return;
        }
        let map = RegionMap::contiguous(self.topo.num_ads(), num_regions);
        // The parallel path attributes its work ledger once, here — the
        // sequential fallback above attributes inside run_until /
        // run_to_quiescence — so the ledger totals are identical at any
        // worker count.
        self.prof.enter("engine.parallel");
        let snap = self.prof_snapshot();
        let pool_jobs0 = self.pool.as_ref().map_or(0, |p| p.jobs_run());
        let pool_busy0 = self.pool.as_ref().map_or(0, |p| p.busy_ns());
        // No crossing link: regions are independent and any window length
        // is safe; cap only by control events / until.
        let lookahead = min_cross_region_delay(&self.topo, &map).unwrap_or(u64::MAX);
        while let Some(t0) = self.next_event_time() {
            if let Some(u) = until {
                if t0 > u {
                    break;
                }
            }
            let ctrl_t = self.ctrl.peek().map(|e| e.time);
            let mut wend = t0.0.saturating_add(lookahead);
            if let Some(ct) = ctrl_t {
                wend = wend.min(ct.0);
            }
            if let Some(u) = until {
                wend = wend.min(u.0.saturating_add(1));
            }
            if wend <= t0.0 {
                // A control event is due now (or the lookahead is zero):
                // drain this instant sequentially, including any
                // same-time events the handlers push.
                self.prof.enter("seq_island");
                while self.next_event_time() == Some(t0) {
                    self.step();
                }
                self.prof.exit("seq_island");
            } else {
                self.run_window_parallel(&map, SimTime(wend));
            }
            budget_check(self);
        }
        self.prof_attribute(snap);
        if self.prof.is_enabled() {
            // Pool execution deltas are wall-side metrics: job counts and
            // busy time depend on the worker schedule.
            if let Some(p) = &self.pool {
                let jobs = p.jobs_run() - pool_jobs0;
                let busy_us = (p.busy_ns() - pool_busy0) / 1_000;
                self.obs.metrics.add("pool_jobs_run", jobs);
                self.obs.metrics.add("pool_busy_us", busy_us);
            }
        }
        self.prof.exit("engine.parallel");
    }

    /// Runs one parallel window `[t0, wend)`: fan out to lanes, then
    /// commit the journals in sequential order.
    fn run_window_parallel(&mut self, map: &RegionMap, wend: SimTime) {
        self.prof.enter("window");
        let prof_on = self.prof.is_enabled();
        let nl = map.num_regions();
        // Drain in-window events from the engine queue into per-lane seed
        // lists; their (real) sequence numbers seed the skeleton too.
        let mut seeds: Vec<Vec<LaneEv<P::Msg>>> = (0..nl).map(|_| Vec::new()).collect();
        let mut skel: BinaryHeap<Stub> = BinaryHeap::new();
        while let Some(ev) = self.queue.peek() {
            if ev.time >= wend {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            let ad = ev.kind.target_ad().expect("queue holds targeted events");
            let lane = map.region_of(ad);
            skel.push(Stub {
                time: ev.time,
                seq: ev.seq,
                lane: lane as u32,
            });
            seeds[lane].push(LaneEv {
                time: ev.time,
                seq: ev.seq,
                cause: CauseRef::Known(ev.cause),
                kind: ev.kind,
            });
        }
        let temp_base = self.seq;
        let observing = self.observing();
        let max_events = self.max_events;
        let now = self.now;
        let topo = &self.topo;
        let protocol = &self.protocol;
        let router_up = self.router_up.as_slice();
        let incarnations = self.incarnations.as_slice();
        let faults = self.faults.as_ref();
        // Ordinal base for event-keyed fault draws: stats are untouched
        // during fan-out, so this borrow is valid for the whole window.
        let per_ad_base = self.stats.per_ad_msgs.as_slice();
        // Contiguous regions -> disjoint &mut slices of the router arena.
        let mut slices: Vec<&mut [P::Router]> = Vec::with_capacity(nl);
        let mut rest: &mut [P::Router] = self.routers.as_mut_slice();
        for r in 0..nl {
            let (head, tail) = rest.split_at_mut(map.range(r).len());
            slices.push(head);
            rest = tail;
        }
        // Fan out to the persistent worker crew (created on first use,
        // reused across windows). Each lane writes its result into its
        // own slot, so worker scheduling cannot reorder anything the
        // sequential commit below observes.
        let mut results: Vec<LaneResult<P::Msg>> = (0..nl).map(|_| LaneResult::empty()).collect();
        self.prof.enter("fanout");
        let fanout_started = Instant::now();
        {
            let pool = self
                .pool
                .get_or_insert_with(|| crate::pool::WorkerPool::new(nl));
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nl);
            for (r, ((seed, routers), out)) in seeds
                .into_iter()
                .zip(slices)
                .zip(results.iter_mut())
                .enumerate()
            {
                if seed.is_empty() {
                    continue;
                }
                let region = map.range(r);
                jobs.push(Box::new(move || {
                    let started = Instant::now();
                    let per_ad = vec![0u64; region.len()];
                    let mut lane: Lane<'_, P> = Lane {
                        protocol,
                        topo,
                        router_up,
                        incarnations,
                        routers,
                        region,
                        wend,
                        observing,
                        max_events,
                        now,
                        temp_seq: temp_base,
                        symct: 0,
                        heap: seed.into(),
                        journal: Vec::new(),
                        rec_arena: Vec::new(),
                        push_arena: Vec::new(),
                        stats: Stats::new(0),
                        per_ad,
                        faults,
                        per_ad_base,
                        scratch: Scratch::default(),
                        emitted: Vec::new(),
                    };
                    lane.run();
                    let mut res = lane.finish();
                    res.wall_ns = started.elapsed().as_nanos() as u64;
                    if prof_on {
                        // The per-lane snapshot the commit thread merges
                        // via MetricsRegistry::merge. Wall-side only.
                        res.metrics.record("lane_wall_us", res.wall_ns / 1_000);
                        res.metrics.record("lane_events", res.stats.events);
                    }
                    *out = res;
                }));
            }
            pool.scoped(jobs);
        }
        let fanout_ns = fanout_started.elapsed().as_nanos() as u64;
        self.prof.exit("fanout");
        self.prof.enter("commit");
        // Commit: replay the skeleton in sequential (time, seq) order,
        // assigning real sequence numbers and event ids exactly as the
        // sequential engine would have.
        let mut symtab: Vec<Vec<Option<EventId>>> = (0..nl).map(|_| Vec::new()).collect();
        let mut cursors = vec![0usize; nl];
        let resolve = |symtab: &[Vec<Option<EventId>>], lane: usize, c: CauseRef| match c {
            CauseRef::Known(id) => id,
            CauseRef::Local(i) => symtab[lane][i as usize],
        };
        while let Some(stub) = skel.pop() {
            let lane = stub.lane as usize;
            let res = &mut results[lane];
            let entry = &res.journal[cursors[lane]];
            let (r0, r1) = entry.records;
            let (p0, p1) = entry.pushes;
            cursors[lane] += 1;
            debug_assert_eq!(entry.time, stub.time, "journal out of step with skeleton");
            self.now = stub.time;
            for jr in &res.rec_arena[r0 as usize..r1 as usize] {
                let parent = resolve(&symtab, lane, jr.cause);
                let id = self.emit(parent, jr.rec);
                symtab[lane].push(id.or(parent));
            }
            for jp in res.push_arena[p0 as usize..p1 as usize].iter_mut() {
                let seq = self.seq;
                self.seq += 1;
                let time = jp.time;
                match jp.payload.take() {
                    Some(kind) => {
                        let cause = resolve(&symtab, lane, jp.cause);
                        self.queue.push(Event {
                            time,
                            seq,
                            cause,
                            kind,
                        });
                    }
                    None => skel.push(Stub {
                        time,
                        seq,
                        lane: stub.lane,
                    }),
                }
            }
        }
        let mut lanes_run = 0u64;
        let mut max_wall = 0u64;
        let mut min_wall = u64::MAX;
        for (lane, res) in results.into_iter().enumerate() {
            debug_assert_eq!(
                cursors[lane],
                res.journal.len(),
                "uncommitted journal entries"
            );
            self.stats.merge(&res.stats);
            let base = map.range(lane).start;
            for (i, &v) in res.per_ad.iter().enumerate() {
                self.stats.per_ad_msgs[base + i] += v;
            }
            if !res.journal.is_empty() {
                lanes_run += 1;
                max_wall = max_wall.max(res.wall_ns);
                min_wall = min_wall.min(res.wall_ns);
            }
            if prof_on {
                self.obs.metrics.merge(&res.metrics);
            }
        }
        self.prof.exit("commit");
        if prof_on {
            self.obs.metrics.add("parallel_windows", 1);
            if lanes_run > 0 {
                // Lane imbalance: spread between the slowest and fastest
                // lane of this window. Lookahead stall: barrier time past
                // the slowest lane (fan-out + scheduling overhead).
                self.obs
                    .metrics
                    .record("lane_imbalance_us", (max_wall - min_wall) / 1_000);
                self.obs.metrics.record(
                    "lookahead_stall_us",
                    fanout_ns.saturating_sub(max_wall) / 1_000,
                );
            }
        }
        self.prof.exit("window");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::Wave;
    use adroute_topology::generate::{line, ring, HierarchyConfig};
    use adroute_topology::LinkId;

    fn quiesce_seq(topo: Topology) -> (String, String, Engine<Wave>) {
        let mut e = Engine::new(topo, Wave);
        e.enable_trace(1 << 14);
        e.enable_obs(1 << 14);
        e.run_to_quiescence();
        (e.trace.render(), e.obs.log.export_jsonl(), e)
    }

    fn quiesce_par(topo: Topology, regions: usize) -> (String, String, Engine<Wave>) {
        let mut e = Engine::new(topo, Wave);
        e.enable_trace(1 << 14);
        e.enable_obs(1 << 14);
        e.run_to_quiescence_parallel(regions);
        (e.trace.render(), e.obs.log.export_jsonl(), e)
    }

    #[test]
    fn parallel_wave_is_byte_identical_to_sequential() {
        for &regions in &[1usize, 2, 3, 8] {
            let (st, sj, se) = quiesce_seq(line(12));
            let (pt, pj, pe) = quiesce_par(line(12), regions);
            assert_eq!(st, pt, "trace diverged at {regions} regions");
            assert_eq!(sj, pj, "jsonl diverged at {regions} regions");
            assert_eq!(se.stats.events, pe.stats.events);
            assert_eq!(se.stats.msgs_sent, pe.stats.msgs_sent);
            assert_eq!(se.stats.per_ad_msgs, pe.stats.per_ad_msgs);
            assert_eq!(se.now(), pe.now());
            assert_eq!(se.seq, pe.seq, "sequence counters diverged");
        }
    }

    #[test]
    fn parallel_ring_with_varied_delays_matches() {
        let mut topo = ring(9);
        for (i, d) in [900u64, 1100, 700, 1300, 800, 1000, 600, 1200, 950]
            .into_iter()
            .enumerate()
        {
            topo.set_delay(LinkId(i as u32), d);
        }
        let (st, sj, _) = quiesce_seq(topo.clone());
        for &regions in &[2usize, 4, 8] {
            let (pt, pj, _) = quiesce_par(topo.clone(), regions);
            assert_eq!(st, pt, "trace diverged at {regions} regions");
            assert_eq!(sj, pj);
        }
    }

    #[test]
    fn parallel_handles_control_events_sequentially() {
        let drive = |parallel: Option<usize>| {
            let mut e = Engine::new(line(10), Wave);
            e.enable_trace(1 << 14);
            e.enable_obs(1 << 14);
            e.schedule_link_change(LinkId(4), false, SimTime(2500));
            e.schedule_router_change(AdId(8), false, SimTime(3500));
            e.schedule_router_change(AdId(8), true, SimTime(4200));
            match parallel {
                Some(r) => {
                    e.run_to_quiescence_parallel(r);
                }
                None => {
                    e.run_to_quiescence();
                }
            }
            (e.trace.render(), e.obs.log.export_jsonl())
        };
        let seq = drive(None);
        for &r in &[2usize, 5] {
            assert_eq!(drive(Some(r)), seq, "diverged at {r} regions");
        }
    }

    #[test]
    fn parallel_run_until_matches_sequential_checkpoints() {
        let drive = |regions: Option<usize>| {
            let mut e = Engine::new(line(8), Wave);
            e.enable_trace(1 << 14);
            for stop in [1500u64, 3200, 9000] {
                match regions {
                    Some(r) => e.run_until_parallel(SimTime(stop), r),
                    None => e.run_until(SimTime(stop)),
                }
            }
            (e.trace.render(), e.now())
        };
        assert_eq!(drive(None), drive(Some(3)));
    }

    #[test]
    fn parallel_hierarchy_topology_matches() {
        let topo = HierarchyConfig {
            seed: 7,
            ..HierarchyConfig::default()
        }
        .generate();
        let (st, sj, _) = quiesce_seq(topo.clone());
        let (pt, pj, _) = quiesce_par(topo, 4);
        assert_eq!(st, pt);
        assert_eq!(sj, pj);
    }

    #[test]
    fn faulted_parallel_matches_sequential() {
        // The event-keyed draw makes faulted runs parallel-safe: every
        // verdict (loss / corrupt / dup / reorder) lands identically at
        // any region count, so trace, JSONL, and fault counters match.
        let mixed = ChannelFaults {
            loss: 0.15,
            corrupt: 0.05,
            duplicate: 0.1,
            reorder: 0.1,
            jitter_us: 400,
            seed: 11,
            ..ChannelFaults::default()
        };
        let drive = |regions: Option<usize>| {
            let mut e = Engine::new(ring(12), Wave);
            e.enable_trace(1 << 14);
            e.enable_obs(1 << 14);
            e.set_channel_faults(Some(mixed.clone()));
            match regions {
                Some(r) => {
                    e.run_to_quiescence_parallel(r);
                }
                None => {
                    e.run_to_quiescence();
                }
            }
            (e.trace.render(), e.obs.log.export_jsonl(), e.stats)
        };
        let (st, sj, ss) = drive(None);
        assert!(
            ss.msgs_lost + ss.msgs_corrupted + ss.msgs_duplicated + ss.msgs_reordered > 0,
            "fault config must actually bite for this test to mean anything"
        );
        for &r in &[2usize, 4, 8] {
            let (pt, pj, ps) = drive(Some(r));
            assert_eq!(st, pt, "trace diverged at {r} regions");
            assert_eq!(sj, pj, "jsonl diverged at {r} regions");
            assert_eq!(ss.msgs_lost, ps.msgs_lost);
            assert_eq!(ss.msgs_corrupted, ps.msgs_corrupted);
            assert_eq!(ss.msgs_duplicated, ps.msgs_duplicated);
            assert_eq!(ss.msgs_reordered, ps.msgs_reordered);
            assert_eq!(ss.per_ad_msgs, ps.per_ad_msgs);
        }
    }
}
