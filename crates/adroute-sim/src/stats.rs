//! Measurement counters shared by every experiment.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::SimTime;
use crate::obs::json_escape;

/// Counters accumulated during a simulation run.
///
/// Besides the fixed message counters, protocols record named work
/// counters (e.g. `"dijkstra"`, `"route_recompute"`, `"flood_dup"`), which
/// is how the computation-burden experiments (paper Sections 5.2/5.3) are
/// measured without wall-clock noise.
///
/// Multi-phase experiments (converge, then fail a link, then measure the
/// failure response) should mark boundaries with [`Stats::begin_phase`]
/// and read per-phase deltas via [`Stats::phase_delta`]; unlike the older
/// [`Stats::reset_counters`], phase scoping preserves cumulative totals.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Control messages sent (per-hop transmissions, not end-to-end).
    pub msgs_sent: u64,
    /// Total encoded bytes of control messages sent.
    pub bytes_sent: u64,
    /// Control messages delivered.
    pub msgs_delivered: u64,
    /// Messages a router tried to send to a non-neighbor or over a failed
    /// link; [`Ctx::send`](crate::Ctx::send) drops these at the source.
    /// Source drops never enter the channel, so they do not count in
    /// [`Stats::msgs_sent`]: attempted sends = `msgs_sent + msgs_dropped`.
    pub msgs_dropped: u64,
    /// Messages lost in flight: the carrying link failed, the destination
    /// router was down, or an injected channel fault ate the packet.
    pub msgs_lost: u64,
    /// Messages dropped as corrupted by an injected channel fault
    /// (modeling a checksum failure at the receiver).
    pub msgs_corrupted: u64,
    /// Extra copies delivered by an injected duplication fault.
    pub msgs_duplicated: u64,
    /// Messages delayed out of order by an injected reordering fault.
    pub msgs_reordered: u64,
    /// Router crash events processed.
    pub router_crashes: u64,
    /// Router restart events processed.
    pub router_restarts: u64,
    /// Events processed in total.
    pub events: u64,
    /// Time of the last control-plane activity (convergence time).
    pub last_activity: SimTime,
    /// Named work counters incremented by protocols.
    counters: BTreeMap<&'static str, u64>,
    /// Phase marks: `(name, snapshot at phase start)`, in start order.
    phases: Vec<(&'static str, Box<Stats>)>,
    /// Per-AD control messages sent, indexed by AD.
    pub per_ad_msgs: Vec<u64>,
}

impl Stats {
    /// Creates stats sized for `num_ads` ADs.
    pub fn new(num_ads: usize) -> Stats {
        Stats {
            per_ad_msgs: vec![0; num_ads],
            ..Stats::default()
        }
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads a named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All named counters, for reporting.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The maximum per-AD message count (hot-spot measure).
    pub fn max_per_ad_msgs(&self) -> u64 {
        self.per_ad_msgs.iter().copied().max().unwrap_or(0)
    }

    /// Marks the start of a named measurement phase (`"converge"`,
    /// `"failure-response"`, `"churn"`, …). Cumulative totals keep
    /// accumulating; [`Stats::phase_delta`] later recovers what happened
    /// within each phase by differencing snapshots. Phase names should be
    /// unique per run — deltas resolve the first occurrence of a name.
    pub fn begin_phase(&mut self, name: &'static str) {
        let mut snap = self.clone();
        snap.phases.clear();
        self.phases.push((name, Box::new(snap)));
    }

    /// Names of all phases begun so far, in start order.
    pub fn phase_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.phases.iter().map(|&(n, _)| n)
    }

    /// What happened within the named phase: the counter-wise difference
    /// between the phase's start snapshot and the next phase's start (or
    /// the current totals, for the last phase). `last_activity` in the
    /// delta is the absolute time of the last activity *within* the
    /// phase's window. Returns `None` for an unknown phase name.
    pub fn phase_delta(&self, name: &str) -> Option<Stats> {
        let i = self.phases.iter().position(|&(n, _)| n == name)?;
        let start = &self.phases[i].1;
        let end: Stats = match self.phases.get(i + 1) {
            Some((_, snap)) => (**snap).clone(),
            None => {
                let mut cur = self.clone();
                cur.phases.clear();
                cur
            }
        };
        Some(end.minus(start))
    }

    /// Counter-wise difference `self - earlier` (saturating), used to
    /// compute per-phase deltas. `last_activity` keeps `self`'s absolute
    /// value; the phase list is cleared.
    fn minus(&self, earlier: &Stats) -> Stats {
        let mut d = Stats {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            msgs_delivered: self.msgs_delivered.saturating_sub(earlier.msgs_delivered),
            msgs_dropped: self.msgs_dropped.saturating_sub(earlier.msgs_dropped),
            msgs_lost: self.msgs_lost.saturating_sub(earlier.msgs_lost),
            msgs_corrupted: self.msgs_corrupted.saturating_sub(earlier.msgs_corrupted),
            msgs_duplicated: self.msgs_duplicated.saturating_sub(earlier.msgs_duplicated),
            msgs_reordered: self.msgs_reordered.saturating_sub(earlier.msgs_reordered),
            router_crashes: self.router_crashes.saturating_sub(earlier.router_crashes),
            router_restarts: self.router_restarts.saturating_sub(earlier.router_restarts),
            events: self.events.saturating_sub(earlier.events),
            last_activity: self.last_activity,
            counters: BTreeMap::new(),
            phases: Vec::new(),
            per_ad_msgs: vec![0; self.per_ad_msgs.len()],
        };
        for (&k, &v) in &self.counters {
            let dv = v.saturating_sub(earlier.counter(k));
            if dv > 0 {
                d.counters.insert(k, dv);
            }
        }
        for (i, &v) in self.per_ad_msgs.iter().enumerate() {
            let prev = earlier.per_ad_msgs.get(i).copied().unwrap_or(0);
            d.per_ad_msgs[i] = v.saturating_sub(prev);
        }
        d
    }

    /// Adds another accumulator's counters into this one. Used to fold
    /// per-region stats from parallel windows back into the engine's
    /// totals: every counter is a sum except `last_activity`, which is the
    /// latest activity either side saw. The other side's phase marks are
    /// ignored (regions never begin phases).
    pub fn merge(&mut self, other: &Stats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_lost += other.msgs_lost;
        self.msgs_corrupted += other.msgs_corrupted;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_reordered += other.msgs_reordered;
        self.router_crashes += other.router_crashes;
        self.router_restarts += other.router_restarts;
        self.events += other.events;
        self.last_activity = self.last_activity.max(other.last_activity);
        for (k, v) in other.counters() {
            self.count(k, v);
        }
        for (i, &v) in other.per_ad_msgs.iter().enumerate() {
            if v > 0 {
                self.per_ad_msgs[i] += v;
            }
        }
    }

    /// Message conservation at quiescence: every message that entered the
    /// channel (sent, plus injected duplicates) was delivered, lost, or
    /// corrupted. Source drops ([`Stats::msgs_dropped`]) never entered
    /// the channel and are accounted separately. Only meaningful when the
    /// event queue is empty — in-flight messages are still unresolved.
    pub fn conserves_messages(&self) -> bool {
        self.msgs_sent + self.msgs_duplicated
            == self.msgs_delivered + self.msgs_lost + self.msgs_corrupted
    }

    /// Resets message/byte/event counters (and per-AD message loads) but
    /// keeps sizing, named work counters, and crash/restart totals —
    /// those are cumulative facts about the run, not per-window rates.
    /// Phase marks are cleared, since the totals they snapshot no longer
    /// exist. Prefer [`Stats::begin_phase`] + [`Stats::phase_delta`],
    /// which separate phases without destroying any totals.
    pub fn reset_counters(&mut self) {
        self.msgs_sent = 0;
        self.bytes_sent = 0;
        self.msgs_delivered = 0;
        self.msgs_dropped = 0;
        self.msgs_lost = 0;
        self.msgs_corrupted = 0;
        self.msgs_duplicated = 0;
        self.msgs_reordered = 0;
        self.events = 0;
        self.last_activity = SimTime::ZERO;
        for v in &mut self.per_ad_msgs {
            *v = 0;
        }
        self.phases.clear();
    }

    /// Renders the fixed counters, named counters, and the per-AD
    /// hot-spot maximum as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"msgs_sent\":{},\"bytes_sent\":{},\"msgs_delivered\":{},\"msgs_dropped\":{},\
             \"msgs_lost\":{},\"msgs_corrupted\":{},\"msgs_duplicated\":{},\"msgs_reordered\":{},\
             \"router_crashes\":{},\"router_restarts\":{},\"events\":{},\"last_activity_us\":{},\
             \"max_per_ad_msgs\":{},\"counters\":{{",
            self.msgs_sent,
            self.bytes_sent,
            self.msgs_delivered,
            self.msgs_dropped,
            self.msgs_lost,
            self.msgs_corrupted,
            self.msgs_duplicated,
            self.msgs_reordered,
            self.router_crashes,
            self.router_restarts,
            self.events,
            self.last_activity.as_us(),
            self.max_per_ad_msgs(),
        );
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{v}", json_escape(k));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters() {
        let mut s = Stats::new(3);
        assert_eq!(s.counter("dijkstra"), 0);
        s.count("dijkstra", 2);
        s.count("dijkstra", 3);
        assert_eq!(s.counter("dijkstra"), 5);
        assert_eq!(s.counters().count(), 1);
    }

    #[test]
    fn reset_preserves_sizing_and_cumulative_work() {
        let mut s = Stats::new(4);
        s.msgs_sent = 10;
        s.per_ad_msgs[2] = 7;
        s.count("x", 1);
        s.router_crashes = 2;
        s.router_restarts = 1;
        s.reset_counters();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.per_ad_msgs.len(), 4);
        assert_eq!(s.per_ad_msgs[2], 0);
        // Regression: reset_counters used to wipe named work counters and
        // crash/restart totals, silently corrupting two-phase experiment
        // reports. Those are cumulative and must survive a window reset.
        assert_eq!(s.counter("x"), 1);
        assert_eq!(s.router_crashes, 2);
        assert_eq!(s.router_restarts, 1);
    }

    #[test]
    fn hotspot_measure() {
        let mut s = Stats::new(3);
        s.per_ad_msgs[1] = 9;
        s.per_ad_msgs[2] = 4;
        assert_eq!(s.max_per_ad_msgs(), 9);
        assert_eq!(Stats::new(0).max_per_ad_msgs(), 0);
    }

    #[test]
    fn phase_deltas_preserve_cumulative_totals() {
        let mut s = Stats::new(2);
        s.begin_phase("converge");
        s.msgs_sent = 10;
        s.bytes_sent = 100;
        s.per_ad_msgs[0] = 10;
        s.count("work", 5);
        s.last_activity = SimTime(1000);
        s.begin_phase("failure-response");
        s.msgs_sent = 14;
        s.bytes_sent = 130;
        s.per_ad_msgs[0] = 12;
        s.per_ad_msgs[1] = 2;
        s.count("work", 2);
        s.router_crashes = 1;
        s.last_activity = SimTime(3000);

        let names: Vec<_> = s.phase_names().collect();
        assert_eq!(names, vec!["converge", "failure-response"]);

        let c = s.phase_delta("converge").unwrap();
        assert_eq!(c.msgs_sent, 10);
        assert_eq!(c.bytes_sent, 100);
        assert_eq!(c.counter("work"), 5);
        assert_eq!(c.per_ad_msgs, vec![10, 0]);
        assert_eq!(c.router_crashes, 0);

        let f = s.phase_delta("failure-response").unwrap();
        assert_eq!(f.msgs_sent, 4);
        assert_eq!(f.bytes_sent, 30);
        assert_eq!(f.counter("work"), 2);
        assert_eq!(f.per_ad_msgs, vec![2, 2]);
        assert_eq!(f.router_crashes, 1);
        assert_eq!(f.last_activity, SimTime(3000));

        assert!(s.phase_delta("nope").is_none());
        // The totals are untouched by phase accounting.
        assert_eq!(s.msgs_sent, 14);
        assert_eq!(s.counter("work"), 7);
    }

    #[test]
    fn merge_sums_counters_and_maxes_activity() {
        let mut a = Stats::new(3);
        a.msgs_sent = 2;
        a.per_ad_msgs[0] = 2;
        a.count("work", 1);
        a.last_activity = SimTime(500);
        let mut b = Stats::new(3);
        b.msgs_sent = 3;
        b.events = 7;
        b.per_ad_msgs[2] = 3;
        b.count("work", 4);
        b.last_activity = SimTime(200);
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.events, 7);
        assert_eq!(a.per_ad_msgs, vec![2, 0, 3]);
        assert_eq!(a.counter("work"), 5);
        assert_eq!(a.last_activity, SimTime(500));
    }

    #[test]
    fn conservation_identity() {
        let mut s = Stats::new(1);
        s.msgs_sent = 5;
        s.msgs_duplicated = 1;
        s.msgs_delivered = 4;
        s.msgs_lost = 1;
        s.msgs_corrupted = 1;
        s.msgs_dropped = 3; // source drops sit outside the channel identity
        assert!(s.conserves_messages());
        s.msgs_lost = 0;
        assert!(!s.conserves_messages());
    }

    #[test]
    fn stats_json_is_deterministic() {
        let mut s = Stats::new(2);
        s.msgs_sent = 3;
        s.count("b", 2);
        s.count("a", 1);
        let j = s.to_json();
        assert!(j.starts_with("{\"msgs_sent\":3,"));
        assert!(j.ends_with("\"counters\":{\"a\":1,\"b\":2}}"));
        assert_eq!(j, s.to_json());
    }
}
