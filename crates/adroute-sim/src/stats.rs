//! Measurement counters shared by every experiment.

use std::collections::BTreeMap;

use crate::event::SimTime;

/// Counters accumulated during a simulation run.
///
/// Besides the fixed message counters, protocols record named work
/// counters (e.g. `"dijkstra"`, `"route_recompute"`, `"flood_dup"`), which
/// is how the computation-burden experiments (paper Sections 5.2/5.3) are
/// measured without wall-clock noise.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Control messages sent (per-hop transmissions, not end-to-end).
    pub msgs_sent: u64,
    /// Total encoded bytes of control messages sent.
    pub bytes_sent: u64,
    /// Control messages delivered.
    pub msgs_delivered: u64,
    /// Messages a router tried to send to a non-neighbor or over a failed
    /// link; [`Ctx::send`](crate::Ctx::send) drops these at the source.
    pub msgs_dropped: u64,
    /// Messages lost in flight: the carrying link failed, the destination
    /// router was down, or an injected channel fault ate the packet.
    pub msgs_lost: u64,
    /// Messages dropped as corrupted by an injected channel fault
    /// (modeling a checksum failure at the receiver).
    pub msgs_corrupted: u64,
    /// Extra copies delivered by an injected duplication fault.
    pub msgs_duplicated: u64,
    /// Messages delayed out of order by an injected reordering fault.
    pub msgs_reordered: u64,
    /// Router crash events processed.
    pub router_crashes: u64,
    /// Router restart events processed.
    pub router_restarts: u64,
    /// Events processed in total.
    pub events: u64,
    /// Time of the last control-plane activity (convergence time).
    pub last_activity: SimTime,
    /// Named work counters incremented by protocols.
    counters: BTreeMap<&'static str, u64>,
    /// Per-AD control messages sent, indexed by AD.
    pub per_ad_msgs: Vec<u64>,
}

impl Stats {
    /// Creates stats sized for `num_ads` ADs.
    pub fn new(num_ads: usize) -> Stats {
        Stats {
            per_ad_msgs: vec![0; num_ads],
            ..Stats::default()
        }
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads a named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All named counters, for reporting.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The maximum per-AD message count (hot-spot measure).
    pub fn max_per_ad_msgs(&self) -> u64 {
        self.per_ad_msgs.iter().copied().max().unwrap_or(0)
    }

    /// Resets message/byte/event counters but keeps sizing. Used between
    /// the initial-convergence phase and a failure-response phase so the
    /// two can be reported separately.
    pub fn reset_counters(&mut self) {
        let n = self.per_ad_msgs.len();
        *self = Stats::new(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_counters() {
        let mut s = Stats::new(3);
        assert_eq!(s.counter("dijkstra"), 0);
        s.count("dijkstra", 2);
        s.count("dijkstra", 3);
        assert_eq!(s.counter("dijkstra"), 5);
        assert_eq!(s.counters().count(), 1);
    }

    #[test]
    fn reset_preserves_sizing() {
        let mut s = Stats::new(4);
        s.msgs_sent = 10;
        s.per_ad_msgs[2] = 7;
        s.count("x", 1);
        s.reset_counters();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.per_ad_msgs.len(), 4);
        assert_eq!(s.per_ad_msgs[2], 0);
        assert_eq!(s.counter("x"), 0);
    }

    #[test]
    fn hotspot_measure() {
        let mut s = Stats::new(3);
        s.per_ad_msgs[1] = 9;
        s.per_ad_msgs[2] = 4;
        assert_eq!(s.max_per_ad_msgs(), 9);
        assert_eq!(Stats::new(0).max_per_ad_msgs(), 0);
    }
}
