//! Simulated time and the event structures of the engine.

use adroute_topology::{AdId, LinkId};
use std::fmt;

/// Simulated time in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// This time plus `us` microseconds.
    #[inline]
    pub fn plus_us(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }

    /// Constructs from whole milliseconds.
    pub fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// The value in milliseconds (truncating).
    pub fn as_ms(self) -> u64 {
        self.0 / 1000
    }

    /// The value in microseconds.
    pub fn as_us(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1000, self.0 % 1000)
    }
}

/// What an event does when it fires. Generic over the protocol message
/// type `M`.
#[derive(Clone, Debug)]
pub(crate) enum EventKind<M> {
    /// Router start-up: the protocol's `on_start` hook.
    Start { ad: AdId },
    /// A message arriving at `to` from neighbor `from` over `link`.
    Deliver {
        to: AdId,
        from: AdId,
        link: LinkId,
        msg: M,
    },
    /// A one-shot timer at `ad` with an opaque token. The incarnation
    /// pins the timer to the router instance that set it: timers armed
    /// before a crash never fire into the rebuilt state.
    Timer {
        ad: AdId,
        token: u64,
        incarnation: u32,
    },
    /// A link going up or down; delivered to both endpoints after the
    /// topology is updated.
    LinkEvent { link: LinkId, up: bool },
    /// A router crashing (`up = false`, soft state lost) or restarting
    /// (`up = true`, state rebuilt from scratch).
    RouterEvent { ad: AdId, up: bool },
}

impl<M> EventKind<M> {
    /// The single AD this event is dispatched to, or `None` for control
    /// events (link / router state changes) that mutate shared topology
    /// state. The split decides which queue an event lives in: targeted
    /// events parallelize by region, control events serialize globally.
    pub(crate) fn target_ad(&self) -> Option<AdId> {
        match self {
            EventKind::Start { ad } => Some(*ad),
            EventKind::Deliver { to, .. } => Some(*to),
            EventKind::Timer { ad, .. } => Some(*ad),
            EventKind::LinkEvent { .. } | EventKind::RouterEvent { .. } => None,
        }
    }
}

/// A scheduled event: ordered by `(time, seq)` so simulation order is
/// total and deterministic. The `cause` is the logged event that
/// scheduled this one (if observability is on); it becomes the `cause`
/// of whatever record fires when the event is processed, which is how
/// provenance crosses the queue (enqueue → deliver → reaction).
#[derive(Clone, Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub cause: Option<crate::obs::EventId>,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_ms(2).plus_us(500);
        assert_eq!(t.as_us(), 2500);
        assert_eq!(t.as_ms(), 2);
        assert_eq!(t.to_string(), "2.500ms");
        assert!(SimTime::ZERO < t);
    }

    #[test]
    fn event_ordering_is_earliest_first() {
        let timer = |token| EventKind::Timer {
            ad: AdId(0),
            token,
            incarnation: 0,
        };
        let a: Event<()> = Event {
            time: SimTime(5),
            seq: 1,
            cause: None,
            kind: timer(0),
        };
        let b: Event<()> = Event {
            time: SimTime(3),
            seq: 2,
            cause: None,
            kind: timer(0),
        };
        let c: Event<()> = Event {
            time: SimTime(3),
            seq: 1,
            cause: None,
            kind: timer(0),
        };
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(a);
        heap.push(b);
        heap.push(c);
        let first = heap.pop().unwrap();
        assert_eq!((first.time, first.seq), (SimTime(3), 1));
        let second = heap.pop().unwrap();
        assert_eq!((second.time, second.seq), (SimTime(3), 2));
        let third = heap.pop().unwrap();
        assert_eq!(third.time, SimTime(5));
    }
}
