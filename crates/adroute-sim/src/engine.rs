//! The simulation engine: routers, message delivery, timers, link events.

use std::collections::BinaryHeap;

use adroute_topology::{AdId, LinkId, Topology};

use crate::event::{Event, EventKind, SimTime};
use crate::faults::{ChannelFaults, ChannelVerdict};
use crate::obs::prof::Profiler;
use crate::obs::{EventId, EventLog, EventRecord, Obs};
use crate::stats::Stats;
use crate::trace::Trace;

/// A routing protocol that can be run by the [`Engine`].
///
/// The protocol value itself holds *configuration* shared by all routers
/// (policies, tuning knobs); per-AD state lives in `Router`. Handlers
/// receive a [`Ctx`] through which they send messages, set one-shot
/// timers, and record work counters.
pub trait Protocol: Sized {
    /// Per-AD router state.
    type Router;
    /// Wire message type exchanged between neighbors.
    type Msg: Clone;

    /// Creates the initial router state for `ad`.
    fn make_router(&self, topo: &Topology, ad: AdId) -> Self::Router;

    /// Called once per router at simulation start (time zero).
    fn on_start(&self, router: &mut Self::Router, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message from neighbor `from` arrives over `link`.
    fn on_message(
        &self,
        router: &mut Self::Router,
        ctx: &mut Ctx<'_, Self::Msg>,
        from: AdId,
        link: LinkId,
        msg: Self::Msg,
    );

    /// Called when a one-shot timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&self, router: &mut Self::Router, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (router, ctx, token);
    }

    /// Called when an adjacent link changes state. The topology has
    /// already been updated when this fires.
    fn on_link_event(
        &self,
        router: &mut Self::Router,
        ctx: &mut Ctx<'_, Self::Msg>,
        link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        let _ = (router, ctx, link, neighbor, up);
    }

    /// Called on the dying router state just before a crash discards it.
    /// The router cannot send or set timers — it is already dead; the hook
    /// exists for protocols that mirror state outside the engine.
    fn on_crash(&self, router: &mut Self::Router) {
        let _ = router;
    }

    /// Called on the freshly rebuilt router state when a crashed router
    /// restarts. Defaults to [`Protocol::on_start`]: for most protocols a
    /// reboot looks exactly like a cold boot. Adjacent links that are
    /// operational again also deliver `on_link_event(up)` to both ends
    /// right after this hook, so neighbor-side resynchronization logic
    /// (full-table re-advertisement, database exchange) runs without any
    /// crash-specific protocol code.
    fn on_restart(&self, router: &mut Self::Router, ctx: &mut Ctx<'_, Self::Msg>) {
        self.on_start(router, ctx);
    }

    /// Encoded size in bytes of a message, for overhead accounting.
    fn msg_size(&self, msg: &Self::Msg) -> usize;
}

/// Handler-side context: everything a router may do during an event.
pub struct Ctx<'a, M> {
    pub(crate) me: AdId,
    pub(crate) now: SimTime,
    pub(crate) topo: &'a Topology,
    pub(crate) stats: &'a mut Stats,
    /// Outgoing messages `(to, link, msg, anchor)` buffered until the
    /// handler returns; `anchor` indexes the protocol-emitted event in
    /// `events` that preceded the send, for causal attribution.
    pub(crate) outbox: Vec<(AdId, LinkId, M, Option<usize>)>,
    /// Timers `(delay_us, token, anchor)` buffered until the handler
    /// returns.
    pub(crate) timers: Vec<(u64, u64, Option<usize>)>,
    /// Typed events emitted by the protocol, drained into the engine's
    /// observability stream when the handler returns.
    pub(crate) events: Vec<EventRecord>,
    /// Index into `events` of the most recent protocol-emitted record.
    /// Sends and timers are attributed to it (protocols emit the
    /// reaction — LSA accepted, route recomputed — *before* flooding),
    /// falling back to the dispatched event itself.
    pub(crate) anchor: Option<usize>,
    /// Whether any event sink (trace or typed log) is enabled; when
    /// false, [`Ctx::emit`] is a no-op so protocols pay nothing.
    pub(crate) observing: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The AD this router belongs to.
    #[inline]
    pub fn me(&self) -> AdId {
        self.me
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Operational neighbors of this AD, with the connecting link.
    pub fn neighbors(&self) -> Vec<(AdId, LinkId)> {
        self.topo.neighbors(self.me).collect()
    }

    /// The routing metric of a link (for computing advertised distances).
    pub fn link_metric(&self, link: LinkId) -> u32 {
        self.topo.link(link).metric
    }

    /// The propagation delay of a link in microseconds.
    pub fn link_delay(&self, link: LinkId) -> u64 {
        self.topo.link(link).delay_us
    }

    /// The hierarchy classification of a link (hierarchical / lateral /
    /// bypass). Tree-restricted protocols (EGP-style) filter on this.
    pub fn link_kind(&self, link: LinkId) -> adroute_topology::LinkKind {
        self.topo.link(link).kind
    }

    /// Whether the link to `neighbor` is currently operational.
    pub fn neighbor_up(&self, neighbor: AdId) -> bool {
        self.topo
            .link_between(self.me, neighbor)
            .map(|l| self.topo.link(l).up)
            .unwrap_or(false)
    }

    /// The dense slot of `neighbor` in this AD's adjacency list, or
    /// `None` for non-neighbors. Slots are stable for a topology (the
    /// adjacency is sorted by neighbor id) regardless of link state, so
    /// per-neighbor protocol state can live in flat arrays of
    /// [`Ctx::full_degree`] length instead of hash maps.
    pub fn neighbor_slot(&self, neighbor: AdId) -> Option<usize> {
        self.topo.neighbor_slot(self.me, neighbor)
    }

    /// This AD's adjacency size counting failed links too: the length to
    /// allocate for [`Ctx::neighbor_slot`]-indexed arrays.
    pub fn full_degree(&self) -> usize {
        self.topo.full_degree(self.me)
    }

    /// Sends `msg` to a directly connected neighbor over the (operational)
    /// link between them. Messages to non-neighbors or over failed links
    /// are dropped at the source, mirroring a loss on a dying link; such
    /// drops are counted in [`Stats::msgs_dropped`].
    pub fn send(&mut self, to: AdId, msg: M) {
        match self.topo.link_between(self.me, to) {
            Some(link) if self.topo.link(link).up => self.outbox.push((to, link, msg, self.anchor)),
            _ => {
                self.stats.msgs_dropped += 1;
                let from = self.me;
                // Recorded without moving the anchor: a source-side drop
                // is a side effect, not a protocol reaction later sends
                // should attach to.
                if self.observing {
                    self.events.push(EventRecord::MsgDrop { from, to });
                }
            }
        }
    }

    /// Sets a one-shot timer `delay_us` microseconds from now. The token
    /// is returned to [`Protocol::on_timer`].
    pub fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.timers.push((delay_us, token, self.anchor));
    }

    /// Adds `n` to a named work counter (e.g. `"dijkstra"`).
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.stats.count(name, n);
    }

    /// Emits a typed protocol event (LSA accepted, route recomputed, …)
    /// into the engine's observability stream. A no-op unless tracing or
    /// the typed event log is enabled, so hot paths stay free.
    pub fn emit(&mut self, rec: EventRecord) {
        if self.observing {
            self.anchor = Some(self.events.len());
            self.events.push(rec);
        }
    }
}

/// Reusable dispatch buffers. [`Engine::dispatch`] hands these to each
/// [`Ctx`] and takes them back drained, so steady-state dispatch allocates
/// nothing — the hot-path requirement for paper-scale runs (and the whole
/// point when no observer is attached and `events` stays empty).
pub(crate) struct Scratch<M> {
    pub(crate) outbox: Vec<(AdId, LinkId, M, Option<usize>)>,
    pub(crate) timers: Vec<(u64, u64, Option<usize>)>,
    pub(crate) events: Vec<EventRecord>,
    pub(crate) emitted: Vec<Option<EventId>>,
}

impl<M> Default for Scratch<M> {
    fn default() -> Scratch<M> {
        Scratch {
            outbox: Vec::new(),
            timers: Vec::new(),
            events: Vec::new(),
            emitted: Vec::new(),
        }
    }
}

/// The discrete-event engine running one [`Protocol`] over one
/// [`Topology`].
pub struct Engine<P: Protocol> {
    pub(crate) protocol: P,
    pub(crate) topo: Topology,
    pub(crate) routers: Vec<P::Router>,
    /// AD-targeted events (start / deliver / timer): the parallelizable
    /// queue, partitioned by region during parallel windows.
    pub(crate) queue: BinaryHeap<Event<P::Msg>>,
    /// Control events (link / router state changes). Kept apart from the
    /// targeted queue so the parallel scheduler can read the next global
    /// synchronization point in O(1).
    pub(crate) ctrl: BinaryHeap<Event<P::Msg>>,
    pub(crate) seq: u64,
    pub(crate) now: SimTime,
    /// What the link-fault process says about each link, independent of
    /// router crashes. A link is *operational* (reflected in `topo`) iff
    /// its scheduled state is up AND both endpoint routers are up.
    sched_up: Vec<bool>,
    /// Liveness of each router; crashed routers receive no events.
    pub(crate) router_up: Vec<bool>,
    /// Bumped on each crash so pre-crash timers die with the old state.
    pub(crate) incarnations: Vec<u32>,
    /// Optional channel-fault configuration (loss/corruption/dup/
    /// reorder); verdicts are drawn per message, keyed on event identity.
    pub(crate) faults: Option<ChannelFaults>,
    /// Reusable dispatch buffers (see [`Scratch`]).
    scratch: Scratch<P::Msg>,
    /// Safety valve: maximum events processed per `run_*` call family.
    pub max_events: u64,
    /// Accumulated measurement counters.
    pub stats: Stats,
    /// Optional event trace (capacity 0 = disabled). The trace is a
    /// rendered view over the typed event stream: each line is an
    /// [`EventRecord`]'s `Display` form. Because the engine is
    /// deterministic, the rendered trace is a golden artifact: equal
    /// configurations produce byte-identical traces, and
    /// [`Trace::first_divergence`] pinpoints where two runs split.
    pub trace: Trace,
    /// Structured observability: the typed event log (capacity 0 =
    /// disabled, see [`Engine::enable_obs`]) plus the always-live metrics
    /// registry.
    pub obs: Obs,
    /// The self-profiler (disabled by default; see
    /// [`Engine::enable_prof`]). Its span/wall side is measurement-only;
    /// its work ledger is fed exclusively from worker-count-invariant
    /// [`Stats`] deltas, so it obeys the determinism contract.
    pub prof: Profiler,
    /// Lazily-created persistent worker crew for parallel windows
    /// (spawning threads per window dominated lane work at paper scale).
    pub(crate) pool: Option<crate::pool::WorkerPool>,
}

impl<P: Protocol> Engine<P> {
    /// Builds routers for every AD and schedules their start events at
    /// time zero (in AD order).
    pub fn new(topo: Topology, protocol: P) -> Engine<P> {
        let routers = topo
            .ad_ids()
            .map(|ad| protocol.make_router(&topo, ad))
            .collect::<Vec<_>>();
        let stats = Stats::new(topo.num_ads());
        let sched_up = topo.links().map(|l| l.up).collect();
        let num_ads = topo.num_ads();
        let mut e = Engine {
            protocol,
            topo,
            routers,
            queue: BinaryHeap::new(),
            ctrl: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            sched_up,
            router_up: vec![true; num_ads],
            incarnations: vec![0; num_ads],
            faults: None,
            scratch: Scratch::default(),
            max_events: 50_000_000,
            stats,
            trace: Trace::new(0),
            obs: Obs::disabled(),
            prof: Profiler::new(),
            pool: None,
        };
        for ad in e.topo.ad_ids() {
            e.push(SimTime::ZERO, None, EventKind::Start { ad });
        }
        e
    }

    fn push(&mut self, time: SimTime, cause: Option<EventId>, kind: EventKind<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        let ev = Event {
            time,
            seq,
            cause,
            kind,
        };
        if ev.kind.target_ad().is_some() {
            self.queue.push(ev);
        } else {
            self.ctrl.push(ev);
        }
    }

    /// Pops the globally next event across both queues, by `(time, seq)`.
    pub(crate) fn pop_next(&mut self) -> Option<Event<P::Msg>> {
        let take_ctrl = match (self.queue.peek(), self.ctrl.peek()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(a), Some(c)) => (c.time, c.seq) < (a.time, a.seq),
        };
        if take_ctrl {
            self.ctrl.pop()
        } else {
            self.queue.pop()
        }
    }

    /// Time of the next pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        match (self.queue.peek(), self.ctrl.peek()) {
            (None, None) => None,
            (Some(a), None) => Some(a.time),
            (None, Some(c)) => Some(c.time),
            (Some(a), Some(c)) => Some(a.time.min(c.time)),
        }
    }

    /// The topology (current link states included).
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Router state of `ad`.
    pub fn router(&self, ad: AdId) -> &P::Router {
        &self.routers[ad.index()]
    }

    /// Mutable router state of `ad`, for experiment-driven changes
    /// (e.g. editing a policy before poking the router).
    pub fn router_mut(&mut self, ad: AdId) -> &mut P::Router {
        &mut self.routers[ad.index()]
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn pending_events(&self) -> usize {
        self.queue.len() + self.ctrl.len()
    }

    /// Schedules a link state change at an absolute time. The topology
    /// flips when the event fires; both endpoint routers are then
    /// notified.
    pub fn schedule_link_change(&mut self, link: LinkId, up: bool, at: SimTime) {
        self.schedule_link_change_caused(link, up, at, None);
    }

    /// [`Engine::schedule_link_change`] with causal provenance: the fired
    /// link event (and everything it triggers) is attributed to `cause`
    /// in the event log. Fault injectors use this to root their blast
    /// radius at the plan that scheduled them.
    pub fn schedule_link_change_caused(
        &mut self,
        link: LinkId,
        up: bool,
        at: SimTime,
        cause: Option<EventId>,
    ) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, cause, EventKind::LinkEvent { link, up });
    }

    /// Schedules a timer wake-up at router `ad` at an absolute time.
    /// Experiments use this to trigger protocol-defined reactions (e.g.
    /// after directly mutating a router's policy).
    pub fn schedule_wakeup(&mut self, ad: AdId, at: SimTime, token: u64) {
        self.schedule_wakeup_caused(ad, at, token, None);
    }

    /// [`Engine::schedule_wakeup`] with causal provenance.
    pub fn schedule_wakeup_caused(
        &mut self,
        ad: AdId,
        at: SimTime,
        token: u64,
        cause: Option<EventId>,
    ) {
        assert!(at >= self.now, "cannot schedule in the past");
        let incarnation = self.incarnations[ad.index()];
        self.push(
            at,
            cause,
            EventKind::Timer {
                ad,
                token,
                incarnation,
            },
        );
    }

    /// Schedules a router crash (`up = false`) or restart (`up = true`) at
    /// an absolute time. A crash discards the router's entire soft state
    /// and takes its adjacent links out of operation (fate sharing: dead
    /// routers have dead interfaces); live neighbors observe ordinary
    /// link-down events. A restart rebuilds the router via
    /// [`Protocol::make_router`], runs [`Protocol::on_restart`], restores
    /// the adjacent links the link-fault process allows, and delivers
    /// link-up events to both ends of each — which is what lets existing
    /// protocol resynchronization logic heal the reborn router.
    pub fn schedule_router_change(&mut self, ad: AdId, up: bool, at: SimTime) {
        self.schedule_router_change_caused(ad, up, at, None);
    }

    /// [`Engine::schedule_router_change`] with causal provenance.
    pub fn schedule_router_change_caused(
        &mut self,
        ad: AdId,
        up: bool,
        at: SimTime,
        cause: Option<EventId>,
    ) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!(ad.index() < self.routers.len(), "unknown AD {ad}");
        self.push(at, cause, EventKind::RouterEvent { ad, up });
    }

    /// Whether router `ad` is currently alive.
    pub fn router_is_up(&self, ad: AdId) -> bool {
        self.router_up[ad.index()]
    }

    /// Installs (or clears) the channel-fault configuration. Faults apply
    /// to every message sent after this call; each message's fate is
    /// drawn by [`ChannelFaults::judge`] keyed on (seed, sender, per-AD
    /// send ordinal), so fault arrival is a pure function of event
    /// identity — independent of draw order, identical under the
    /// sequential and parallel engines.
    pub fn set_channel_faults(&mut self, faults: Option<ChannelFaults>) {
        self.faults = faults;
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.pop_next() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.stats.events += 1;
        let cause = ev.cause;
        match ev.kind {
            EventKind::Start { ad } => {
                let id = self.emit(cause, EventRecord::Start { ad });
                self.dispatch(ad, id.or(cause), |p, r, ctx| p.on_start(r, ctx));
            }
            EventKind::Deliver {
                to,
                from,
                link,
                msg,
            } => {
                // A message in flight when its link failed, or whose
                // destination crashed, is lost.
                if self.topo.link(link).up && self.router_up[to.index()] {
                    self.stats.msgs_delivered += 1;
                    self.stats.last_activity = self.now;
                    let id = self.emit(cause, EventRecord::MsgDeliver { from, to, link });
                    self.dispatch(to, id.or(cause), |p, r, ctx| {
                        p.on_message(r, ctx, from, link, msg)
                    });
                } else {
                    self.stats.msgs_lost += 1;
                    self.emit(cause, EventRecord::MsgLost { from, to, link });
                }
            }
            EventKind::Timer {
                ad,
                token,
                incarnation,
            } => {
                // Timers armed by a previous incarnation (or aimed at a
                // currently dead router) died with the state that set them.
                if self.router_up[ad.index()] && incarnation == self.incarnations[ad.index()] {
                    let id = self.emit(cause, EventRecord::TimerFire { ad, token });
                    self.dispatch(ad, id.or(cause), |p, r, ctx| p.on_timer(r, ctx, token));
                } else {
                    self.emit(cause, EventRecord::StaleTimer { ad, token });
                }
            }
            EventKind::LinkEvent { link, up } => {
                self.sched_up[link.index()] = up;
                let l = self.topo.link(link);
                let (a, b) = (l.a, l.b);
                // A link is only operational if both endpoint routers live.
                let eff = up && self.router_up[a.index()] && self.router_up[b.index()];
                self.topo.set_link_up(link, eff);
                self.stats.last_activity = self.now;
                let id = self.emit(
                    cause,
                    match (up, eff) {
                        (true, true) => EventRecord::LinkUp { link },
                        (true, false) => EventRecord::LinkUpMasked { link },
                        _ => EventRecord::LinkDown { link },
                    },
                );
                let link_cause = id.or(cause);
                if self.router_up[a.index()] {
                    self.dispatch(a, link_cause, |p, r, ctx| {
                        p.on_link_event(r, ctx, link, b, eff)
                    });
                }
                if self.router_up[b.index()] {
                    self.dispatch(b, link_cause, |p, r, ctx| {
                        p.on_link_event(r, ctx, link, a, eff)
                    });
                }
            }
            EventKind::RouterEvent { ad, up } => {
                if up {
                    self.restart_router(ad, cause);
                } else {
                    self.crash_router(ad, cause);
                }
            }
        }
        true
    }

    /// Crashes router `ad`: soft state is lost, adjacent links go out of
    /// operation, live neighbors observe link-down events.
    fn crash_router(&mut self, ad: AdId, cause: Option<EventId>) {
        if !self.router_up[ad.index()] {
            return; // already down: double-crash is a no-op
        }
        self.stats.router_crashes += 1;
        self.stats.last_activity = self.now;
        let crash_id = self.emit(cause, EventRecord::Crash { ad }).or(cause);
        self.protocol.on_crash(&mut self.routers[ad.index()]);
        self.router_up[ad.index()] = false;
        self.incarnations[ad.index()] += 1;
        let adjacent: Vec<(AdId, LinkId)> = self.topo.neighbors(ad).collect();
        for (nbr, link) in adjacent {
            self.topo.set_link_up(link, false);
            // Fate-shared link-downs are children of the crash; neighbor
            // reactions chain off each link-down in turn.
            let down_id = self
                .emit(crash_id, EventRecord::LinkDown { link })
                .or(crash_id);
            if self.router_up[nbr.index()] {
                self.dispatch(nbr, down_id, |p, r, ctx| {
                    p.on_link_event(r, ctx, link, ad, false)
                });
            }
        }
    }

    /// Restarts router `ad`: state is rebuilt from scratch via
    /// [`Protocol::make_router`], operational adjacent links come back,
    /// and link-up events fire at both ends of each restored link.
    fn restart_router(&mut self, ad: AdId, cause: Option<EventId>) {
        if self.router_up[ad.index()] {
            return; // already up: double-restart is a no-op
        }
        self.stats.router_restarts += 1;
        self.stats.last_activity = self.now;
        let restart_id = self.emit(cause, EventRecord::Restart { ad }).or(cause);
        self.router_up[ad.index()] = true;
        // Restore adjacency first so the rebuilt router boots against the
        // topology it will actually operate on. Each restored link-up is
        // a child of the restart; the link-event dispatches below chain
        // off their own link-up record.
        let mut restored: Vec<(AdId, LinkId, Option<EventId>)> = Vec::new();
        let adjacent: Vec<(AdId, LinkId)> = self.topo.all_neighbors(ad).collect();
        for (nbr, link) in adjacent {
            let eff = self.sched_up[link.index()] && self.router_up[nbr.index()];
            if eff && !self.topo.link(link).up {
                self.topo.set_link_up(link, true);
                let up_id = self
                    .emit(restart_id, EventRecord::LinkUp { link })
                    .or(restart_id);
                restored.push((nbr, link, up_id));
            }
        }
        self.routers[ad.index()] = self.protocol.make_router(&self.topo, ad);
        self.dispatch(ad, restart_id, |p, r, ctx| p.on_restart(r, ctx));
        for (nbr, link, up_id) in restored {
            self.dispatch(ad, up_id, |p, r, ctx| {
                p.on_link_event(r, ctx, link, nbr, true)
            });
            if self.router_up[nbr.index()] {
                self.dispatch(nbr, up_id, |p, r, ctx| {
                    p.on_link_event(r, ctx, link, ad, true)
                });
            }
        }
    }

    /// Enables event tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
    }

    /// Enables the typed event log with the given ring-buffer capacity,
    /// clearing any previously retained records. Metrics are unaffected
    /// (they are always live).
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs.log = EventLog::new(capacity);
    }

    /// Enables the self-profiler. Unlike the event sinks, the profiler
    /// adds no per-event work: spans wrap whole `run_*` calls and
    /// parallel windows, and the work ledger is fed from [`Stats`]
    /// deltas at span exits.
    pub fn enable_prof(&mut self) {
        self.prof.enable();
    }

    /// Snapshot of the worker-count-invariant counters a run span
    /// attributes work from.
    pub(crate) fn prof_snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.stats.events,
            self.stats.msgs_sent,
            self.stats.msgs_delivered,
            self.stats.bytes_sent,
        )
    }

    /// Credits the engine-level work ledger with everything that
    /// happened since `snap`. All four deltas are byte-identical across
    /// worker counts by the determinism contract, so the ledger is too.
    pub(crate) fn prof_attribute(&mut self, snap: (u64, u64, u64, u64)) {
        if !self.prof.is_enabled() {
            return;
        }
        self.prof.work("engine/events", self.stats.events - snap.0);
        self.prof
            .work("engine/msgs_sent", self.stats.msgs_sent - snap.1);
        self.prof
            .work("engine/msgs_delivered", self.stats.msgs_delivered - snap.2);
        self.prof
            .work("engine/bytes_sent", self.stats.bytes_sent - snap.3);
    }

    /// Whether any event sink (legacy trace or typed log) is recording.
    pub(crate) fn observing(&self) -> bool {
        self.trace.capacity() > 0 || self.obs.log.capacity() > 0
    }

    /// Routes one typed event into every enabled sink: the legacy trace
    /// receives the rendered `Display` form (so `Trace` is a pure view
    /// over the typed stream), the typed log the record itself with its
    /// causal parent. Returns the id the typed log assigned, if any.
    pub(crate) fn emit(&mut self, cause: Option<EventId>, rec: EventRecord) -> Option<EventId> {
        if self.trace.capacity() > 0 {
            self.trace.log(self.now, rec.to_string());
        }
        if self.obs.log.capacity() > 0 {
            return self.obs.record_event(self.now, cause, rec);
        }
        None
    }

    /// Records an externally produced event (fault-plan installation,
    /// experiment annotations) at the current simulated time, as a causal
    /// root. Returns its id so subsequently scheduled work can be
    /// attributed to it (see [`Engine::schedule_link_change_caused`]).
    pub fn note(&mut self, rec: EventRecord) -> Option<EventId> {
        self.emit(None, rec)
    }

    /// [`Engine::note`] with an explicit causal parent — for externally
    /// produced events that belong to an existing span (e.g. per-AD
    /// misbehavior injections under their fault plan, monitor alarms
    /// under the injection they detected).
    pub fn note_caused(&mut self, cause: Option<EventId>, rec: EventRecord) -> Option<EventId> {
        self.emit(cause, rec)
    }

    /// Marks the start of a named measurement phase in both the stats
    /// (see [`Stats::begin_phase`]) and the event stream.
    pub fn begin_phase(&mut self, name: &'static str) {
        self.stats.begin_phase(name);
        self.emit(None, EventRecord::PhaseBegin { name });
    }

    fn dispatch<F>(&mut self, ad: AdId, cause: Option<EventId>, f: F)
    where
        F: FnOnce(&P, &mut P::Router, &mut Ctx<'_, P::Msg>),
    {
        // Hand the reusable buffers to the context; they come back drained
        // below, so steady-state dispatch performs no allocation. The
        // observer gate is evaluated once per dispatch, not per message.
        let observing = self.observing();
        let mut ctx = Ctx {
            me: ad,
            now: self.now,
            topo: &self.topo,
            stats: &mut self.stats,
            outbox: std::mem::take(&mut self.scratch.outbox),
            timers: std::mem::take(&mut self.scratch.timers),
            events: std::mem::take(&mut self.scratch.events),
            anchor: None,
            observing,
        };
        f(&self.protocol, &mut self.routers[ad.index()], &mut ctx);
        let Ctx {
            mut outbox,
            mut timers,
            mut events,
            ..
        } = ctx;
        // Protocol-emitted records are children of the dispatched event;
        // their assigned ids let the sends and timers that followed each
        // one attach to the precise reaction that produced them.
        let mut emitted = std::mem::take(&mut self.scratch.emitted);
        for rec in events.drain(..) {
            let id = self.emit(cause, rec);
            emitted.push(id);
        }
        let resolve = |anchor: Option<usize>| -> Option<EventId> {
            anchor
                .and_then(|i| emitted.get(i).copied().flatten())
                .or(cause)
        };
        for (to, link, msg, anchor) in outbox.drain(..) {
            let msg_cause = resolve(anchor);
            let delay = self.topo.link(link).delay_us;
            self.stats.msgs_sent += 1;
            self.stats.per_ad_msgs[ad.index()] += 1;
            let bytes = self.protocol.msg_size(&msg) as u64;
            self.stats.bytes_sent += bytes;
            let send_id = if observing {
                self.emit(
                    msg_cause,
                    EventRecord::MsgSend {
                        from: ad,
                        to,
                        link,
                        bytes,
                    },
                )
            } else {
                None
            };
            // The per-hop chain: whatever happens to this message in
            // flight (channel fault, delivery) descends from its send.
            let hop_cause = send_id.or(msg_cause);
            let mut delay = delay;
            let mut dup_at = None;
            // The ordinal is the sender's cumulative send count (the
            // increment above), so the draw key is identical whether
            // this dispatch runs here or inside a parallel lane.
            let verdict = match &self.faults {
                Some(cfg) if cfg.active_at(self.now) => {
                    Some(cfg.judge(ad, self.stats.per_ad_msgs[ad.index()], delay))
                }
                _ => None,
            };
            if let Some(verdict) = verdict {
                match verdict {
                    ChannelVerdict::Lost => {
                        self.stats.msgs_lost += 1;
                        self.emit(hop_cause, EventRecord::ChanLoss { from: ad, to, link });
                        continue;
                    }
                    ChannelVerdict::Corrupted => {
                        self.stats.msgs_corrupted += 1;
                        self.emit(hop_cause, EventRecord::ChanCorrupt { from: ad, to, link });
                        continue;
                    }
                    ChannelVerdict::Pass {
                        delay_us,
                        duplicate_at_us,
                        reordered,
                    } => {
                        if reordered {
                            self.stats.msgs_reordered += 1;
                            self.emit(hop_cause, EventRecord::ChanReorder { from: ad, to, link });
                        }
                        if let Some(d) = duplicate_at_us {
                            self.stats.msgs_duplicated += 1;
                            self.emit(hop_cause, EventRecord::ChanDup { from: ad, to, link });
                            dup_at = Some(self.now.plus_us(d));
                        }
                        delay = delay_us;
                    }
                }
            }
            if let Some(at) = dup_at {
                self.push(
                    at,
                    hop_cause,
                    EventKind::Deliver {
                        to,
                        from: ad,
                        link,
                        msg: msg.clone(),
                    },
                );
            }
            let at = self.now.plus_us(delay);
            self.push(
                at,
                hop_cause,
                EventKind::Deliver {
                    to,
                    from: ad,
                    link,
                    msg,
                },
            );
        }
        let incarnation = self.incarnations[ad.index()];
        for (delay_us, token, anchor) in timers.drain(..) {
            let at = self.now.plus_us(delay_us);
            self.push(
                at,
                resolve(anchor),
                EventKind::Timer {
                    ad,
                    token,
                    incarnation,
                },
            );
        }
        emitted.clear();
        self.scratch.outbox = outbox;
        self.scratch.timers = timers;
        self.scratch.events = events;
        self.scratch.emitted = emitted;
    }

    /// Runs until the event queue is empty (quiescence) and returns the
    /// time of the last control activity — the convergence time.
    ///
    /// # Panics
    /// Panics if more than `max_events` events are processed, which
    /// indicates a protocol that does not converge (e.g. unbounded
    /// count-to-infinity).
    pub fn run_to_quiescence(&mut self) -> SimTime {
        self.prof.enter("engine.quiesce");
        let snap = self.prof_snapshot();
        let start_events = self.stats.events;
        while self.step() {
            if self.stats.events - start_events > self.max_events {
                panic!(
                    "protocol did not quiesce within {} events (time {})",
                    self.max_events, self.now
                );
            }
        }
        self.prof_attribute(snap);
        self.prof.exit("engine.quiesce");
        self.stats.last_activity
    }

    /// Runs until simulated time exceeds `until` or the queue empties.
    pub fn run_until(&mut self, until: SimTime) {
        self.prof.enter("engine.run_until");
        let snap = self.prof_snapshot();
        let start_events = self.stats.events;
        while let Some(t) = self.next_event_time() {
            if t > until {
                break;
            }
            self.step();
            assert!(
                self.stats.events - start_events <= self.max_events,
                "event budget exceeded at {}",
                self.now
            );
        }
        if self.now < until {
            self.now = until;
        }
        self.prof_attribute(snap);
        self.prof.exit("engine.run_until");
    }

    /// Consumes the engine, returning its parts (topology, routers,
    /// stats). Experiments use this to inspect final state.
    pub fn into_parts(self) -> (Topology, Vec<P::Router>, Stats) {
        (self.topo, self.routers, self.stats)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use adroute_topology::generate::line;

    /// A toy flooding protocol: AD0 floods a wave token; every router
    /// forwards the first copy it sees to all neighbors. Shared with the
    /// parallel-execution tests.
    pub(crate) struct Wave;
    #[derive(Default)]
    pub(crate) struct WaveRouter {
        seen: bool,
        heard_from: Vec<AdId>,
        timer_fired: bool,
        link_events: u32,
    }

    impl Protocol for Wave {
        type Router = WaveRouter;
        type Msg = u32;

        fn make_router(&self, _t: &Topology, _ad: AdId) -> WaveRouter {
            WaveRouter::default()
        }

        fn on_start(&self, r: &mut WaveRouter, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == AdId(0) {
                r.seen = true;
                for (nbr, _) in ctx.neighbors() {
                    ctx.send(nbr, 1);
                }
                ctx.set_timer(10, 99);
            }
        }

        fn on_message(
            &self,
            r: &mut WaveRouter,
            ctx: &mut Ctx<'_, u32>,
            from: AdId,
            _link: LinkId,
            msg: u32,
        ) {
            r.heard_from.push(from);
            ctx.count("wave_rx", 1);
            if !r.seen {
                r.seen = true;
                for (nbr, _) in ctx.neighbors() {
                    if nbr != from {
                        ctx.send(nbr, msg + 1);
                    }
                }
            }
        }

        fn on_timer(&self, r: &mut WaveRouter, _ctx: &mut Ctx<'_, u32>, token: u64) {
            assert_eq!(token, 99);
            r.timer_fired = true;
        }

        fn on_link_event(
            &self,
            r: &mut WaveRouter,
            _ctx: &mut Ctx<'_, u32>,
            _link: LinkId,
            _nbr: AdId,
            _up: bool,
        ) {
            r.link_events += 1;
        }

        fn msg_size(&self, _m: &u32) -> usize {
            4
        }
    }

    #[test]
    fn wave_reaches_everyone_and_quiesces() {
        let topo = line(5);
        let mut e = Engine::new(topo, Wave);
        let t = e.run_to_quiescence();
        assert!(t > SimTime::ZERO);
        for ad in e.topo().ad_ids() {
            assert!(e.router(ad).seen, "{ad} never saw the wave");
        }
        assert!(e.router(AdId(0)).timer_fired);
        // 4 links, each crossed exactly once forward = 4 messages.
        assert_eq!(e.stats.msgs_sent, 4);
        assert_eq!(e.stats.bytes_sent, 16);
        assert_eq!(e.stats.counter("wave_rx"), 4);
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn link_failure_blocks_and_notifies() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        // Fail 1-2 before the wave crosses it: delays are 1000us per hop,
        // so fail at t=500 (wave 0->1 arrives at 1000, 1->2 would arrive
        // at 2000).
        e.schedule_link_change(LinkId(1), false, SimTime(500));
        e.run_to_quiescence();
        assert!(e.router(AdId(1)).seen);
        assert!(!e.router(AdId(2)).seen, "wave crossed a failed link");
        assert_eq!(e.router(AdId(1)).link_events, 1);
        assert_eq!(e.router(AdId(2)).link_events, 1);
        assert_eq!(e.router(AdId(0)).link_events, 0);
    }

    #[test]
    fn message_in_flight_on_failed_link_is_lost() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        // The 1->2 message departs at t=1000; kill the link at t=1500
        // while it is in flight.
        e.schedule_link_change(LinkId(1), false, SimTime(1500));
        e.run_to_quiescence();
        assert!(!e.router(AdId(2)).seen);
    }

    #[test]
    fn run_until_stops_midway() {
        let topo = line(5);
        let mut e = Engine::new(topo, Wave);
        e.run_until(SimTime(1500)); // only the first hop (t=1000) delivered
        assert!(e.router(AdId(1)).seen);
        assert!(!e.router(AdId(2)).seen);
        assert_eq!(e.now(), SimTime(1500));
        e.run_to_quiescence();
        assert!(e.router(AdId(4)).seen);
    }

    #[test]
    fn wakeup_delivers_token() {
        let topo = line(2);
        let mut e = Engine::new(topo, Wave);
        e.run_to_quiescence();
        e.schedule_wakeup(AdId(1), SimTime(10_000), 99);
        e.run_to_quiescence();
        assert!(e.router(AdId(1)).timer_fired);
    }

    #[test]
    fn ctx_exposes_link_attributes() {
        /// Probe protocol: records what Ctx reports at start time.
        struct Probe;
        #[derive(Default)]
        struct ProbeRouter {
            neighbor_up: Option<bool>,
            metric: Option<u32>,
            delay: Option<u64>,
            kind: Option<adroute_topology::LinkKind>,
        }
        impl Protocol for Probe {
            type Router = ProbeRouter;
            type Msg = ();
            fn make_router(&self, _t: &Topology, _a: AdId) -> ProbeRouter {
                ProbeRouter::default()
            }
            fn on_start(&self, r: &mut ProbeRouter, ctx: &mut Ctx<'_, ()>) {
                if let Some((nbr, link)) = ctx.neighbors().first().copied() {
                    r.neighbor_up = Some(ctx.neighbor_up(nbr));
                    r.metric = Some(ctx.link_metric(link));
                    r.delay = Some(ctx.link_delay(link));
                    r.kind = Some(ctx.link_kind(link));
                }
                // Non-neighbors are reported down and sends to them drop.
                assert!(!ctx.neighbor_up(AdId(999)));
                ctx.send(AdId(999), ());
            }
            fn on_message(
                &self,
                _r: &mut ProbeRouter,
                _c: &mut Ctx<'_, ()>,
                _f: AdId,
                _l: LinkId,
                _m: (),
            ) {
                panic!("no message should ever be delivered");
            }
            fn msg_size(&self, _m: &()) -> usize {
                0
            }
        }
        let mut topo = line(2);
        topo.set_metric(LinkId(0), 7);
        topo.set_delay(LinkId(0), 2500);
        let mut e = Engine::new(topo, Probe);
        e.run_to_quiescence();
        let r = e.router(AdId(0));
        assert_eq!(r.neighbor_up, Some(true));
        assert_eq!(r.metric, Some(7));
        assert_eq!(r.delay, Some(2500));
        assert_eq!(r.kind, Some(adroute_topology::LinkKind::Lateral));
        assert_eq!(e.stats.msgs_sent, 0, "send to non-neighbor must drop");
    }

    #[test]
    fn tracing_captures_golden_event_log() {
        let mk = || {
            let mut e = Engine::new(line(3), Wave);
            e.enable_trace(64);
            e.schedule_link_change(LinkId(1), false, SimTime(5000));
            e.run_to_quiescence();
            e
        };
        let a = mk();
        let b = mk();
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace.render(), b.trace.render(), "trace must be golden");
        assert!(a.trace.first_divergence(&b.trace).is_none());
        let text = a.trace.render();
        assert!(text.contains("start AD0"), "{text}");
        assert!(text.contains("deliver AD0->AD1 via L0"), "{text}");
        assert!(text.contains("link L1 down"), "{text}");
        // Disabled by default: a fresh engine records nothing.
        let mut plain = Engine::new(line(3), Wave);
        plain.run_to_quiescence();
        assert!(plain.trace.is_empty());
        assert!(plain.obs.log.is_empty());
    }

    #[test]
    fn trace_is_a_rendered_view_of_the_typed_stream() {
        let mk = || {
            let mut e = Engine::new(line(4), Wave);
            e.enable_trace(1024);
            e.enable_obs(1024);
            e.schedule_link_change(LinkId(2), false, SimTime(1500));
            e.schedule_router_change(AdId(1), false, SimTime(4000));
            e.schedule_router_change(AdId(1), true, SimTime(5000));
            e.run_to_quiescence();
            e
        };
        let e = mk();
        assert!(!e.obs.log.is_empty());
        assert_eq!(
            e.trace.render(),
            e.obs.log.render(),
            "every trace line must be the Display form of a typed record"
        );
        // The typed export is a golden artifact too.
        let f = mk();
        assert_eq!(e.obs.log.export_jsonl(), f.obs.log.export_jsonl());
        assert!(e.obs.log.first_divergence(&f.obs.log).is_identical());
    }

    #[test]
    fn typed_log_records_sends_and_drops() {
        let mut e = Engine::new(line(3), Wave);
        e.enable_obs(1024);
        e.run_to_quiescence();
        let sends = e
            .obs
            .log
            .iter()
            .filter(|ev| matches!(ev.rec, EventRecord::MsgSend { .. }))
            .count() as u64;
        let delivers = e
            .obs
            .log
            .iter()
            .filter(|ev| matches!(ev.rec, EventRecord::MsgDeliver { .. }))
            .count() as u64;
        assert_eq!(sends, e.stats.msgs_sent);
        assert_eq!(delivers, e.stats.msgs_delivered);
        let jsonl = e.obs.log.export_jsonl();
        assert!(jsonl.contains("\"kind\":\"send\""), "{jsonl}");
    }

    #[test]
    fn causal_chain_threads_send_to_deliver() {
        let mut e = Engine::new(line(3), Wave);
        e.enable_obs(1024);
        e.run_to_quiescence();
        let by_id: std::collections::BTreeMap<_, _> =
            e.obs.log.iter().map(|ev| (ev.id, ev)).collect();
        // Causes are always earlier ids: the log is a DAG by construction.
        for ev in e.obs.log.iter() {
            if let Some(c) = ev.cause {
                assert!(c < ev.id, "{:?} caused by later {c:?}", ev.id);
                assert!(by_id.contains_key(&c), "dangling cause {c:?}");
            }
        }
        // Every delivery descends from the send that put it in flight,
        // and that send from the start/deliver event it reacted to.
        let mut chained = 0;
        for ev in e.obs.log.iter() {
            if let EventRecord::MsgDeliver { .. } = ev.rec {
                let send = by_id[&ev.cause.expect("deliver has a cause")];
                assert!(matches!(send.rec, EventRecord::MsgSend { .. }));
                let origin = by_id[&send.cause.expect("send has a cause")];
                assert!(matches!(
                    origin.rec,
                    EventRecord::Start { .. } | EventRecord::MsgDeliver { .. }
                ));
                chained += 1;
            }
        }
        assert_eq!(chained as u64, e.stats.msgs_delivered);
        // Timer fires trace back to the start event that armed them.
        let fire = e
            .obs
            .log
            .iter()
            .find(|ev| matches!(ev.rec, EventRecord::TimerFire { .. }))
            .expect("wave arms a timer");
        assert!(matches!(
            by_id[&fire.cause.unwrap()].rec,
            EventRecord::Start { .. }
        ));
    }

    #[test]
    fn engine_phase_scopes_split_message_totals() {
        let mut e = Engine::new(line(4), Wave);
        e.begin_phase("converge");
        e.run_to_quiescence();
        let sent_converge = e.stats.msgs_sent;
        assert!(sent_converge > 0);
        // Crash+restart the wave origin: the failure-response phase
        // re-runs the wave from AD0.
        e.begin_phase("failure-response");
        let t = e.now();
        e.schedule_router_change(AdId(0), false, t.plus_us(10));
        e.schedule_router_change(AdId(0), true, t.plus_us(20));
        e.run_to_quiescence();
        let c = e.stats.phase_delta("converge").unwrap();
        let f = e.stats.phase_delta("failure-response").unwrap();
        assert_eq!(c.msgs_sent, sent_converge);
        assert_eq!(c.router_crashes, 0);
        assert_eq!(f.router_crashes, 1);
        assert_eq!(f.router_restarts, 1);
        assert_eq!(c.msgs_sent + f.msgs_sent, e.stats.msgs_sent);
        // Both phases end quiescent, so each conserves messages.
        assert!(c.conserves_messages());
        assert!(f.conserves_messages());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = Engine::new(line(6), Wave);
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn send_drops_are_counted() {
        struct Dropper;
        impl Protocol for Dropper {
            type Router = ();
            type Msg = ();
            fn make_router(&self, _t: &Topology, _a: AdId) {}
            fn on_start(&self, _r: &mut (), ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == AdId(0) {
                    ctx.send(AdId(999), ()); // non-neighbor
                    ctx.send(AdId(2), ()); // not adjacent in a line of 3
                    ctx.send(AdId(1), ()); // fine
                }
            }
            fn on_message(&self, _r: &mut (), _c: &mut Ctx<'_, ()>, _f: AdId, _l: LinkId, _m: ()) {}
            fn msg_size(&self, _m: &()) -> usize {
                0
            }
        }
        let mut e = Engine::new(line(3), Dropper);
        e.run_to_quiescence();
        assert_eq!(e.stats.msgs_dropped, 2);
        assert_eq!(e.stats.msgs_sent, 1);

        // Sends over a failed link drop at the source too.
        let mut topo = line(3);
        topo.set_link_up(LinkId(0), false);
        let mut e = Engine::new(topo, Dropper);
        e.run_to_quiescence();
        assert_eq!(e.stats.msgs_dropped, 3);
        assert_eq!(e.stats.msgs_sent, 0);
    }

    #[test]
    fn crash_loses_state_and_links_share_fate() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        // Crash AD1 before the wave reaches it (0->1 arrives at t=1000).
        e.schedule_router_change(AdId(1), false, SimTime(500));
        e.run_to_quiescence();
        assert!(!e.router_is_up(AdId(1)));
        assert!(
            !e.router(AdId(1)).seen,
            "crashed router processed a message"
        );
        assert!(!e.router(AdId(2)).seen, "wave crossed a dead router");
        assert_eq!(e.stats.router_crashes, 1);
        assert_eq!(e.stats.msgs_lost, 1, "the in-flight 0->1 message is lost");
        // Fate sharing: both adjacent links went down, neighbors notified.
        assert!(!e.topo().link(LinkId(0)).up);
        assert!(!e.topo().link(LinkId(1)).up);
        assert_eq!(e.router(AdId(0)).link_events, 1);
        assert_eq!(e.router(AdId(2)).link_events, 1);
    }

    #[test]
    fn restart_rebuilds_router_and_restores_links() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        e.run_to_quiescence();
        assert!(e.router(AdId(1)).seen);
        e.schedule_router_change(AdId(1), false, e.now().plus_us(100));
        e.schedule_router_change(AdId(1), true, e.now().plus_us(200));
        e.run_to_quiescence();
        assert!(e.router_is_up(AdId(1)));
        assert_eq!(e.stats.router_crashes, 1);
        assert_eq!(e.stats.router_restarts, 1);
        // make_router rebuilt the state: the pre-crash wave marker is gone.
        assert!(!e.router(AdId(1)).seen, "soft state survived the crash");
        // Both links are operational again and both ends saw down+up.
        assert!(e.topo().link(LinkId(0)).up);
        assert!(e.topo().link(LinkId(1)).up);
        assert_eq!(e.router(AdId(0)).link_events, 2);
        assert_eq!(e.router(AdId(2)).link_events, 2);
        assert_eq!(
            e.router(AdId(1)).link_events,
            2,
            "restarted side gets link-up events"
        );
    }

    #[test]
    fn crash_respects_scheduled_link_state_on_restart() {
        // A link that fails *while its endpoint is down* must not come
        // back when the router restarts.
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        e.run_to_quiescence();
        let t = e.now();
        e.schedule_router_change(AdId(1), false, t.plus_us(100));
        e.schedule_link_change(LinkId(0), false, t.plus_us(200)); // while AD1 down
        e.schedule_router_change(AdId(1), true, t.plus_us(300));
        e.run_to_quiescence();
        assert!(
            !e.topo().link(LinkId(0)).up,
            "scheduled failure survived the restart"
        );
        assert!(e.topo().link(LinkId(1)).up);
    }

    #[test]
    fn pre_crash_timers_die_with_their_incarnation() {
        let topo = line(2);
        let mut e = Engine::new(topo, Wave);
        e.enable_trace(64);
        // AD0's on_start arms a timer for t=10; crash at 5, restart at 7.
        // The old timer (incarnation 0) fires at 10 into incarnation 1 and
        // must be discarded; the restart re-runs on_start, arming a fresh
        // timer that does fire.
        e.schedule_router_change(AdId(0), false, SimTime(5));
        e.schedule_router_change(AdId(0), true, SimTime(7));
        e.run_to_quiescence();
        assert!(
            e.router(AdId(0)).timer_fired,
            "fresh incarnation timer fired"
        );
        let text = e.trace.render();
        assert!(text.contains("stale-timer AD0 token=99"), "{text}");
        assert!(text.contains("crash AD0"), "{text}");
        assert!(text.contains("restart AD0"), "{text}");
    }

    #[test]
    fn double_crash_and_double_restart_are_noops() {
        let topo = line(2);
        let mut e = Engine::new(topo, Wave);
        e.run_to_quiescence();
        let t = e.now();
        e.schedule_router_change(AdId(1), false, t.plus_us(10));
        e.schedule_router_change(AdId(1), false, t.plus_us(20));
        e.schedule_router_change(AdId(1), true, t.plus_us(30));
        e.schedule_router_change(AdId(1), true, t.plus_us(40));
        e.run_to_quiescence();
        assert_eq!(e.stats.router_crashes, 1);
        assert_eq!(e.stats.router_restarts, 1);
        assert!(e.router_is_up(AdId(1)));
    }

    #[test]
    fn channel_loss_eats_messages_deterministically() {
        use crate::faults::ChannelFaults;
        let run = || {
            let mut e = Engine::new(line(5), Wave);
            e.set_channel_faults(Some(ChannelFaults {
                loss: 1.0,
                seed: 1,
                ..ChannelFaults::default()
            }));
            e.run_to_quiescence();
            (e.stats.msgs_sent, e.stats.msgs_lost, e.stats.msgs_delivered)
        };
        let (sent, lost, delivered) = run();
        assert_eq!(sent, 1, "only AD0's first send happens; it is lost");
        assert_eq!(lost, 1);
        assert_eq!(delivered, 0);
        assert_eq!(
            run(),
            (sent, lost, delivered),
            "fault draws are deterministic"
        );
    }

    #[test]
    fn duplication_and_reordering_are_counted_and_survivable() {
        use crate::faults::ChannelFaults;
        let mut e = Engine::new(line(3), Wave);
        e.set_channel_faults(Some(ChannelFaults {
            duplicate: 1.0,
            reorder: 1.0,
            jitter_us: 100,
            seed: 3,
            ..ChannelFaults::default()
        }));
        e.run_to_quiescence();
        for ad in e.topo().ad_ids() {
            assert!(e.router(ad).seen, "{ad} missed the wave");
        }
        assert_eq!(e.stats.msgs_sent, 2);
        assert_eq!(e.stats.msgs_duplicated, 2);
        assert_eq!(e.stats.msgs_reordered, 2);
        assert_eq!(e.stats.msgs_delivered, 4, "each message arrives twice");
        // Duplicate deliveries reach on_message: AD1 heard 0 twice + 2's
        // copies never happen (2 only echoes back nothing in a line).
        assert!(e.router(AdId(1)).heard_from.len() >= 2);
    }

    #[test]
    fn corruption_drops_are_separated_from_loss() {
        use crate::faults::ChannelFaults;
        let mut e = Engine::new(line(2), Wave);
        e.set_channel_faults(Some(ChannelFaults {
            corrupt: 1.0,
            seed: 9,
            ..ChannelFaults::default()
        }));
        e.run_to_quiescence();
        assert_eq!(e.stats.msgs_corrupted, 1);
        assert_eq!(e.stats.msgs_lost, 0);
        assert!(!e.router(AdId(1)).seen);
    }

    #[test]
    fn channel_faults_expire_at_until() {
        use crate::faults::ChannelFaults;
        let mut e = Engine::new(line(2), Wave);
        e.set_channel_faults(Some(ChannelFaults {
            loss: 1.0,
            seed: 1,
            until: Some(SimTime::ZERO),
            ..ChannelFaults::default()
        }));
        // The start event fires at t=0, so its send is still faulted; the
        // wakeup-driven resend below happens after expiry and gets through.
        e.run_to_quiescence();
        assert!(!e.router(AdId(1)).seen);
        assert_eq!(e.stats.msgs_lost, 1);
        e.schedule_wakeup(AdId(0), e.now().plus_us(10), 99);
        e.run_to_quiescence();
        // Timer handler doesn't resend in Wave; drive a fresh start event
        // via a restart instead: crash+restart AD0 after expiry.
        let t = e.now();
        e.schedule_router_change(AdId(0), false, t.plus_us(10));
        e.schedule_router_change(AdId(0), true, t.plus_us(20));
        e.run_to_quiescence();
        assert!(
            e.router(AdId(1)).seen,
            "post-expiry resend must get through"
        );
        assert_eq!(e.stats.msgs_lost, 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn past_scheduling_rejected() {
        let mut e = Engine::new(line(3), Wave);
        e.run_to_quiescence();
        e.schedule_link_change(LinkId(0), false, SimTime::ZERO);
    }

    #[test]
    fn into_parts_returns_state() {
        let mut e = Engine::new(line(3), Wave);
        e.run_to_quiescence();
        let (topo, routers, stats) = e.into_parts();
        assert_eq!(topo.num_ads(), 3);
        assert_eq!(routers.len(), 3);
        assert!(stats.events > 0);
    }
}
