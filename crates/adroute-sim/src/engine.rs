//! The simulation engine: routers, message delivery, timers, link events.

use std::collections::BinaryHeap;

use adroute_topology::{AdId, LinkId, Topology};

use crate::event::{Event, EventKind, SimTime};
use crate::stats::Stats;
use crate::trace::Trace;

/// A routing protocol that can be run by the [`Engine`].
///
/// The protocol value itself holds *configuration* shared by all routers
/// (policies, tuning knobs); per-AD state lives in `Router`. Handlers
/// receive a [`Ctx`] through which they send messages, set one-shot
/// timers, and record work counters.
pub trait Protocol: Sized {
    /// Per-AD router state.
    type Router;
    /// Wire message type exchanged between neighbors.
    type Msg: Clone;

    /// Creates the initial router state for `ad`.
    fn make_router(&self, topo: &Topology, ad: AdId) -> Self::Router;

    /// Called once per router at simulation start (time zero).
    fn on_start(&self, router: &mut Self::Router, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message from neighbor `from` arrives over `link`.
    fn on_message(
        &self,
        router: &mut Self::Router,
        ctx: &mut Ctx<'_, Self::Msg>,
        from: AdId,
        link: LinkId,
        msg: Self::Msg,
    );

    /// Called when a one-shot timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&self, router: &mut Self::Router, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (router, ctx, token);
    }

    /// Called when an adjacent link changes state. The topology has
    /// already been updated when this fires.
    fn on_link_event(
        &self,
        router: &mut Self::Router,
        ctx: &mut Ctx<'_, Self::Msg>,
        link: LinkId,
        neighbor: AdId,
        up: bool,
    ) {
        let _ = (router, ctx, link, neighbor, up);
    }

    /// Encoded size in bytes of a message, for overhead accounting.
    fn msg_size(&self, msg: &Self::Msg) -> usize;
}

/// Handler-side context: everything a router may do during an event.
pub struct Ctx<'a, M> {
    me: AdId,
    now: SimTime,
    topo: &'a Topology,
    stats: &'a mut Stats,
    /// Outgoing messages `(to, link, msg)` buffered until the handler
    /// returns.
    outbox: Vec<(AdId, LinkId, M)>,
    /// Timers `(delay_us, token)` buffered until the handler returns.
    timers: Vec<(u64, u64)>,
}

impl<'a, M> Ctx<'a, M> {
    /// The AD this router belongs to.
    #[inline]
    pub fn me(&self) -> AdId {
        self.me
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Operational neighbors of this AD, with the connecting link.
    pub fn neighbors(&self) -> Vec<(AdId, LinkId)> {
        self.topo.neighbors(self.me).collect()
    }

    /// The routing metric of a link (for computing advertised distances).
    pub fn link_metric(&self, link: LinkId) -> u32 {
        self.topo.link(link).metric
    }

    /// The propagation delay of a link in microseconds.
    pub fn link_delay(&self, link: LinkId) -> u64 {
        self.topo.link(link).delay_us
    }

    /// The hierarchy classification of a link (hierarchical / lateral /
    /// bypass). Tree-restricted protocols (EGP-style) filter on this.
    pub fn link_kind(&self, link: LinkId) -> adroute_topology::LinkKind {
        self.topo.link(link).kind
    }

    /// Whether the link to `neighbor` is currently operational.
    pub fn neighbor_up(&self, neighbor: AdId) -> bool {
        self.topo
            .link_between(self.me, neighbor)
            .map(|l| self.topo.link(l).up)
            .unwrap_or(false)
    }

    /// Sends `msg` to a directly connected neighbor over the (operational)
    /// link between them. Messages to non-neighbors or over failed links
    /// are silently dropped, mirroring a loss on a dying link.
    pub fn send(&mut self, to: AdId, msg: M) {
        if let Some(link) = self.topo.link_between(self.me, to) {
            if self.topo.link(link).up {
                self.outbox.push((to, link, msg));
            }
        }
    }

    /// Sets a one-shot timer `delay_us` microseconds from now. The token
    /// is returned to [`Protocol::on_timer`].
    pub fn set_timer(&mut self, delay_us: u64, token: u64) {
        self.timers.push((delay_us, token));
    }

    /// Adds `n` to a named work counter (e.g. `"dijkstra"`).
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.stats.count(name, n);
    }
}

/// The discrete-event engine running one [`Protocol`] over one
/// [`Topology`].
pub struct Engine<P: Protocol> {
    protocol: P,
    topo: Topology,
    routers: Vec<P::Router>,
    queue: BinaryHeap<Event<P::Msg>>,
    seq: u64,
    now: SimTime,
    /// Safety valve: maximum events processed per `run_*` call family.
    pub max_events: u64,
    /// Accumulated measurement counters.
    pub stats: Stats,
    /// Optional event trace (capacity 0 = disabled). Because the engine
    /// is deterministic, the rendered trace is a golden artifact: equal
    /// configurations produce byte-identical traces, and
    /// [`Trace::first_divergence`] pinpoints where two runs split.
    pub trace: Trace,
}

impl<P: Protocol> Engine<P> {
    /// Builds routers for every AD and schedules their start events at
    /// time zero (in AD order).
    pub fn new(topo: Topology, protocol: P) -> Engine<P> {
        let routers = topo
            .ad_ids()
            .map(|ad| protocol.make_router(&topo, ad))
            .collect::<Vec<_>>();
        let stats = Stats::new(topo.num_ads());
        let mut e = Engine {
            protocol,
            topo,
            routers,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            max_events: 50_000_000,
            stats,
            trace: Trace::new(0),
        };
        for ad in e.topo.ad_ids() {
            e.push(SimTime::ZERO, EventKind::Start { ad });
        }
        e
    }

    fn push(&mut self, time: SimTime, kind: EventKind<P::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// The topology (current link states included).
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Router state of `ad`.
    pub fn router(&self, ad: AdId) -> &P::Router {
        &self.routers[ad.index()]
    }

    /// Mutable router state of `ad`, for experiment-driven changes
    /// (e.g. editing a policy before poking the router).
    pub fn router_mut(&mut self, ad: AdId) -> &mut P::Router {
        &mut self.routers[ad.index()]
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a link state change at an absolute time. The topology
    /// flips when the event fires; both endpoint routers are then
    /// notified.
    pub fn schedule_link_change(&mut self, link: LinkId, up: bool, at: SimTime) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::LinkEvent { link, up });
    }

    /// Schedules a timer wake-up at router `ad` at an absolute time.
    /// Experiments use this to trigger protocol-defined reactions (e.g.
    /// after directly mutating a router's policy).
    pub fn schedule_wakeup(&mut self, ad: AdId, at: SimTime, token: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::Timer { ad, token });
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.stats.events += 1;
        let tracing = self.trace.capacity() > 0;
        match ev.kind {
            EventKind::Start { ad } => {
                if tracing {
                    self.trace.log(self.now, format!("start {ad}"));
                }
                self.dispatch(ad, |p, r, ctx| p.on_start(r, ctx));
            }
            EventKind::Deliver { to, from, link, msg } => {
                // A message in flight when its link failed is lost.
                if self.topo.link(link).up {
                    self.stats.msgs_delivered += 1;
                    self.stats.last_activity = self.now;
                    if tracing {
                        self.trace.log(self.now, format!("deliver {from}->{to} via {link}"));
                    }
                    self.dispatch(to, |p, r, ctx| p.on_message(r, ctx, from, link, msg));
                } else if tracing {
                    self.trace.log(self.now, format!("lost {from}->{to} via {link}"));
                }
            }
            EventKind::Timer { ad, token } => {
                if tracing {
                    self.trace.log(self.now, format!("timer {ad} token={token}"));
                }
                self.dispatch(ad, |p, r, ctx| p.on_timer(r, ctx, token));
            }
            EventKind::LinkEvent { link, up } => {
                self.topo.set_link_up(link, up);
                self.stats.last_activity = self.now;
                if tracing {
                    let state = if up { "up" } else { "down" };
                    self.trace.log(self.now, format!("link {link} {state}"));
                }
                let l = self.topo.link(link);
                let (a, b) = (l.a, l.b);
                self.dispatch(a, |p, r, ctx| p.on_link_event(r, ctx, link, b, up));
                self.dispatch(b, |p, r, ctx| p.on_link_event(r, ctx, link, a, up));
            }
        }
        true
    }

    /// Enables event tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
    }

    fn dispatch<F>(&mut self, ad: AdId, f: F)
    where
        F: FnOnce(&P, &mut P::Router, &mut Ctx<'_, P::Msg>),
    {
        let mut ctx = Ctx {
            me: ad,
            now: self.now,
            topo: &self.topo,
            stats: &mut self.stats,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        f(&self.protocol, &mut self.routers[ad.index()], &mut ctx);
        let Ctx { outbox, timers, .. } = ctx;
        for (to, link, msg) in outbox {
            let delay = self.topo.link(link).delay_us;
            self.stats.msgs_sent += 1;
            self.stats.per_ad_msgs[ad.index()] += 1;
            self.stats.bytes_sent += self.protocol.msg_size(&msg) as u64;
            let at = self.now.plus_us(delay);
            self.push(at, EventKind::Deliver { to, from: ad, link, msg });
        }
        for (delay_us, token) in timers {
            let at = self.now.plus_us(delay_us);
            self.push(at, EventKind::Timer { ad, token });
        }
    }

    /// Runs until the event queue is empty (quiescence) and returns the
    /// time of the last control activity — the convergence time.
    ///
    /// # Panics
    /// Panics if more than `max_events` events are processed, which
    /// indicates a protocol that does not converge (e.g. unbounded
    /// count-to-infinity).
    pub fn run_to_quiescence(&mut self) -> SimTime {
        let start_events = self.stats.events;
        while self.step() {
            if self.stats.events - start_events > self.max_events {
                panic!(
                    "protocol did not quiesce within {} events (time {})",
                    self.max_events, self.now
                );
            }
        }
        self.stats.last_activity
    }

    /// Runs until simulated time exceeds `until` or the queue empties.
    pub fn run_until(&mut self, until: SimTime) {
        let start_events = self.stats.events;
        while let Some(ev) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            self.step();
            assert!(
                self.stats.events - start_events <= self.max_events,
                "event budget exceeded at {}",
                self.now
            );
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Consumes the engine, returning its parts (topology, routers,
    /// stats). Experiments use this to inspect final state.
    pub fn into_parts(self) -> (Topology, Vec<P::Router>, Stats) {
        (self.topo, self.routers, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::line;

    /// A toy flooding protocol: AD0 floods a wave token; every router
    /// forwards the first copy it sees to all neighbors.
    struct Wave;
    #[derive(Default)]
    struct WaveRouter {
        seen: bool,
        heard_from: Vec<AdId>,
        timer_fired: bool,
        link_events: u32,
    }

    impl Protocol for Wave {
        type Router = WaveRouter;
        type Msg = u32;

        fn make_router(&self, _t: &Topology, _ad: AdId) -> WaveRouter {
            WaveRouter::default()
        }

        fn on_start(&self, r: &mut WaveRouter, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == AdId(0) {
                r.seen = true;
                for (nbr, _) in ctx.neighbors() {
                    ctx.send(nbr, 1);
                }
                ctx.set_timer(10, 99);
            }
        }

        fn on_message(
            &self,
            r: &mut WaveRouter,
            ctx: &mut Ctx<'_, u32>,
            from: AdId,
            _link: LinkId,
            msg: u32,
        ) {
            r.heard_from.push(from);
            ctx.count("wave_rx", 1);
            if !r.seen {
                r.seen = true;
                for (nbr, _) in ctx.neighbors() {
                    if nbr != from {
                        ctx.send(nbr, msg + 1);
                    }
                }
            }
        }

        fn on_timer(&self, r: &mut WaveRouter, _ctx: &mut Ctx<'_, u32>, token: u64) {
            assert_eq!(token, 99);
            r.timer_fired = true;
        }

        fn on_link_event(
            &self,
            r: &mut WaveRouter,
            _ctx: &mut Ctx<'_, u32>,
            _link: LinkId,
            _nbr: AdId,
            _up: bool,
        ) {
            r.link_events += 1;
        }

        fn msg_size(&self, _m: &u32) -> usize {
            4
        }
    }

    #[test]
    fn wave_reaches_everyone_and_quiesces() {
        let topo = line(5);
        let mut e = Engine::new(topo, Wave);
        let t = e.run_to_quiescence();
        assert!(t > SimTime::ZERO);
        for ad in e.topo().ad_ids() {
            assert!(e.router(ad).seen, "{ad} never saw the wave");
        }
        assert!(e.router(AdId(0)).timer_fired);
        // 4 links, each crossed exactly once forward = 4 messages.
        assert_eq!(e.stats.msgs_sent, 4);
        assert_eq!(e.stats.bytes_sent, 16);
        assert_eq!(e.stats.counter("wave_rx"), 4);
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn link_failure_blocks_and_notifies() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        // Fail 1-2 before the wave crosses it: delays are 1000us per hop,
        // so fail at t=500 (wave 0->1 arrives at 1000, 1->2 would arrive
        // at 2000).
        e.schedule_link_change(LinkId(1), false, SimTime(500));
        e.run_to_quiescence();
        assert!(e.router(AdId(1)).seen);
        assert!(!e.router(AdId(2)).seen, "wave crossed a failed link");
        assert_eq!(e.router(AdId(1)).link_events, 1);
        assert_eq!(e.router(AdId(2)).link_events, 1);
        assert_eq!(e.router(AdId(0)).link_events, 0);
    }

    #[test]
    fn message_in_flight_on_failed_link_is_lost() {
        let topo = line(3);
        let mut e = Engine::new(topo, Wave);
        // The 1->2 message departs at t=1000; kill the link at t=1500
        // while it is in flight.
        e.schedule_link_change(LinkId(1), false, SimTime(1500));
        e.run_to_quiescence();
        assert!(!e.router(AdId(2)).seen);
    }

    #[test]
    fn run_until_stops_midway() {
        let topo = line(5);
        let mut e = Engine::new(topo, Wave);
        e.run_until(SimTime(1500)); // only the first hop (t=1000) delivered
        assert!(e.router(AdId(1)).seen);
        assert!(!e.router(AdId(2)).seen);
        assert_eq!(e.now(), SimTime(1500));
        e.run_to_quiescence();
        assert!(e.router(AdId(4)).seen);
    }

    #[test]
    fn wakeup_delivers_token() {
        let topo = line(2);
        let mut e = Engine::new(topo, Wave);
        e.run_to_quiescence();
        e.schedule_wakeup(AdId(1), SimTime(10_000), 99);
        e.run_to_quiescence();
        assert!(e.router(AdId(1)).timer_fired);
    }

    #[test]
    fn ctx_exposes_link_attributes() {
        /// Probe protocol: records what Ctx reports at start time.
        struct Probe;
        #[derive(Default)]
        struct ProbeRouter {
            neighbor_up: Option<bool>,
            metric: Option<u32>,
            delay: Option<u64>,
            kind: Option<adroute_topology::LinkKind>,
        }
        impl Protocol for Probe {
            type Router = ProbeRouter;
            type Msg = ();
            fn make_router(&self, _t: &Topology, _a: AdId) -> ProbeRouter {
                ProbeRouter::default()
            }
            fn on_start(&self, r: &mut ProbeRouter, ctx: &mut Ctx<'_, ()>) {
                if let Some((nbr, link)) = ctx.neighbors().first().copied() {
                    r.neighbor_up = Some(ctx.neighbor_up(nbr));
                    r.metric = Some(ctx.link_metric(link));
                    r.delay = Some(ctx.link_delay(link));
                    r.kind = Some(ctx.link_kind(link));
                }
                // Non-neighbors are reported down and sends to them drop.
                assert!(!ctx.neighbor_up(AdId(999)));
                ctx.send(AdId(999), ());
            }
            fn on_message(&self, _r: &mut ProbeRouter, _c: &mut Ctx<'_, ()>, _f: AdId, _l: LinkId, _m: ()) {
                panic!("no message should ever be delivered");
            }
            fn msg_size(&self, _m: &()) -> usize {
                0
            }
        }
        let mut topo = line(2);
        topo.set_metric(LinkId(0), 7);
        topo.set_delay(LinkId(0), 2500);
        let mut e = Engine::new(topo, Probe);
        e.run_to_quiescence();
        let r = e.router(AdId(0));
        assert_eq!(r.neighbor_up, Some(true));
        assert_eq!(r.metric, Some(7));
        assert_eq!(r.delay, Some(2500));
        assert_eq!(r.kind, Some(adroute_topology::LinkKind::Lateral));
        assert_eq!(e.stats.msgs_sent, 0, "send to non-neighbor must drop");
    }

    #[test]
    fn tracing_captures_golden_event_log() {
        let mk = || {
            let mut e = Engine::new(line(3), Wave);
            e.enable_trace(64);
            e.schedule_link_change(LinkId(1), false, SimTime(5000));
            e.run_to_quiescence();
            e
        };
        let a = mk();
        let b = mk();
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace.render(), b.trace.render(), "trace must be golden");
        assert!(a.trace.first_divergence(&b.trace).is_none());
        let text = a.trace.render();
        assert!(text.contains("start AD0"), "{text}");
        assert!(text.contains("deliver AD0->AD1 via L0"), "{text}");
        assert!(text.contains("link L1 down"), "{text}");
        // Disabled by default: a fresh engine records nothing.
        let mut plain = Engine::new(line(3), Wave);
        plain.run_to_quiescence();
        assert!(plain.trace.is_empty());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = Engine::new(line(6), Wave);
            let t = e.run_to_quiescence();
            (t, e.stats.msgs_sent, e.stats.events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn past_scheduling_rejected() {
        let mut e = Engine::new(line(3), Wave);
        e.run_to_quiescence();
        e.schedule_link_change(LinkId(0), false, SimTime::ZERO);
    }

    #[test]
    fn into_parts_returns_state() {
        let mut e = Engine::new(line(3), Wave);
        e.run_to_quiescence();
        let (topo, routers, stats) = e.into_parts();
        assert_eq!(topo.num_ads(), 3);
        assert_eq!(routers.len(), 3);
        assert!(stats.events > 0);
    }
}
