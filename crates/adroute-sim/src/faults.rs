//! Unified fault injection: link churn, lossy channels, router crashes.
//!
//! The paper's operating model (Section 2.2) is an internet whose inter-AD
//! links fail and recover continuously while the routing fabric keeps
//! forwarding. [`FailureSchedule`](crate::FailureSchedule) realizes the
//! clean link-flip half of that regime; a [`FaultPlan`] composes it with
//! the messier rest:
//!
//! - **Channel faults** ([`ChannelFaults`]): per-message loss,
//!   corruption (detected at the receiver and dropped), duplication, and
//!   reordering (extra delay jitter). Each message's fate is a pure
//!   function of its *identity* — the configured seed, the sending AD,
//!   and the sender's cumulative send ordinal — drawn from a fresh
//!   counter-keyed RNG per message, so verdicts are independent of
//!   global draw order and byte-identical under the sequential and
//!   region-parallel engines at any worker count.
//! - **Router crashes** ([`CrashModel`], [`RouterOutage`]): a crashed
//!   router loses *all* soft state — it is rebuilt from
//!   [`Protocol::make_router`](crate::Protocol::make_router) at restart —
//!   and its links share its fate, so neighbors observe ordinary
//!   link-down/link-up events and their existing resynchronization logic
//!   heals the reborn router.
//!
//! A plan drawn with `heal = true` (the default) additionally guarantees a
//! clean ending: outstanding failures are repaired at the horizon, channel
//! faults stop there, and a **resynchronization sweep** re-fires a link-up
//! event on every operational link just after — modeling the periodic
//! refresh every deployed routing protocol runs, compressed into a single
//! round. Quiescence after an applied healed plan therefore means full
//! reconvergence, which is what the chaos tests assert against.
//!
//! Data planes layered on top re-sync *after* that sweep: the ORWG
//! network's `refresh_from_engine` diffs each Route Server's view against
//! its AD's flooded database at quiescence and applies the difference as
//! incremental deltas (falling back to a full view install only when the
//! structure changed), so a recovery sweep does not flush every cached
//! policy route in the internet.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_topology::{AdId, LinkId, Topology};

use crate::engine::{Engine, Protocol};
use crate::event::SimTime;
use crate::obs::EventId;
use crate::schedule::{FailureModel, FailureSchedule, LinkEvent};

/// Per-message channel fault probabilities. All default to zero; a default
/// `ChannelFaults` is a perfect channel.
#[derive(Clone, Debug)]
pub struct ChannelFaults {
    /// Probability a message is silently lost in flight.
    pub loss: f64,
    /// Probability a message arrives corrupted; the receiver's checksum
    /// catches it and the message is dropped (counted separately).
    pub corrupt: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is delayed by extra jitter, letting later
    /// messages overtake it.
    pub reorder: f64,
    /// Maximum extra delay (µs) applied to reordered and duplicated
    /// copies.
    pub jitter_us: u64,
    /// Seed of the dedicated fault RNG.
    pub seed: u64,
    /// If set, faults only apply to messages sent at or before this time;
    /// afterwards the channel is clean. [`FaultPlan::draw`] sets this to
    /// the plan horizon so post-horizon reconvergence is loss-free.
    pub until: Option<SimTime>,
}

impl Default for ChannelFaults {
    fn default() -> ChannelFaults {
        ChannelFaults {
            loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            jitter_us: 500,
            seed: 0,
            until: None,
        }
    }
}

impl ChannelFaults {
    /// Whether faults still apply to messages sent at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.until.is_none_or(|t| now <= t)
    }

    /// SplitMix64 finalizer over the message identity. `seed_from_u64`
    /// expands the result through SplitMix64 again, so this only needs to
    /// separate nearby `(sender, ordinal)` pairs — the two odd-constant
    /// multiplies do that.
    fn event_key(&self, from: AdId, ordinal: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((from.0 as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(ordinal.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws one message's fate as a **pure function of event identity**:
    /// the configured seed, the sending AD, and that sender's cumulative
    /// send ordinal. Each call seeds a fresh RNG from the mixed key, so
    /// the verdict does not depend on how many other messages anyone else
    /// has sent — a lane of the parallel engine and the sequential
    /// dispatch loop compute byte-identical answers at any worker count.
    ///
    /// The per-message draw order is fixed (loss, corruption, reorder,
    /// duplication) so identical configurations replay identically.
    pub(crate) fn judge(&self, from: AdId, ordinal: u64, base_delay_us: u64) -> ChannelVerdict {
        let mut rng = SmallRng::seed_from_u64(self.event_key(from, ordinal));
        if self.loss > 0.0 && rng.gen_bool(self.loss) {
            return ChannelVerdict::Lost;
        }
        if self.corrupt > 0.0 && rng.gen_bool(self.corrupt) {
            return ChannelVerdict::Corrupted;
        }
        let jitter = self.jitter_us.max(1);
        let mut delay_us = base_delay_us;
        let mut reordered = false;
        if self.reorder > 0.0 && rng.gen_bool(self.reorder) {
            reordered = true;
            delay_us += rng.gen_range(1..=jitter);
        }
        let duplicate_at_us = if self.duplicate > 0.0 && rng.gen_bool(self.duplicate) {
            Some(delay_us + rng.gen_range(1..=jitter))
        } else {
            None
        };
        ChannelVerdict::Pass {
            delay_us,
            duplicate_at_us,
            reordered,
        }
    }
}

/// What the channel decided to do with one message. Produced by
/// [`ChannelFaults::judge`]; the sequential dispatch loop and the
/// parallel lanes must interpret it identically (same record order, same
/// push order) for trace byte identity to hold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChannelVerdict {
    /// Silently dropped in flight.
    Lost,
    /// Dropped by the receiver's checksum (payload corrupted).
    Corrupted,
    /// Delivered, possibly late and/or twice.
    Pass {
        /// Actual delay, ≥ the link delay (jitter only ever adds).
        delay_us: u64,
        /// If `Some`, a second copy arrives this long after the send.
        duplicate_at_us: Option<u64>,
        /// Whether jitter was applied (counted as a reorder).
        reordered: bool,
    },
}

/// Parameters of a random router crash/restart process, mirroring
/// [`FailureModel`] for links.
#[derive(Clone, Debug)]
pub struct CrashModel {
    /// Mean operating time before a router crashes, in milliseconds.
    pub mtbf_ms: f64,
    /// Mean reboot time, in milliseconds.
    pub mttr_ms: f64,
    /// Fraction of routers subject to crashing (the rest never do).
    pub fallible_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrashModel {
    fn default() -> CrashModel {
        CrashModel {
            mtbf_ms: 800.0,
            mttr_ms: 150.0,
            fallible_fraction: 0.1,
            seed: 0,
        }
    }
}

/// One scheduled router outage: crash at `down_at`, restart at `up_at`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouterOutage {
    /// The router that crashes.
    pub ad: AdId,
    /// Crash time.
    pub down_at: SimTime,
    /// Restart time (strictly after `down_at`).
    pub up_at: SimTime,
}

/// What kinds of faults to draw; input to [`FaultPlan::draw`].
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// Link up/down churn (None = stable links).
    pub link_model: Option<FailureModel>,
    /// Router crash/restart churn (None = stable routers).
    pub crash_model: Option<CrashModel>,
    /// Channel fault probabilities (None = perfect channel).
    pub channel: Option<ChannelFaults>,
    /// Byzantine per-AD misbehavior assignments (empty = everyone honest).
    pub misbehavior: MisbehaviorSpec,
}

/// One model of active AD misbehavior — the byzantine counterpart of the
/// crash/loss faults above. Each model maps onto the design point whose
/// trust assumptions it violates (Section 4 of the paper): hop-by-hop
/// schemes trust *advertisements*, the ORWG trusts *setup acknowledgments*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MisbehaviorModel {
    /// path_vector: the AD re-advertises every route it knows to every
    /// neighbor with wildcard attributes, bypassing its own
    /// `TransitPolicy` offerings — the classic transit route leak.
    RouteLeak,
    /// naive_dv: the AD advertises distance 1 to every destination,
    /// attracting traffic it has no business carrying.
    DistanceFalsification,
    /// naive_dv: the AD advertises honestly but silently drops every
    /// transit packet on the data plane.
    Blackhole,
    /// linkstate/ls_hbh: the AD re-floods stale self-describing LSAs for
    /// other origins with abused (inflated) sequence numbers.
    LsaReplay,
    /// ecma: the AD advertises its up/down-rule-restricted (`alldown`)
    /// metric as equal to its unrestricted metric and forwards marked
    /// packets through the unrestricted table — violating the up/down
    /// rule that keeps hierarchical routing policy-safe.
    UpDownViolation,
    /// ORWG data plane: the AD's Policy Gateway acknowledges setups its
    /// own policy forbids, installing handles it should have refused.
    ForgedAck,
}

impl MisbehaviorModel {
    /// Every model, in a stable order (CLI listings, experiment sweeps).
    pub const ALL: [MisbehaviorModel; 6] = [
        MisbehaviorModel::RouteLeak,
        MisbehaviorModel::DistanceFalsification,
        MisbehaviorModel::Blackhole,
        MisbehaviorModel::LsaReplay,
        MisbehaviorModel::UpDownViolation,
        MisbehaviorModel::ForgedAck,
    ];

    /// Stable machine-readable tag (event records, CLI `--byzantine`).
    pub fn tag(&self) -> &'static str {
        match self {
            MisbehaviorModel::RouteLeak => "route-leak",
            MisbehaviorModel::DistanceFalsification => "distance-falsification",
            MisbehaviorModel::Blackhole => "blackhole",
            MisbehaviorModel::LsaReplay => "lsa-replay",
            MisbehaviorModel::UpDownViolation => "up-down-violation",
            MisbehaviorModel::ForgedAck => "forged-ack",
        }
    }

    /// Parses a [`MisbehaviorModel::tag`] back to the model.
    pub fn parse(s: &str) -> Option<MisbehaviorModel> {
        MisbehaviorModel::ALL.into_iter().find(|m| m.tag() == s)
    }
}

/// Per-AD misbehavior assignments, the byzantine half of a [`FaultSpec`].
///
/// The spec is protocol-agnostic: it records *which* ADs misbehave *how*;
/// each protocol engine (and the ORWG network) interprets the assignments
/// it understands and ignores the rest, so one spec drives the same
/// scenario across all four design points.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MisbehaviorSpec {
    assignments: Vec<(AdId, MisbehaviorModel)>,
}

impl MisbehaviorSpec {
    /// A single misbehaving AD.
    pub fn single(ad: AdId, model: MisbehaviorModel) -> MisbehaviorSpec {
        MisbehaviorSpec {
            assignments: vec![(ad, model)],
        }
    }

    /// Adds (or replaces) `ad`'s assignment, builder-style.
    pub fn assign(mut self, ad: AdId, model: MisbehaviorModel) -> MisbehaviorSpec {
        self.assignments.retain(|(a, _)| *a != ad);
        self.assignments.push((ad, model));
        self.assignments.sort_by_key(|(a, _)| *a);
        self
    }

    /// The model assigned to `ad`, if any.
    pub fn model_of(&self, ad: AdId) -> Option<MisbehaviorModel> {
        self.assignments
            .iter()
            .find(|(a, _)| *a == ad)
            .map(|(_, m)| *m)
    }

    /// All assignments, sorted by AD.
    pub fn assignments(&self) -> &[(AdId, MisbehaviorModel)] {
        &self.assignments
    }

    /// ADs assigned `model`, in AD order.
    pub fn ads_with(&self, model: MisbehaviorModel) -> impl Iterator<Item = AdId> + '_ {
        self.assignments
            .iter()
            .filter(move |(_, m)| *m == model)
            .map(|(a, _)| *a)
    }

    /// Whether nobody misbehaves.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Deterministically picks `count` distinct *transit-capable* ADs
    /// (degree ≥ 2 — a stub cannot leak or blackhole through-traffic)
    /// and assigns each `model`. Falls back to any AD when the topology
    /// has too few transits.
    pub fn draw(topo: &Topology, model: MisbehaviorModel, count: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut transit: Vec<AdId> = topo.ad_ids().filter(|ad| topo.degree(*ad) >= 2).collect();
        if transit.len() < count {
            transit = topo.ad_ids().collect();
        }
        let mut spec = MisbehaviorSpec::default();
        for _ in 0..count.min(transit.len()) {
            let i = rng.gen_range(0..transit.len());
            let ad = transit.swap_remove(i);
            spec = spec.assign(ad, model);
        }
        spec
    }
}

/// A partition fault: a **cut set** of links fails simultaneously,
/// splitting the flooding domain into two islands that cannot exchange
/// any routing traffic until the cut heals.
///
/// The split is by AD index: ADs `< split` form the left island, the rest
/// the right. During the cut, every metric toward the far island
/// legitimately counts toward infinity and every far destination is
/// unreachable — the partition-aware monitors
/// ([`Observation::MetricSample`](crate::monitor::Observation)'s
/// `reachable` flag) must not quarantine anyone for that.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// The cut set: every operational link with one endpoint on each side.
    pub cut: Vec<LinkId>,
    /// ADs `< split` are the left island; the rest are the right.
    pub split: u32,
    /// When the cut set goes down (the partition begins).
    pub at: SimTime,
    /// When the cut set comes back up (the heal).
    pub heal_at: SimTime,
}

/// A concrete, deterministic fault scenario over a time horizon: link
/// events, router outages, and a channel fault configuration, ready to
/// [`apply`](FaultPlan::apply) to an engine.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    links: FailureSchedule,
    outages: Vec<RouterOutage>,
    channel: Option<ChannelFaults>,
    misbehavior: MisbehaviorSpec,
    partition: Option<PartitionSpec>,
    horizon_end: SimTime,
    heal: bool,
}

impl FaultPlan {
    /// Draws a healed plan for `topo` over `[start, start + horizon_ms)`.
    ///
    /// Healed means the plan ends clean: every outage restarts by the
    /// horizon, link repairs the schedule left hanging are forced at the
    /// horizon by [`apply`](FaultPlan::apply), channel faults stop at the
    /// horizon, and a resynchronization sweep follows. The same inputs
    /// always produce the same plan.
    pub fn draw(topo: &Topology, spec: &FaultSpec, start: SimTime, horizon_ms: u64) -> FaultPlan {
        let end = start.plus_us(horizon_ms * 1000);
        let links = spec
            .link_model
            .as_ref()
            .map(|m| FailureSchedule::draw(topo, m, start, horizon_ms))
            .unwrap_or_default();
        let outages = spec
            .crash_model
            .as_ref()
            .map(|m| draw_outages(topo, m, start, end))
            .unwrap_or_default();
        let mut channel = spec.channel.clone();
        if let Some(ch) = &mut channel {
            ch.until.get_or_insert(end);
        }
        FaultPlan {
            links,
            outages,
            channel,
            misbehavior: spec.misbehavior.clone(),
            partition: None,
            horizon_end: end,
            heal: true,
        }
    }

    /// A pure partition plan: the cut set of every operational link
    /// straddling AD index `split` goes down at `at` and heals at
    /// `heal_at`, with the standard healed ending (resynchronization
    /// sweep just past the horizon). No other faults are injected, so
    /// any quarantine fired during `[at, heal_at)` is a false positive
    /// by construction — the property `tests/monitors.rs` pins down.
    ///
    /// Returns `None` if the split produces no cut set (an empty side,
    /// or no straddling links — the domain would not actually split).
    pub fn partition(
        topo: &Topology,
        split: u32,
        at: SimTime,
        heal_at: SimTime,
    ) -> Option<FaultPlan> {
        assert!(at < heal_at, "partition must heal after it cuts");
        let cut = cut_set(topo, split);
        if cut.is_empty() || split == 0 || split as usize >= topo.num_ads() {
            return None;
        }
        let mut events = Vec::with_capacity(cut.len() * 2);
        for &link in &cut {
            events.push(LinkEvent {
                at,
                link,
                up: false,
            });
            events.push(LinkEvent {
                at: heal_at,
                link,
                up: true,
            });
        }
        Some(FaultPlan {
            links: FailureSchedule::from_events(events),
            outages: Vec::new(),
            channel: None,
            misbehavior: MisbehaviorSpec::default(),
            partition: Some(PartitionSpec {
                cut,
                split,
                at,
                heal_at,
            }),
            horizon_end: heal_at,
            heal: true,
        })
    }

    /// Composes a partition into an existing plan, builder-style: the cut
    /// set's down/heal events merge into the link schedule and the plan
    /// horizon extends to cover the heal. Returns the plan unchanged when
    /// the split yields no cut set.
    pub fn with_partition(
        mut self,
        topo: &Topology,
        split: u32,
        at: SimTime,
        heal_at: SimTime,
    ) -> FaultPlan {
        let Some(part) = FaultPlan::partition(topo, split, at, heal_at) else {
            return self;
        };
        let mut events = self.links.events().to_vec();
        events.extend_from_slice(part.links.events());
        self.links = FailureSchedule::from_events(events);
        self.partition = part.partition;
        self.horizon_end = self.horizon_end.max(heal_at);
        self
    }

    /// A hand-built plan (for tests and targeted experiments). `heal`
    /// controls whether [`apply`](FaultPlan::apply) appends horizon
    /// repairs and the resynchronization sweep.
    pub fn from_parts(
        links: FailureSchedule,
        outages: Vec<RouterOutage>,
        channel: Option<ChannelFaults>,
        horizon_end: SimTime,
        heal: bool,
    ) -> FaultPlan {
        FaultPlan {
            links,
            outages,
            channel,
            misbehavior: MisbehaviorSpec::default(),
            partition: None,
            horizon_end,
            heal,
        }
    }

    /// Attaches byzantine assignments to a hand-built plan, builder-style.
    pub fn with_misbehavior(mut self, spec: MisbehaviorSpec) -> FaultPlan {
        self.misbehavior = spec;
        self
    }

    /// The byzantine per-AD assignments (empty = everyone honest).
    pub fn misbehavior(&self) -> &MisbehaviorSpec {
        &self.misbehavior
    }

    /// The link churn component.
    pub fn link_events(&self) -> &FailureSchedule {
        &self.links
    }

    /// The router outages, as drawn (unordered between routers).
    pub fn outages(&self) -> &[RouterOutage] {
        &self.outages
    }

    /// The channel fault configuration, if any.
    pub fn channel(&self) -> Option<&ChannelFaults> {
        self.channel.as_ref()
    }

    /// Attaches (or replaces) the channel fault configuration,
    /// builder-style.
    pub fn with_channel(mut self, channel: ChannelFaults) -> FaultPlan {
        self.channel = Some(channel);
        self
    }

    /// The partition component, if this plan cuts the flooding domain.
    pub fn partition_spec(&self) -> Option<&PartitionSpec> {
        self.partition.as_ref()
    }

    /// End of the fault horizon; with healing, the network is fault-free
    /// from here on.
    pub fn horizon_end(&self) -> SimTime {
        self.horizon_end
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.outages.is_empty()
            && self.channel.is_none()
            && self.misbehavior.is_empty()
    }

    /// Queues every fault into the engine and installs the channel fault
    /// injector. With healing, also queues horizon repairs for links the
    /// schedule leaves down and a resynchronization sweep (a link-up
    /// re-fire on every operational link) 1 ms past the horizon.
    ///
    /// Byzantine assignments are *noted* (one `misbehavior-inject` record
    /// per misbehaving AD, child of the plan record) but not enacted —
    /// the engine is protocol-generic, so the caller wires the same
    /// [`MisbehaviorSpec`] into its protocol's violator hooks. The
    /// returned per-AD event ids are the causal roots detection alarms
    /// chain to.
    ///
    /// # Panics
    /// Panics if any event lies in the engine's past.
    pub fn apply<P: Protocol>(&self, engine: &mut Engine<P>) -> Vec<(AdId, Option<EventId>)> {
        // The plan record is the causal root of every fault it schedules:
        // span trees rooted here separate injected chaos from the
        // protocol reactions it provokes.
        let plan_id = engine.note(crate::obs::EventRecord::FaultPlanApplied {
            link_events: self.links.events().len() as u64,
            outages: self.outages.len() as u64,
            lossy: self.channel.is_some(),
        });
        let roots: Vec<(AdId, Option<EventId>)> = self
            .misbehavior
            .assignments()
            .iter()
            .map(|(ad, model)| {
                let id = engine.note_caused(
                    plan_id,
                    crate::obs::EventRecord::MisbehaviorInject {
                        ad: *ad,
                        model: model.tag(),
                    },
                );
                (*ad, id)
            })
            .collect();
        if let Some(p) = &self.partition {
            let n = engine.topo().num_ads() as u64;
            engine.note_caused(
                plan_id,
                crate::obs::EventRecord::PartitionCut {
                    links: p.cut.len() as u64,
                    left: p.split as u64,
                    right: n.saturating_sub(p.split as u64),
                },
            );
            engine.note_caused(
                plan_id,
                crate::obs::EventRecord::PartitionHeal {
                    links: p.cut.len() as u64,
                },
            );
        }
        // Final scheduled state per link: starts from current topology,
        // then follows the plan's events.
        let mut final_up: Vec<bool> = engine.topo().links().map(|l| l.up).collect();
        self.links.apply_caused(engine, plan_id);
        for e in self.links.events() {
            final_up[e.link.index()] = e.up;
        }
        for o in &self.outages {
            engine.schedule_router_change_caused(o.ad, false, o.down_at, plan_id);
            engine.schedule_router_change_caused(o.ad, true, o.up_at, plan_id);
        }
        // Only install channel faults the plan actually carries: a
        // channel-free plan (e.g. a pure partition) composed on top of a
        // lossy one must not silently clean the channel.
        if self.channel.is_some() {
            engine.set_channel_faults(self.channel.clone());
        }
        if self.heal {
            let link_ids: Vec<_> = engine.topo().links().map(|l| l.id).collect();
            for link in &link_ids {
                if !final_up[link.index()] {
                    engine.schedule_link_change_caused(*link, true, self.horizon_end, plan_id);
                    final_up[link.index()] = true;
                }
            }
            let sweep_at = self.horizon_end.plus_us(1000);
            for link in link_ids {
                if final_up[link.index()] {
                    engine.schedule_link_change_caused(link, true, sweep_at, plan_id);
                }
            }
        }
        roots
    }
}

/// Every currently-operational link with one endpoint on each side of the
/// AD-index `split` — downing all of them at once partitions the domain
/// (assuming the split separates the connectivity, which it does for the
/// contiguous generators used throughout this repo).
fn cut_set(topo: &Topology, split: u32) -> Vec<LinkId> {
    topo.links()
        .filter(|l| l.up && ((l.a.0 < split) != (l.b.0 < split)))
        .map(|l| l.id)
        .collect()
}

/// Draws alternating crash/restart outages per fallible router, every
/// restart clamped to the horizon so healed plans end with all routers up.
fn draw_outages(
    topo: &Topology,
    model: &CrashModel,
    start: SimTime,
    end: SimTime,
) -> Vec<RouterOutage> {
    let mut rng = SmallRng::seed_from_u64(model.seed);
    let mut outages = Vec::new();
    for ad in topo.ad_ids() {
        if !rng.gen_bool(model.fallible_fraction.clamp(0.0, 1.0)) {
            continue;
        }
        let mut t = start;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let uptime_ms = (-model.mtbf_ms * u.ln()).max(1.0);
            let down_at = t.plus_us((uptime_ms * 1000.0) as u64);
            if down_at >= end {
                break;
            }
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let repair_ms = (-model.mttr_ms * u.ln()).max(1.0);
            let up_at = SimTime(down_at.plus_us((repair_ms * 1000.0) as u64).0.min(end.0));
            outages.push(RouterOutage { ad, down_at, up_at });
            t = up_at;
            if t >= end {
                break;
            }
        }
    }
    outages.sort_by_key(|o| (o.down_at, o.ad));
    outages
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::ring;

    fn spec() -> FaultSpec {
        FaultSpec {
            link_model: Some(FailureModel {
                mtbf_ms: 100.0,
                mttr_ms: 40.0,
                fallible_fraction: 0.5,
                seed: 5,
            }),
            crash_model: Some(CrashModel {
                mtbf_ms: 150.0,
                mttr_ms: 60.0,
                fallible_fraction: 0.5,
                seed: 7,
            }),
            channel: Some(ChannelFaults {
                loss: 0.05,
                seed: 11,
                ..ChannelFaults::default()
            }),
            misbehavior: MisbehaviorSpec::default(),
        }
    }

    #[test]
    fn misbehavior_spec_assignment_and_draw() {
        let topo = ring(8);
        let spec = MisbehaviorSpec::single(AdId(3), MisbehaviorModel::RouteLeak)
            .assign(AdId(5), MisbehaviorModel::Blackhole)
            .assign(AdId(3), MisbehaviorModel::ForgedAck);
        assert_eq!(spec.model_of(AdId(3)), Some(MisbehaviorModel::ForgedAck));
        assert_eq!(spec.model_of(AdId(5)), Some(MisbehaviorModel::Blackhole));
        assert_eq!(spec.model_of(AdId(0)), None);
        assert_eq!(
            spec.ads_with(MisbehaviorModel::Blackhole)
                .collect::<Vec<_>>(),
            vec![AdId(5)]
        );
        let a = MisbehaviorSpec::draw(&topo, MisbehaviorModel::RouteLeak, 2, 9);
        let b = MisbehaviorSpec::draw(&topo, MisbehaviorModel::RouteLeak, 2, 9);
        assert_eq!(a, b, "draws are deterministic");
        assert_eq!(a.assignments().len(), 2);
        for m in MisbehaviorModel::ALL {
            assert_eq!(MisbehaviorModel::parse(m.tag()), Some(m));
        }
        assert_eq!(MisbehaviorModel::parse("nonsense"), None);
    }

    #[test]
    fn draws_are_deterministic() {
        let topo = ring(10);
        let a = FaultPlan::draw(&topo, &spec(), SimTime::ZERO, 1_000);
        let b = FaultPlan::draw(&topo, &spec(), SimTime::ZERO, 1_000);
        assert_eq!(a.link_events().events(), b.link_events().events());
        assert_eq!(a.outages(), b.outages());
        assert!(!a.is_empty());
    }

    #[test]
    fn outages_heal_within_horizon() {
        let topo = ring(12);
        let plan = FaultPlan::draw(&topo, &spec(), SimTime::ZERO, 800);
        assert!(!plan.outages().is_empty(), "seed should crash someone");
        for o in plan.outages() {
            assert!(o.down_at < o.up_at);
            assert!(o.up_at <= plan.horizon_end());
        }
        // Per router: outages do not overlap.
        for ad in topo.ad_ids() {
            let mine: Vec<_> = plan.outages().iter().filter(|o| o.ad == ad).collect();
            for w in mine.windows(2) {
                assert!(w[0].up_at <= w[1].down_at);
            }
        }
    }

    #[test]
    fn channel_faults_stop_at_horizon() {
        let topo = ring(6);
        let plan = FaultPlan::draw(&topo, &spec(), SimTime::ZERO, 500);
        let ch = plan.channel().expect("spec has a channel");
        assert_eq!(ch.until, Some(plan.horizon_end()));
        assert!(ch.active_at(SimTime::ZERO));
        assert!(ch.active_at(plan.horizon_end()));
        assert!(!ch.active_at(plan.horizon_end().plus_us(1)));
    }

    #[test]
    fn empty_spec_empty_plan() {
        let topo = ring(6);
        let plan = FaultPlan::draw(&topo, &FaultSpec::default(), SimTime::ZERO, 1_000);
        assert!(plan.is_empty());
        assert!(plan.link_events().is_empty());
        assert!(plan.outages().is_empty());
        assert!(plan.channel().is_none());
    }
}
