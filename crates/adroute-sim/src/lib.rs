//! Deterministic discrete-event simulation of inter-AD routing protocols.
//!
//! Every protocol in this workspace is a [`Protocol`] implementation: a set
//! of per-AD routers that exchange messages over the links of a
//! [`Topology`](adroute_topology::Topology) and react to link failures and
//! policy changes. The [`Engine`] delivers messages with per-link
//! propagation delay, fires one-shot timers, injects scheduled link events,
//! and detects **quiescence** (an empty event queue), which is the
//! convergence criterion for every experiment.
//!
//! The engine is deliberately synchronous and single-threaded: events are
//! totally ordered by `(time, sequence-number)`, so a given
//! `(topology, policy, protocol, seed)` tuple always produces bit-identical
//! results. Simulated time is microseconds.

pub mod engine;
pub mod event;
pub mod faults;
pub mod monitor;
pub mod obs;
pub mod parallel;
pub mod pool;
pub mod schedule;
pub mod stats;
pub mod trace;

pub use engine::{Ctx, Engine, Protocol};
pub use event::SimTime;
pub use faults::{
    ChannelFaults, CrashModel, FaultPlan, FaultSpec, MisbehaviorModel, MisbehaviorSpec,
    RouterOutage,
};
pub use monitor::{Alarm, MonitorBank, MonitorConfig, Observation, QuarantineController};
pub use obs::causal::{CausalGraph, StormEntry};
pub use obs::prof::{Profiler, SpanNode};
pub use obs::{
    EventId, EventLog, EventRecord, Histogram, LogComparison, LoggedEvent, MetricsRegistry, Obs,
    DATA_STREAM_ID_BASE,
};
pub use schedule::{FailureModel, FailureSchedule, LinkEvent, OpenArrival, OpenStorm, StormPhase};
pub use stats::Stats;
pub use trace::{Trace, TraceRecord};
