//! Seeded failure schedules: the inter-AD link dynamics of paper
//! Section 2.2.
//!
//! The paper assumes ADs themselves are stable ("an AD must be configured
//! to maintain relatively stable connectivity") while *inter-AD links*
//! fail and recover: "the protocol must be somewhat adaptive to changes in
//! inter-AD topology". A [`FailureSchedule`] realizes that regime as a
//! deterministic list of link up/down events drawn from per-link
//! exponential time-to-failure / time-to-repair distributions, which
//! experiments feed into an [`Engine`] via
//! [`apply`](FailureSchedule::apply).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_topology::{AdId, LinkId, Topology};

use crate::engine::{Engine, Protocol};
use crate::event::SimTime;
use crate::obs::EventId;

/// One scheduled link state change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkEvent {
    /// When the change occurs.
    pub at: SimTime,
    /// Which link.
    pub link: LinkId,
    /// New state.
    pub up: bool,
}

/// Parameters of a random failure process.
#[derive(Clone, Debug)]
pub struct FailureModel {
    /// Mean operating time before a link fails, in milliseconds.
    pub mtbf_ms: f64,
    /// Mean repair time, in milliseconds.
    pub mttr_ms: f64,
    /// Fraction of links subject to failure (the rest never fail).
    pub fallible_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            mtbf_ms: 500.0,
            mttr_ms: 100.0,
            fallible_fraction: 0.3,
            seed: 0,
        }
    }
}

/// A deterministic, time-ordered list of link events over a horizon.
#[derive(Clone, Debug, Default)]
pub struct FailureSchedule {
    events: Vec<LinkEvent>,
}

impl FailureSchedule {
    /// Draws a schedule for `topo` over `[start, start+horizon_ms)` under
    /// the model. Each fallible link alternates exponential up/down
    /// periods. The same inputs always produce the same schedule.
    pub fn draw(
        topo: &Topology,
        model: &FailureModel,
        start: SimTime,
        horizon_ms: u64,
    ) -> FailureSchedule {
        let mut rng = SmallRng::seed_from_u64(model.seed);
        let mut events = Vec::new();
        let end = start.plus_us(horizon_ms * 1000);
        for link in topo.links() {
            if !rng.gen_bool(model.fallible_fraction.clamp(0.0, 1.0)) {
                continue;
            }
            let mut t = start;
            let mut up = true;
            loop {
                let mean = if up { model.mtbf_ms } else { model.mttr_ms };
                // Exponential draw via inverse CDF; clamp to ≥ 1ms.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dwell_ms = (-mean * u.ln()).max(1.0);
                t = t.plus_us((dwell_ms * 1000.0) as u64);
                if t >= end {
                    break;
                }
                up = !up;
                events.push(LinkEvent {
                    at: t,
                    link: link.id,
                    up,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.link));
        FailureSchedule { events }
    }

    /// A hand-built schedule (for tests and targeted experiments).
    pub fn from_events(mut events: Vec<LinkEvent>) -> FailureSchedule {
        events.sort_by_key(|e| (e.at, e.link));
        FailureSchedule { events }
    }

    /// The events, time-ordered.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of down-transitions (failures).
    pub fn failures(&self) -> usize {
        self.events.iter().filter(|e| !e.up).count()
    }

    /// Queues every event into an engine.
    ///
    /// # Panics
    /// Panics if any event lies in the engine's past.
    pub fn apply<P: Protocol>(&self, engine: &mut Engine<P>) {
        self.apply_caused(engine, None);
    }

    /// Like [`apply`](FailureSchedule::apply), but attributes every queued
    /// link change to `cause` in the causal event log (e.g. the
    /// fault-plan-applied record that installed this schedule).
    pub fn apply_caused<P: Protocol>(&self, engine: &mut Engine<P>, cause: Option<EventId>) {
        for e in &self.events {
            engine.schedule_link_change_caused(e.link, e.up, e.at, cause);
        }
    }
}

/// One phase of an open-storm load ramp: a constant offered rate of
/// route-setup opens held for a duration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StormPhase {
    /// Phase length in milliseconds.
    pub duration_ms: u64,
    /// Route-setup opens offered per second of simulated time.
    pub opens_per_sec: u64,
}

/// One client open arrival drawn from an [`OpenStorm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpenArrival {
    /// When the client offers the open.
    pub at: SimTime,
    /// Source AD (whose Route Server serves the open).
    pub src: AdId,
    /// Destination AD.
    pub dst: AdId,
    /// Index of the [`StormPhase`] the arrival belongs to.
    pub phase: usize,
}

/// A deterministic open-storm workload: route-setup arrivals over a
/// multi-phase load ramp, the offered side of the overload experiments.
/// Arrival times are uniform within each phase and endpoints are drawn
/// uniformly over distinct AD pairs; the same inputs always produce the
/// same storm.
#[derive(Clone, Debug, Default)]
pub struct OpenStorm {
    arrivals: Vec<OpenArrival>,
}

impl OpenStorm {
    /// Draws a storm for `topo` starting at `start` under the given load
    /// ramp. Each phase contributes `opens_per_sec × duration` arrivals.
    pub fn draw(topo: &Topology, phases: &[StormPhase], start: SimTime, seed: u64) -> OpenStorm {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_ads = topo.num_ads();
        let mut arrivals = Vec::new();
        let mut phase_start = start;
        for (phase, p) in phases.iter().enumerate() {
            let span_us = p.duration_ms * 1000;
            let count = (p.opens_per_sec * p.duration_ms) / 1000;
            for _ in 0..count {
                let off = rng.gen_range(0..span_us.max(1));
                let src = AdId(rng.gen_range(0..n_ads) as u32);
                let mut dst = AdId(rng.gen_range(0..n_ads) as u32);
                if dst == src {
                    dst = AdId(((dst.index() + 1) % n_ads) as u32);
                }
                arrivals.push(OpenArrival {
                    at: phase_start.plus_us(off),
                    src,
                    dst,
                    phase,
                });
            }
            phase_start = phase_start.plus_us(span_us);
        }
        arrivals.sort_by_key(|a| (a.at, a.src, a.dst));
        OpenStorm { arrivals }
    }

    /// The arrivals, time-ordered.
    pub fn arrivals(&self) -> &[OpenArrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the storm is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// End of the last phase (== `start` for an empty ramp).
    pub fn horizon(phases: &[StormPhase], start: SimTime) -> SimTime {
        start.plus_us(phases.iter().map(|p| p.duration_ms * 1000).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::ring;

    #[test]
    fn deterministic_draws() {
        let topo = ring(8);
        let model = FailureModel {
            seed: 3,
            ..Default::default()
        };
        let a = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 2_000);
        let b = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 2_000);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = ring(8);
        let a = FailureSchedule::draw(
            &topo,
            &FailureModel {
                seed: 1,
                fallible_fraction: 1.0,
                ..Default::default()
            },
            SimTime::ZERO,
            2_000,
        );
        let b = FailureSchedule::draw(
            &topo,
            &FailureModel {
                seed: 2,
                fallible_fraction: 1.0,
                ..Default::default()
            },
            SimTime::ZERO,
            2_000,
        );
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_ordered_and_alternating_per_link() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 1.0,
            mtbf_ms: 50.0,
            mttr_ms: 20.0,
            seed: 9,
        };
        let s = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 1_000);
        assert!(!s.is_empty());
        assert!(
            s.failures() >= s.len() / 2,
            "first event per link is a failure"
        );
        let mut last = SimTime::ZERO;
        for e in s.events() {
            assert!(e.at >= last);
            last = e.at;
        }
        // Per link: strict alternation starting with a failure.
        for link in topo.links() {
            let mine: Vec<_> = s.events().iter().filter(|e| e.link == link.id).collect();
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.up, i % 2 == 1, "link {} event {i} out of order", link.id);
            }
        }
    }

    #[test]
    fn horizon_and_start_respected() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 1.0,
            seed: 4,
            ..Default::default()
        };
        let start = SimTime::from_ms(100);
        let s = FailureSchedule::draw(&topo, &model, start, 500);
        for e in s.events() {
            assert!(e.at >= start);
            assert!(e.at < start.plus_us(500_000));
        }
    }

    #[test]
    fn zero_fraction_means_no_events() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 0.0,
            ..Default::default()
        };
        let s = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 10_000);
        assert!(s.is_empty());
        assert_eq!(s.failures(), 0);
    }

    #[test]
    fn open_storm_is_deterministic_and_phased() {
        let topo = ring(8);
        let phases = [
            StormPhase {
                duration_ms: 100,
                opens_per_sec: 500,
            },
            StormPhase {
                duration_ms: 50,
                opens_per_sec: 2000,
            },
        ];
        let a = OpenStorm::draw(&topo, &phases, SimTime::ZERO, 7);
        let b = OpenStorm::draw(&topo, &phases, SimTime::ZERO, 7);
        assert_eq!(a.arrivals(), b.arrivals());
        assert_eq!(a.len(), 50 + 100);
        assert!(!a.is_empty());
        let mut last = SimTime::ZERO;
        for arr in a.arrivals() {
            assert!(arr.at >= last, "arrivals must be time-ordered");
            last = arr.at;
            assert_ne!(arr.src, arr.dst);
            if arr.phase == 0 {
                assert!(arr.at < SimTime::from_ms(100));
            } else {
                assert!(arr.at >= SimTime::from_ms(100));
                assert!(arr.at < SimTime::from_ms(150));
            }
        }
        assert_eq!(
            OpenStorm::horizon(&phases, SimTime::ZERO),
            SimTime::from_ms(150)
        );
        let c = OpenStorm::draw(&topo, &phases, SimTime::ZERO, 8);
        assert_ne!(a.arrivals(), c.arrivals());
    }

    #[test]
    fn hand_built_schedules_sort() {
        let s = FailureSchedule::from_events(vec![
            LinkEvent {
                at: SimTime(500),
                link: LinkId(1),
                up: true,
            },
            LinkEvent {
                at: SimTime(100),
                link: LinkId(1),
                up: false,
            },
        ]);
        assert_eq!(s.events()[0].at, SimTime(100));
        assert_eq!(s.len(), 2);
    }
}
