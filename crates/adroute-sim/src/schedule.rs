//! Seeded failure schedules: the inter-AD link dynamics of paper
//! Section 2.2.
//!
//! The paper assumes ADs themselves are stable ("an AD must be configured
//! to maintain relatively stable connectivity") while *inter-AD links*
//! fail and recover: "the protocol must be somewhat adaptive to changes in
//! inter-AD topology". A [`FailureSchedule`] realizes that regime as a
//! deterministic list of link up/down events drawn from per-link
//! exponential time-to-failure / time-to-repair distributions, which
//! experiments feed into an [`Engine`] via
//! [`apply`](FailureSchedule::apply).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use adroute_topology::{LinkId, Topology};

use crate::engine::{Engine, Protocol};
use crate::event::SimTime;
use crate::obs::EventId;

/// One scheduled link state change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkEvent {
    /// When the change occurs.
    pub at: SimTime,
    /// Which link.
    pub link: LinkId,
    /// New state.
    pub up: bool,
}

/// Parameters of a random failure process.
#[derive(Clone, Debug)]
pub struct FailureModel {
    /// Mean operating time before a link fails, in milliseconds.
    pub mtbf_ms: f64,
    /// Mean repair time, in milliseconds.
    pub mttr_ms: f64,
    /// Fraction of links subject to failure (the rest never fail).
    pub fallible_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            mtbf_ms: 500.0,
            mttr_ms: 100.0,
            fallible_fraction: 0.3,
            seed: 0,
        }
    }
}

/// A deterministic, time-ordered list of link events over a horizon.
#[derive(Clone, Debug, Default)]
pub struct FailureSchedule {
    events: Vec<LinkEvent>,
}

impl FailureSchedule {
    /// Draws a schedule for `topo` over `[start, start+horizon_ms)` under
    /// the model. Each fallible link alternates exponential up/down
    /// periods. The same inputs always produce the same schedule.
    pub fn draw(
        topo: &Topology,
        model: &FailureModel,
        start: SimTime,
        horizon_ms: u64,
    ) -> FailureSchedule {
        let mut rng = SmallRng::seed_from_u64(model.seed);
        let mut events = Vec::new();
        let end = start.plus_us(horizon_ms * 1000);
        for link in topo.links() {
            if !rng.gen_bool(model.fallible_fraction.clamp(0.0, 1.0)) {
                continue;
            }
            let mut t = start;
            let mut up = true;
            loop {
                let mean = if up { model.mtbf_ms } else { model.mttr_ms };
                // Exponential draw via inverse CDF; clamp to ≥ 1ms.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let dwell_ms = (-mean * u.ln()).max(1.0);
                t = t.plus_us((dwell_ms * 1000.0) as u64);
                if t >= end {
                    break;
                }
                up = !up;
                events.push(LinkEvent {
                    at: t,
                    link: link.id,
                    up,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.link));
        FailureSchedule { events }
    }

    /// A hand-built schedule (for tests and targeted experiments).
    pub fn from_events(mut events: Vec<LinkEvent>) -> FailureSchedule {
        events.sort_by_key(|e| (e.at, e.link));
        FailureSchedule { events }
    }

    /// The events, time-ordered.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of down-transitions (failures).
    pub fn failures(&self) -> usize {
        self.events.iter().filter(|e| !e.up).count()
    }

    /// Queues every event into an engine.
    ///
    /// # Panics
    /// Panics if any event lies in the engine's past.
    pub fn apply<P: Protocol>(&self, engine: &mut Engine<P>) {
        self.apply_caused(engine, None);
    }

    /// Like [`apply`](FailureSchedule::apply), but attributes every queued
    /// link change to `cause` in the causal event log (e.g. the
    /// fault-plan-applied record that installed this schedule).
    pub fn apply_caused<P: Protocol>(&self, engine: &mut Engine<P>, cause: Option<EventId>) {
        for e in &self.events {
            engine.schedule_link_change_caused(e.link, e.up, e.at, cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adroute_topology::generate::ring;

    #[test]
    fn deterministic_draws() {
        let topo = ring(8);
        let model = FailureModel {
            seed: 3,
            ..Default::default()
        };
        let a = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 2_000);
        let b = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 2_000);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = ring(8);
        let a = FailureSchedule::draw(
            &topo,
            &FailureModel {
                seed: 1,
                fallible_fraction: 1.0,
                ..Default::default()
            },
            SimTime::ZERO,
            2_000,
        );
        let b = FailureSchedule::draw(
            &topo,
            &FailureModel {
                seed: 2,
                fallible_fraction: 1.0,
                ..Default::default()
            },
            SimTime::ZERO,
            2_000,
        );
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_ordered_and_alternating_per_link() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 1.0,
            mtbf_ms: 50.0,
            mttr_ms: 20.0,
            seed: 9,
        };
        let s = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 1_000);
        assert!(!s.is_empty());
        assert!(
            s.failures() >= s.len() / 2,
            "first event per link is a failure"
        );
        let mut last = SimTime::ZERO;
        for e in s.events() {
            assert!(e.at >= last);
            last = e.at;
        }
        // Per link: strict alternation starting with a failure.
        for link in topo.links() {
            let mine: Vec<_> = s.events().iter().filter(|e| e.link == link.id).collect();
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.up, i % 2 == 1, "link {} event {i} out of order", link.id);
            }
        }
    }

    #[test]
    fn horizon_and_start_respected() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 1.0,
            seed: 4,
            ..Default::default()
        };
        let start = SimTime::from_ms(100);
        let s = FailureSchedule::draw(&topo, &model, start, 500);
        for e in s.events() {
            assert!(e.at >= start);
            assert!(e.at < start.plus_us(500_000));
        }
    }

    #[test]
    fn zero_fraction_means_no_events() {
        let topo = ring(6);
        let model = FailureModel {
            fallible_fraction: 0.0,
            ..Default::default()
        };
        let s = FailureSchedule::draw(&topo, &model, SimTime::ZERO, 10_000);
        assert!(s.is_empty());
        assert_eq!(s.failures(), 0);
    }

    #[test]
    fn hand_built_schedules_sort() {
        let s = FailureSchedule::from_events(vec![
            LinkEvent {
                at: SimTime(500),
                link: LinkId(1),
                up: true,
            },
            LinkEvent {
                at: SimTime(100),
                link: LinkId(1),
                up: false,
            },
        ]);
        assert_eq!(s.events()[0].at, SimTime(100));
        assert_eq!(s.len(), 2);
    }
}
