//! Runtime safety monitors and quarantine-based containment.
//!
//! The paper's policy machinery assumes ADs *enforce* their own published
//! `TransitPolicy`; a misbehaving administration (see
//! [`MisbehaviorModel`](crate::faults::MisbehaviorModel)) breaks that
//! assumption silently — routes still converge, packets still move, but
//! the network is no longer in a policy-legal state. This module closes
//! the loop with black-box *forwarding-plane* invariants:
//!
//! - **policy-violation tripwire** — a delivered packet transited an AD
//!   whose own policy terms forbid that `(src, dst, class)` triple. One
//!   observation is proof (the policy is the AD's own statement), so the
//!   tripwire fires immediately.
//! - **persistent-loop detector** — a flow's forwarding walk revisits an
//!   AD, and keeps doing so for `loop_ticks` consecutive ticks (ruling
//!   out transient micro-loops during reconvergence).
//! - **blackhole detector** — a flow with a ground-truth-reachable
//!   destination goes undelivered at the same AD for `blackhole_ticks`
//!   consecutive ticks.
//! - **count-to-infinity watchdog** — some router's metric toward a
//!   destination climbs monotonically for `cti_ticks` ticks while still
//!   below the protocol's infinity. The watchdog can only name the
//!   *destination* under churn, not the culprit — distance vectors carry
//!   no provenance, which is itself a finding (DESIGN.md §3.10).
//!
//! **Unreachable ≠ byzantine.** During a network partition every metric
//! toward the far island legitimately counts toward infinity and every
//! far destination goes undelivered; neither is evidence of misbehavior.
//! Feeders therefore tag each observation with ground-truth
//! reachability ([`Observation::Blackholed::reachable`] and
//! [`Observation::MetricSample::reachable`], both computed from the
//! engine's topology over *operational* links), and the detectors treat
//! unreachable symptoms as streak-breaking noise. A pure partition fires
//! zero quarantines — the property `tests/monitors.rs` pins down.
//!
//! Monitors are deliberately protocol-agnostic: they consume abstract
//! [`Observation`]s that a per-protocol feeder (the forwarding harness,
//! the ORWG data plane) derives each monitoring tick, so the same bank
//! audits all four design points. Confirmed alarms flow into a
//! [`QuarantineController`] that tracks accusations, enters ADs into
//! quarantine (emitting causally-linked obs events and the
//! `quarantine_entered` / `false_positive` counters), and leaves the
//! actual route-around to the protocol layer: avoid-set synthesis for the
//! ORWG, link isolation (route withdrawal) for hop-by-hop engines.

use std::collections::{BTreeMap, BTreeSet};

use adroute_topology::AdId;

use crate::event::SimTime;
use crate::obs::{EventId, EventRecord, Obs};

/// One forwarding-plane fact observed during a monitoring tick, fed to a
/// [`MonitorBank`] by a protocol-specific prober.
#[derive(Clone, Debug)]
pub enum Observation {
    /// A probe packet was delivered; `violators` lists the transit ADs
    /// whose own policy forbids the flow (empty = policy-legal path).
    Delivered {
        /// Flow source.
        src: AdId,
        /// Flow destination.
        dst: AdId,
        /// Transit ADs that carried the packet against their own policy.
        violators: Vec<AdId>,
    },
    /// A probe packet entered a forwarding loop.
    Looped {
        /// Flow source.
        src: AdId,
        /// Flow destination.
        dst: AdId,
        /// The repeating AD cycle (first AD repeated at the end or not —
        /// only membership matters).
        cycle: Vec<AdId>,
        /// Whether ground truth says `dst` is reachable right now. A
        /// transient loop toward an unreachable destination is ordinary
        /// count-to-infinity churn (e.g. mid-partition), not evidence of
        /// misbehavior; such ticks break the loop streak.
        reachable: bool,
    },
    /// A probe packet died at `at` without reaching `dst`.
    Blackholed {
        /// Flow source.
        src: AdId,
        /// Flow destination.
        dst: AdId,
        /// The AD where forwarding stopped.
        at: AdId,
        /// Whether ground truth says `dst` is actually reachable from
        /// `src` right now (unreachable destinations are not blackholes).
        reachable: bool,
    },
    /// A routing-table metric sample for the count-to-infinity watchdog.
    MetricSample {
        /// The sampled router.
        at: AdId,
        /// The destination the metric points toward.
        dst: AdId,
        /// Current metric value.
        metric: u32,
        /// The protocol's infinity (unreachable) sentinel.
        infinity: u32,
        /// Whether ground truth says `dst` is reachable from the sampled
        /// router over operational links right now. A metric climbing
        /// toward an *unreachable* destination is correct convergence
        /// (e.g. during a partition), not count-to-infinity; such
        /// samples break the climb streak instead of advancing it.
        reachable: bool,
    },
}

/// Streak thresholds for the persistence-based detectors. A threshold of
/// `k` means the condition must hold on `k` consecutive ticks before the
/// alarm fires — the tripwire needs no threshold (one violation is
/// proof).
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Consecutive looping ticks before the loop detector fires.
    pub loop_ticks: u64,
    /// Consecutive blackholed ticks before the blackhole detector fires.
    pub blackhole_ticks: u64,
    /// Consecutive metric climbs before the count-to-infinity watchdog
    /// fires.
    pub cti_ticks: u64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            loop_ticks: 3,
            blackhole_ticks: 3,
            cti_ticks: 4,
        }
    }
}

/// A confirmed monitor verdict: `detector` holds `suspect` responsible,
/// backed by `evidence` supporting observations, first confirmed on
/// monitoring tick `tick` (1-based: an alarm on the first tick has
/// detection latency 1). `event` is the logged `monitor-alarm` record's
/// id, already chained to the suspect's `misbehavior-inject` root when
/// one was registered.
#[derive(Clone, Copy, Debug)]
pub struct Alarm {
    /// Which invariant fired: `"policy-violation"`, `"persistent-loop"`,
    /// `"blackhole"`, or `"count-to-infinity"`.
    pub detector: &'static str,
    /// The AD held responsible (for the watchdog: the churning
    /// destination, since distance vectors carry no provenance).
    pub suspect: AdId,
    /// Supporting observations accumulated when the alarm fired.
    pub evidence: u64,
    /// 1-based monitoring tick of confirmation (= detection latency in
    /// ticks when injection preceded tick 1).
    pub tick: u64,
    /// The emitted `monitor-alarm` event id, if the log is enabled.
    pub event: Option<EventId>,
}

/// Detector tag of the policy-violation tripwire.
pub const DET_POLICY: &str = "policy-violation";
/// Detector tag of the persistent-loop detector.
pub const DET_LOOP: &str = "persistent-loop";
/// Detector tag of the blackhole detector.
pub const DET_BLACKHOLE: &str = "blackhole";
/// Detector tag of the count-to-infinity watchdog.
pub const DET_CTI: &str = "count-to-infinity";

/// The four runtime safety monitors, evaluated tick by tick over
/// [`Observation`] feeds.
///
/// Usage per monitoring tick: feed every observation with
/// [`MonitorBank::observe`], then call [`MonitorBank::end_tick`] to
/// evaluate the detectors, emit `monitor-alarm` events, and collect the
/// newly fired [`Alarm`]s. Alarms deduplicate on `(detector, suspect)` —
/// a violator is reported once per detector, however long it misbehaves.
#[derive(Debug, Default)]
pub struct MonitorBank {
    cfg: MonitorConfig,
    tick: u64,
    pending: Vec<Observation>,
    /// (src,dst) → consecutive looping ticks + last cycle suspect.
    loop_streaks: BTreeMap<(AdId, AdId), (u64, AdId)>,
    /// (src,dst) → consecutive blackholed ticks + blamed AD.
    hole_streaks: BTreeMap<(AdId, AdId), (u64, AdId)>,
    /// (router,dst) → (last metric, consecutive climbs).
    climb_streaks: BTreeMap<(AdId, AdId), (u32, u64)>,
    /// Per-suspect policy-violation observation tally.
    violation_counts: BTreeMap<AdId, u64>,
    fired: BTreeSet<(&'static str, AdId)>,
    alarms: Vec<Alarm>,
    roots: BTreeMap<AdId, EventId>,
}

impl MonitorBank {
    /// A bank with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> MonitorBank {
        MonitorBank {
            cfg,
            ..MonitorBank::default()
        }
    }

    /// Registers the `misbehavior-inject` event ids returned by
    /// [`FaultPlan::apply`](crate::FaultPlan::apply) so each alarm's
    /// `monitor-alarm` record is emitted as a causal child of the
    /// injection it detected.
    pub fn set_injection_roots(&mut self, roots: &[(AdId, Option<EventId>)]) {
        for (ad, id) in roots {
            if let Some(id) = id {
                self.roots.insert(*ad, *id);
            }
        }
    }

    /// Buffers one observation for the current tick.
    pub fn observe(&mut self, o: Observation) {
        self.pending.push(o);
    }

    /// Closes the current monitoring tick: consumes the buffered
    /// observations, advances every streak, fires alarms (emitting
    /// `monitor-alarm` events into `obs` at simulated time `at`, plus a
    /// `detection_latency_ticks` histogram sample per alarm), and
    /// returns the alarms newly confirmed this tick.
    pub fn end_tick(&mut self, obs: &mut Obs, at: SimTime) -> Vec<Alarm> {
        self.tick += 1;
        let mut looped: BTreeSet<(AdId, AdId)> = BTreeSet::new();
        let mut holed: BTreeSet<(AdId, AdId)> = BTreeSet::new();
        let mut new_alarms: Vec<Alarm> = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for o in pending {
            match o {
                Observation::Delivered { violators, .. } => {
                    for v in violators {
                        let n = self.violation_counts.entry(v).or_insert(0);
                        *n += 1;
                        let ev = *n;
                        self.fire(DET_POLICY, v, ev, &mut new_alarms);
                    }
                }
                Observation::Looped {
                    src,
                    dst,
                    cycle,
                    reachable,
                } => {
                    if !reachable {
                        continue; // count-to-infinity churn, not misbehavior
                    }
                    // Blame deterministically: the smallest AD in the
                    // cycle (membership is what the monitor can see).
                    let suspect = cycle.iter().copied().min().unwrap_or(src);
                    looped.insert((src, dst));
                    let e = self.loop_streaks.entry((src, dst)).or_insert((0, suspect));
                    e.0 += 1;
                    e.1 = suspect;
                    if e.0 >= self.cfg.loop_ticks {
                        let (n, s) = *e;
                        self.fire(DET_LOOP, s, n, &mut new_alarms);
                    }
                }
                Observation::Blackholed {
                    src,
                    dst,
                    at: hole,
                    reachable,
                } => {
                    if !reachable {
                        continue; // not an invariant violation
                    }
                    holed.insert((src, dst));
                    let e = self.hole_streaks.entry((src, dst)).or_insert((0, hole));
                    e.0 += 1;
                    e.1 = hole;
                    if e.0 >= self.cfg.blackhole_ticks {
                        let (n, s) = *e;
                        self.fire(DET_BLACKHOLE, s, n, &mut new_alarms);
                    }
                }
                Observation::MetricSample {
                    at: router,
                    dst,
                    metric,
                    infinity,
                    reachable,
                } => {
                    let e = self
                        .climb_streaks
                        .entry((router, dst))
                        .or_insert((metric, 0));
                    if reachable && metric > e.0 && metric < infinity {
                        e.1 += 1;
                    } else {
                        e.1 = 0;
                    }
                    e.0 = metric;
                    if e.1 >= self.cfg.cti_ticks {
                        let n = e.1;
                        self.fire(DET_CTI, dst, n, &mut new_alarms);
                    }
                }
            }
        }
        // A tick without the symptom breaks the streak.
        self.loop_streaks.retain(|k, _| looped.contains(k));
        self.hole_streaks.retain(|k, _| holed.contains(k));
        for a in &mut new_alarms {
            a.tick = self.tick;
            a.event = obs.record_event(
                at,
                self.roots.get(&a.suspect).copied(),
                EventRecord::MonitorAlarm {
                    detector: a.detector,
                    suspect: a.suspect,
                    evidence: a.evidence,
                },
            );
            obs.metrics.record("detection_latency_ticks", self.tick);
        }
        self.alarms.extend(new_alarms.iter().copied());
        new_alarms
    }

    fn fire(&mut self, detector: &'static str, suspect: AdId, evidence: u64, out: &mut Vec<Alarm>) {
        if self.fired.insert((detector, suspect)) {
            out.push(Alarm {
                detector,
                suspect,
                evidence,
                tick: 0,     // stamped by end_tick
                event: None, // emitted by end_tick
            });
        }
    }

    /// Monitoring ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Every alarm fired over the bank's lifetime, in firing order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Whether no monitor has fired — the fault-free invariant.
    pub fn silent(&self) -> bool {
        self.alarms.is_empty()
    }
}

/// Translates confirmed monitor alarms into containment decisions.
///
/// The controller is deliberately mechanism-free: it decides *who* is
/// quarantined and emits the bookkeeping (`quarantine-enter` /
/// `quarantine-lift` events; `quarantine_entered`, `quarantine_lifted`,
/// `false_positive` counters); the caller enacts the decision — feeding
/// the quarantined set as avoid-criteria into ORWG route synthesis, or
/// withdrawing the AD's routes in a hop-by-hop engine.
#[derive(Debug)]
pub struct QuarantineController {
    threshold: u64,
    accusations: BTreeMap<AdId, u64>,
    quarantined: BTreeSet<AdId>,
}

impl Default for QuarantineController {
    fn default() -> QuarantineController {
        QuarantineController::new(1)
    }
}

impl QuarantineController {
    /// A controller that quarantines after `threshold` distinct alarms
    /// against the same suspect (minimum 1 — the tripwire's single
    /// definitive alarm then suffices).
    pub fn new(threshold: u64) -> QuarantineController {
        QuarantineController {
            threshold: threshold.max(1),
            accusations: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Books one alarm against its suspect. When the accusation count
    /// reaches the threshold the suspect enters quarantine: a
    /// `quarantine-enter` event is emitted as a child of the alarm and
    /// `quarantine_entered` increments. Returns the suspect and the
    /// quarantine event's id if this call quarantined it — the caller
    /// must then enact the route-around, chaining its teardowns to that
    /// event.
    pub fn note_alarm(
        &mut self,
        alarm: &Alarm,
        obs: &mut Obs,
        at: SimTime,
    ) -> Option<(AdId, Option<EventId>)> {
        let n = self.accusations.entry(alarm.suspect).or_insert(0);
        *n += 1;
        if *n >= self.threshold && self.quarantined.insert(alarm.suspect) {
            obs.metrics.add("quarantine_entered", 1);
            let ev = obs.record_event(
                at,
                alarm.event,
                EventRecord::QuarantineEnter { ad: alarm.suspect },
            );
            return Some((alarm.suspect, ev));
        }
        None
    }

    /// Releases `ad` from quarantine (emitting `quarantine-lift` and
    /// `quarantine_lifted`). `guilty` is ground truth: lifting an AD
    /// that never misbehaved also increments `false_positive`. Returns
    /// whether `ad` was actually quarantined.
    pub fn lift(&mut self, ad: AdId, guilty: bool, obs: &mut Obs, at: SimTime) -> bool {
        if !self.quarantined.remove(&ad) {
            return false;
        }
        self.accusations.remove(&ad);
        obs.metrics.add("quarantine_lifted", 1);
        if !guilty {
            obs.metrics.add("false_positive", 1);
        }
        obs.record_event(at, None, EventRecord::QuarantineLift { ad });
        true
    }

    /// ADs currently in quarantine, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = AdId> + '_ {
        self.quarantined.iter().copied()
    }

    /// Whether `ad` is currently quarantined.
    pub fn is_quarantined(&self, ad: AdId) -> bool {
        self.quarantined.contains(&ad)
    }

    /// Accusations booked against `ad` so far.
    pub fn accusations(&self, ad: AdId) -> u64 {
        self.accusations.get(&ad).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tickf(bank: &mut MonitorBank, obs: &mut Obs, os: Vec<Observation>) -> Vec<Alarm> {
        for o in os {
            bank.observe(o);
        }
        bank.end_tick(obs, SimTime::ZERO)
    }

    #[test]
    fn tripwire_fires_immediately_and_once() {
        let mut bank = MonitorBank::new(MonitorConfig::default());
        let mut obs = Obs::new(64);
        let a = tickf(
            &mut bank,
            &mut obs,
            vec![Observation::Delivered {
                src: AdId(0),
                dst: AdId(4),
                violators: vec![AdId(2)],
            }],
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].detector, DET_POLICY);
        assert_eq!(a[0].suspect, AdId(2));
        assert_eq!(a[0].tick, 1);
        // Same violation next tick: deduped.
        let b = tickf(
            &mut bank,
            &mut obs,
            vec![Observation::Delivered {
                src: AdId(0),
                dst: AdId(4),
                violators: vec![AdId(2)],
            }],
        );
        assert!(b.is_empty());
        assert_eq!(bank.alarms().len(), 1);
    }

    #[test]
    fn loop_detector_needs_persistence() {
        let mut bank = MonitorBank::new(MonitorConfig {
            loop_ticks: 3,
            ..MonitorConfig::default()
        });
        let mut obs = Obs::new(64);
        let looped = || Observation::Looped {
            src: AdId(0),
            dst: AdId(5),
            cycle: vec![AdId(3), AdId(1)],
            reachable: true,
        };
        assert!(tickf(&mut bank, &mut obs, vec![looped()]).is_empty());
        assert!(tickf(&mut bank, &mut obs, vec![looped()]).is_empty());
        // A clean tick resets the streak.
        assert!(tickf(&mut bank, &mut obs, vec![]).is_empty());
        assert!(tickf(&mut bank, &mut obs, vec![looped()]).is_empty());
        assert!(tickf(&mut bank, &mut obs, vec![looped()]).is_empty());
        let a = tickf(&mut bank, &mut obs, vec![looped()]);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].detector, DET_LOOP);
        assert_eq!(a[0].suspect, AdId(1), "blames the smallest cycle member");
    }

    #[test]
    fn unreachable_destinations_are_not_blackholes() {
        let mut bank = MonitorBank::new(MonitorConfig {
            blackhole_ticks: 1,
            ..MonitorConfig::default()
        });
        let mut obs = Obs::new(64);
        let a = tickf(
            &mut bank,
            &mut obs,
            vec![Observation::Blackholed {
                src: AdId(0),
                dst: AdId(9),
                at: AdId(3),
                reachable: false,
            }],
        );
        assert!(a.is_empty());
        assert!(bank.silent());
    }

    #[test]
    fn cti_watchdog_wants_monotone_climb_below_infinity() {
        let mut bank = MonitorBank::new(MonitorConfig {
            cti_ticks: 3,
            ..MonitorConfig::default()
        });
        let mut obs = Obs::new(64);
        let sample = |m: u32| Observation::MetricSample {
            at: AdId(1),
            dst: AdId(7),
            metric: m,
            infinity: 64,
            reachable: true,
        };
        for m in [2, 4, 6] {
            assert!(tickf(&mut bank, &mut obs, vec![sample(m)]).is_empty());
        }
        let a = tickf(&mut bank, &mut obs, vec![sample(8)]);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].detector, DET_CTI);
        assert_eq!(a[0].suspect, AdId(7));
        // Reaching infinity is convergence (route withdrawn), not CTI.
        let mut bank2 = MonitorBank::new(MonitorConfig {
            cti_ticks: 2,
            ..MonitorConfig::default()
        });
        for m in [60, 62, 64, 64] {
            assert!(tickf(&mut bank2, &mut obs, vec![sample(m)]).is_empty());
        }
        assert!(bank2.silent());
    }

    #[test]
    fn cti_watchdog_ignores_climbs_toward_unreachable_destinations() {
        // A partition makes metrics toward the far island climb — that is
        // correct convergence, and the reachable=false tag must keep the
        // watchdog silent no matter how long the climb runs.
        let mut bank = MonitorBank::new(MonitorConfig {
            cti_ticks: 2,
            ..MonitorConfig::default()
        });
        let mut obs = Obs::new(64);
        let sample = |m: u32, reachable: bool| Observation::MetricSample {
            at: AdId(1),
            dst: AdId(7),
            metric: m,
            infinity: 64,
            reachable,
        };
        for m in [2, 4, 6, 8, 10, 12] {
            assert!(tickf(&mut bank, &mut obs, vec![sample(m, false)]).is_empty());
        }
        assert!(bank.silent());
        // Unreachable samples also *break* a streak built while reachable.
        let mut bank2 = MonitorBank::new(MonitorConfig {
            cti_ticks: 3,
            ..MonitorConfig::default()
        });
        assert!(tickf(&mut bank2, &mut obs, vec![sample(2, true)]).is_empty());
        assert!(tickf(&mut bank2, &mut obs, vec![sample(4, true)]).is_empty());
        assert!(tickf(&mut bank2, &mut obs, vec![sample(6, false)]).is_empty());
        assert!(tickf(&mut bank2, &mut obs, vec![sample(8, true)]).is_empty());
        assert!(tickf(&mut bank2, &mut obs, vec![sample(10, true)]).is_empty());
        assert!(bank2.silent(), "the unreachable tick reset the streak");
    }

    #[test]
    fn quarantine_books_lifts_and_counts_false_positives() {
        let mut obs = Obs::new(64);
        let mut bank = MonitorBank::new(MonitorConfig::default());
        let alarms = tickf(
            &mut bank,
            &mut obs,
            vec![Observation::Delivered {
                src: AdId(0),
                dst: AdId(4),
                violators: vec![AdId(2)],
            }],
        );
        let mut q = QuarantineController::new(1);
        let entered = q.note_alarm(&alarms[0], &mut obs, SimTime::ZERO);
        assert_eq!(entered.map(|(ad, _)| ad), Some(AdId(2)));
        assert!(entered.unwrap().1.is_some(), "quarantine event was logged");
        assert!(q.is_quarantined(AdId(2)));
        assert_eq!(obs.metrics.counter("quarantine_entered"), 1);
        assert!(q.lift(AdId(2), false, &mut obs, SimTime::ZERO));
        assert!(!q.is_quarantined(AdId(2)));
        assert_eq!(obs.metrics.counter("quarantine_lifted"), 1);
        assert_eq!(obs.metrics.counter("false_positive"), 1);
        // Lifting twice is a no-op.
        assert!(!q.lift(AdId(2), false, &mut obs, SimTime::ZERO));
        assert_eq!(obs.metrics.counter("quarantine_lifted"), 1);
    }
}
